"""Unit tests for the UDP socket layer."""

import pytest

from repro.errors import AddressInUseError, NetworkError, SocketClosedError
from repro.net.address import Endpoint
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator


@pytest.fixture
def pair(sim):
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.add_link(0, 1, LinkParams(delay_s=0.001, bandwidth_bps=1e9))
    return net


def test_bind_explicit_port(pair):
    sock = UdpSocket(pair.node(0), 5000)
    assert sock.endpoint == Endpoint(0, 5000)


def test_bind_collision_raises(pair):
    UdpSocket(pair.node(0), 5000)
    with pytest.raises(AddressInUseError):
        UdpSocket(pair.node(0), 5000)


def test_ephemeral_ports_unique(pair):
    a = UdpSocket(pair.node(0))
    b = UdpSocket(pair.node(0))
    assert a.port != b.port
    assert a.port >= 49152


def test_send_receive_roundtrip(sim, pair):
    got = []
    UdpSocket(pair.node(1), 7, on_receive=lambda d: got.append(d.payload))
    UdpSocket(pair.node(0), 7).sendto(Endpoint(1, 7), {"k": 1}, 64)
    sim.run()
    assert got == [{"k": 1}]


def test_send_to_unbound_port_drops(sim, pair):
    UdpSocket(pair.node(0), 7).sendto(Endpoint(1, 9999), "x", 10)
    sim.run()  # nothing to assert: must simply not blow up


def test_closed_socket_send_raises(pair):
    sock = UdpSocket(pair.node(0), 7)
    sock.close()
    with pytest.raises(SocketClosedError):
        sock.sendto(Endpoint(1, 7), "x", 10)


def test_closed_socket_drops_arrivals(sim, pair):
    got = []
    receiver = UdpSocket(pair.node(1), 7, on_receive=lambda d: got.append(d))
    sender = UdpSocket(pair.node(0), 7)
    sender.sendto(Endpoint(1, 7), "x", 10)
    receiver.close()  # closes before delivery
    sim.run()
    assert got == []


def test_close_frees_port(pair):
    sock = UdpSocket(pair.node(0), 7)
    sock.close()
    UdpSocket(pair.node(0), 7)  # rebind succeeds


def test_close_is_idempotent(pair):
    sock = UdpSocket(pair.node(0), 7)
    sock.close()
    sock.close()


def test_negative_size_rejected(pair):
    sock = UdpSocket(pair.node(0), 7)
    with pytest.raises(ValueError):
        sock.sendto(Endpoint(1, 7), "x", -1)


def test_traffic_counters(sim, pair):
    receiver_box = []
    receiver = UdpSocket(
        pair.node(1), 7, on_receive=lambda d: receiver_box.append(d)
    )
    sender = UdpSocket(pair.node(0), 7)
    for _ in range(3):
        sender.sendto(Endpoint(1, 7), "x", 100)
    sim.run()
    assert sender.sent_packets == 3
    assert sender.sent_bytes == 300
    assert receiver.received_packets == 3
    assert receiver.received_bytes == 300


def test_crash_closes_sockets(pair):
    node = pair.node(0)
    sock = UdpSocket(node, 7)
    node.crash()
    assert sock.closed
    with pytest.raises(NetworkError):
        UdpSocket(node, 8)  # dead node refuses binds
