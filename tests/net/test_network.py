"""Unit tests for topology, routing and partitions."""

import pytest

from repro.errors import NetworkError
from repro.net.address import Endpoint
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator

FAST = LinkParams(delay_s=0.001, bandwidth_bps=1e9)


def chain(sim, n):
    """n nodes in a line: 0 - 1 - ... - n-1."""
    net = Network(sim)
    for _ in range(n):
        net.add_node()
    for i in range(n - 1):
        net.add_link(i, i + 1, FAST)
    return net


def send_and_collect(sim, net, src, dst, count=1):
    got = []
    UdpSocket(net.node(dst), 9, on_receive=lambda d: got.append(d))
    sock = UdpSocket(net.node(src), 9)
    for i in range(count):
        sock.sendto(Endpoint(dst, 9), i, 100)
    sim.run()
    return got


def test_single_hop_delivery(sim):
    net = chain(sim, 2)
    got = send_and_collect(sim, net, 0, 1)
    assert [d.payload for d in got] == [0]


def test_multi_hop_delivery_accumulates_delay(sim):
    net = chain(sim, 5)
    got = []
    UdpSocket(net.node(4), 9, on_receive=lambda d: got.append(sim.now))
    UdpSocket(net.node(0), 9).sendto(Endpoint(4, 9), "x", 100)
    sim.run()
    assert got and got[0] > 4 * 0.001  # four hops of propagation


def test_unreachable_destination_drops_silently(sim):
    net = Network(sim)
    net.add_node()
    net.add_node()  # no link between them
    got = send_and_collect(sim, net, 0, 1)
    assert got == []


def test_partition_cuts_cross_traffic(sim):
    net = chain(sim, 4)
    net.partition([0, 1], [2, 3])
    assert send_and_collect(sim, net, 0, 3) == []


def test_partition_keeps_same_side_traffic(sim):
    net = chain(sim, 4)
    net.partition([0, 1], [2, 3])
    assert len(send_and_collect(sim, net, 0, 1)) == 1


def test_heal_restores_routes(sim):
    net = chain(sim, 3)
    net.partition([0], [1, 2])
    net.heal()
    assert len(send_and_collect(sim, net, 0, 2)) == 1


def test_reachable_reflects_link_state(sim):
    net = chain(sim, 3)
    assert net.reachable(0, 2)
    net.set_link_state(1, 2, False)
    assert not net.reachable(0, 2)
    assert net.reachable(0, 1)


def test_routing_prefers_shortest_path(sim):
    # Square with a diagonal: 0-1-2 and 0-2 direct.
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, FAST)
    net.add_link(1, 2, FAST)
    net.add_link(0, 2, FAST)
    got = []
    UdpSocket(net.node(2), 9, on_receive=lambda d: got.append(sim.now))
    UdpSocket(net.node(0), 9).sendto(Endpoint(2, 9), "x", 100)
    sim.run()
    # One hop of propagation, not two.
    assert got[0] < 0.002


def test_route_recomputed_after_link_failure(sim):
    net = Network(sim)
    for _ in range(3):
        net.add_node()
    net.add_link(0, 1, FAST)
    net.add_link(1, 2, FAST)
    net.add_link(0, 2, FAST)
    net.set_link_state(0, 2, False)
    assert len(send_and_collect(sim, net, 0, 2)) == 1  # via node 1


def test_crashed_destination_drops(sim):
    net = chain(sim, 2)
    got = []
    UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d))
    net.node(1).crash()
    UdpSocket(net.node(0), 9).sendto(Endpoint(1, 9), "x", 100)
    sim.run()
    assert got == []


def test_crashed_router_blackholes(sim):
    net = chain(sim, 3)
    got = []
    UdpSocket(net.node(2), 9, on_receive=lambda d: got.append(d))
    sock = UdpSocket(net.node(0), 9)
    net.node(1).crash()  # the middle router
    sock.sendto(Endpoint(2, 9), "x", 100)
    sim.run()
    assert got == []


def test_crashed_source_cannot_send(sim):
    net = chain(sim, 2)
    sock = UdpSocket(net.node(0), 9)
    net.node(0).alive = False  # simulate mid-crash state
    sock.sendto(Endpoint(1, 9), "x", 100)
    # Datagram is dropped at the source without error.
    sim.run()


def test_duplicate_link_rejected(sim):
    net = chain(sim, 2)
    with pytest.raises(NetworkError):
        net.add_link(0, 1, FAST)
    with pytest.raises(NetworkError):
        net.add_link(1, 0, FAST)


def test_unknown_node_rejected(sim):
    net = chain(sim, 2)
    with pytest.raises(NetworkError):
        net.node(5)
    with pytest.raises(NetworkError):
        net.add_link(0, 5, FAST)


def test_hop_limit_prevents_infinite_forwarding(sim):
    net = chain(sim, 2)
    got = []
    UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d))
    sock = UdpSocket(net.node(0), 9)
    datagram = sock.sendto(Endpoint(1, 9), "x", 100)
    assert datagram.hops_remaining <= 64
    sim.run()
    assert len(got) == 1


def test_node_restart_after_crash(sim):
    net = chain(sim, 2)
    net.node(1).crash()
    net.node(1).restart()
    got = send_and_collect(sim, net, 0, 1)
    assert len(got) == 1
