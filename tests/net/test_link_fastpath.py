"""Conformance tests for the link-layer fast path.

Two mechanisms are under test: the zero-overhead transmit path (clean
links skip the RNG draws entirely — and never even create the stream)
and :class:`repro.net.burst.BurstTransfer` (a precomputed window of
sends replayed with one recycled event handle).  Both must be
observationally identical to the per-packet slow path on loss-free
routes.
"""

import pytest

from repro.errors import SocketClosedError
from repro.net.address import Endpoint
from repro.net.link import LinkFault, LinkParams
from repro.net.network import Network
from repro.net.packet import HEADER_BYTES
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator

#: 1 Mbit/s so serialization times are large and queueing is visible.
SLOW_LINK = LinkParams(delay_s=0.001, bandwidth_bps=1e6)

#: Wire size 1000 bytes => exactly 8 ms serialization on SLOW_LINK.
PAYLOAD_BYTES = 1000 - HEADER_BYTES


def build_chain(sim, n_nodes, link=SLOW_LINK):
    """a--b--c--... chain; returns the network."""
    net = Network(sim)
    for i in range(n_nodes):
        net.add_node(f"n{i}")
        if i:
            net.add_link(i - 1, i, link)
    return net


def open_pair(net, src_node, dst_node, port=7000):
    got = []
    UdpSocket(
        net.node(dst_node), port,
        on_receive=lambda d: got.append((net.sim.now, d.payload)),
    )
    sock = UdpSocket(net.node(src_node), port)
    return sock, got


class TestZeroOverheadLink:
    """Clean links never touch their RNG stream."""

    def test_clean_link_never_creates_rng_stream(self, sim):
        net = build_chain(sim, 2)
        sock, got = open_pair(net, 0, 1)
        for i in range(5):
            sim.call_at(i * 0.01, sock.sendto, Endpoint(1, 7000), i,
                        PAYLOAD_BYTES)
        sim.run()
        assert [p for _, p in got] == list(range(5))
        assert "link.0->1" not in sim.rngs.names()

    def test_lossy_link_uses_rng_stream(self, sim):
        net = build_chain(
            sim, 2, link=LinkParams(delay_s=0.001, bandwidth_bps=1e6,
                                    loss_prob=0.5),
        )
        sock, _ = open_pair(net, 0, 1)
        for i in range(5):
            sim.call_at(i * 0.01, sock.sendto, Endpoint(1, 7000), i,
                        PAYLOAD_BYTES)
        sim.run()
        assert "link.0->1" in sim.rngs.names()


def run_slow(n_nodes, send_times, link=SLOW_LINK, payload_bytes=None):
    """Per-packet sends at the given times; returns (deliveries, net)."""
    sim = Simulator(seed=3)
    net = build_chain(sim, n_nodes, link=link)
    sock, got = open_pair(net, 0, n_nodes - 1)
    dst = Endpoint(n_nodes - 1, 7000)
    for i, t in enumerate(send_times):
        size = payload_bytes[i] if payload_bytes else PAYLOAD_BYTES
        sim.call_at(t, sock.sendto, dst, i, size)
    sim.run()
    return got, net


def run_burst(n_nodes, send_times, link=SLOW_LINK, payload_bytes=None):
    """The same sends as one burst; returns (deliveries, net, burst)."""
    sim = Simulator(seed=3)
    net = build_chain(sim, n_nodes, link=link)
    sock, got = open_pair(net, 0, n_nodes - 1)
    dst = Endpoint(n_nodes - 1, 7000)
    entries = [
        (t, i, payload_bytes[i] if payload_bytes else PAYLOAD_BYTES)
        for i, t in enumerate(send_times)
    ]
    holder = {}

    def start():
        holder["burst"] = sock.sendto_burst(dst, entries)

    sim.call_at(send_times[0], start)
    sim.run()
    return got, net, holder["burst"]


def direction_stats(net):
    return tuple(
        (
            d.stats.sent_packets, d.stats.sent_bytes,
            d.stats.delivered_packets, d.stats.dropped_queue,
            d.stats.dropped_loss,
        )
        for lnk in net.links()
        for d in (lnk.forward, lnk.backward)
    )


class TestBurstConformance:
    """Burst deliveries are bit-identical to per-packet sends."""

    def test_two_hop_deliveries_identical(self):
        times = [0.0, 0.002, 0.004, 0.030, 0.060]
        slow, slow_net = run_slow(3, times)
        fast, fast_net, burst = run_burst(3, times)
        assert fast == slow
        assert direction_stats(fast_net) == direction_stats(slow_net)
        assert burst.delivered == len(times)
        assert burst.finished and not burst.aborted

    def test_queue_tail_drop_identical(self):
        # Back-to-back sends against a 2-packet queue: the arithmetic
        # that decides which packet is tail-dropped must agree exactly.
        link = LinkParams(delay_s=0.001, bandwidth_bps=1e6, queue_packets=2)
        times = [0.0] * 6
        slow, slow_net = run_slow(2, times, link=link)
        fast, fast_net, burst = run_burst(2, times, link=link)
        assert fast == slow
        assert direction_stats(fast_net) == direction_stats(slow_net)
        assert burst.dropped > 0
        assert burst.delivered + burst.dropped == len(times)

    def test_socket_counters_settle_to_same_totals(self):
        times = [0.0, 0.001, 0.002]
        sim = Simulator(seed=3)
        net = build_chain(sim, 2)
        sock, _ = open_pair(net, 0, 1)
        entries = [(t, i, PAYLOAD_BYTES) for i, t in enumerate(times)]
        sock.sendto_burst(Endpoint(1, 7000), entries)
        sim.run()
        assert sock.sent_packets == len(times)
        assert sock.sent_bytes == len(times) * PAYLOAD_BYTES


class TestRevocation:
    def test_revoke_cuts_only_unsent_frames(self, sim):
        net = build_chain(sim, 2)
        sock, got = open_pair(net, 0, 1)
        entries = [(0.0, "a", PAYLOAD_BYTES), (0.010, "b", PAYLOAD_BYTES),
                   (0.020, "c", PAYLOAD_BYTES)]
        burst = sock.sendto_burst(Endpoint(1, 7000), entries)
        sim.call_at(0.012, burst.revoke_after, 0.012)
        sim.run()
        assert burst.revoked == 1
        assert [p for _, p in got] == ["a", "b"]

    def test_revoke_uses_entry_send_time_not_serialization_start(self, sim):
        # A frame queued behind a large predecessor starts serializing
        # long after its sendto() time.  Revocation is by *send* time:
        # once handed to the link the frame is on the wire and a later
        # control input cannot recall it (the slow path could not).
        net = build_chain(sim, 2)
        big = 10000 - HEADER_BYTES   # 80 ms serialization
        small = PAYLOAD_BYTES        # 8 ms, queued until t=0.080
        entries = [(0.0, "big", big), (0.001, "small", small)]
        sock, got = open_pair(net, 0, 1)
        burst = sock.sendto_burst(Endpoint(1, 7000), entries)
        sim.call_at(0.002, burst.revoke_after, 0.002)
        sim.run()
        assert burst.revoked == 0
        assert [p for _, p in got] == ["big", "small"]

    def test_revoking_everything_finishes_the_burst(self, sim):
        net = build_chain(sim, 2)
        sock, got = open_pair(net, 0, 1)
        entries = [(0.010, "a", PAYLOAD_BYTES), (0.020, "b", PAYLOAD_BYTES)]
        burst = sock.sendto_burst(Endpoint(1, 7000), entries)
        assert burst.revoke_after(0.0) == 2
        assert burst.finished
        sim.run()
        assert got == []

    def test_revoke_settles_transmitter_occupancy(self):
        # After a mid-window collapse the frames already sent still
        # occupy the transmitter.  A follow-up per-packet send must
        # queue behind them exactly as it would have in an all-slow run
        # (regression: the stale live value let it jump the queue).
        times = [0.0, 0.0, 0.0]

        def follow_up(sim, sock, dst, burst):
            def send():
                if burst is not None:
                    burst.revoke_after(sim.now)
                sock.sendto(dst, "late", PAYLOAD_BYTES)
            sim.call_at(0.001, send)

        def run(batched):
            sim = Simulator(seed=3)
            net = build_chain(sim, 2)
            sock, got = open_pair(net, 0, 1)
            dst = Endpoint(1, 7000)
            if batched:
                entries = [(t, i, PAYLOAD_BYTES) for i, t in enumerate(times)]
                burst = sock.sendto_burst(dst, entries)
            else:
                burst = None
                for i, t in enumerate(times):
                    sim.call_at(t, sock.sendto, dst, i, PAYLOAD_BYTES)
            follow_up(sim, sock, dst, burst)
            sim.run()
            return got

        assert run(batched=True) == run(batched=False)


class TestAbort:
    def test_transit_crash_aborts_and_notifies(self, sim):
        net = build_chain(sim, 3)
        sock, got = open_pair(net, 0, 2)
        times = [i * 0.010 for i in range(6)]
        entries = [(t, i, PAYLOAD_BYTES) for i, t in enumerate(times)]
        aborted = []
        burst = sock.sendto_burst(
            Endpoint(2, 7000), entries, on_abort=lambda: aborted.append(1)
        )
        sim.call_at(0.025, net.node(1).crash)
        sim.run()
        assert aborted == [1]
        assert burst.aborted and burst.finished
        assert 0 < len(got) < len(times)


class TestEligibility:
    def test_lossy_path_declines(self, sim):
        net = build_chain(
            sim, 2, link=LinkParams(delay_s=0.001, bandwidth_bps=1e6,
                                    loss_prob=0.01),
        )
        sock, _ = open_pair(net, 0, 1)
        assert sock.sendto_burst(
            Endpoint(1, 7000), [(0.0, "x", PAYLOAD_BYTES)]
        ) is None

    def test_faulted_link_declines(self, sim):
        net = build_chain(sim, 2)
        net.set_link_fault(0, 1, LinkFault(drop_prob=0.1))
        sock, _ = open_pair(net, 0, 1)
        assert sock.sendto_burst(
            Endpoint(1, 7000), [(0.0, "x", PAYLOAD_BYTES)]
        ) is None

    def test_scheduling_noise_at_destination_declines(self, sim):
        net = build_chain(sim, 2)
        net.node(1).scheduling_noise_s = 0.001
        sock, _ = open_pair(net, 0, 1)
        assert sock.sendto_burst(
            Endpoint(1, 7000), [(0.0, "x", PAYLOAD_BYTES)]
        ) is None

    def test_closed_socket_raises(self, sim):
        net = build_chain(sim, 2)
        sock, _ = open_pair(net, 0, 1)
        sock.close()
        with pytest.raises(SocketClosedError):
            sock.sendto_burst(Endpoint(1, 7000), [(0.0, "x", PAYLOAD_BYTES)])


class TestCarry:
    def test_carry_tx_free_keeps_boundary_queueing_exact(self):
        # Serialization (15 ms) exceeds the tick spacing (10 ms), so the
        # queue builds across the window boundary.  The second window
        # must inherit the first window's projected transmitter state —
        # the live value lags at delivery-time settlement.
        link = LinkParams(delay_s=0.001, bandwidth_bps=1e6)
        size = 1875 - HEADER_BYTES  # 15 ms on 1 Mbit/s
        ticks = [0.0, 0.010, 0.020, 0.030]

        def run_batched():
            sim = Simulator(seed=3)
            net = build_chain(sim, 2, link=link)
            sock, got = open_pair(net, 0, 1)
            dst = Endpoint(1, 7000)
            first = [(t, i, size) for i, t in enumerate(ticks[:2])]
            burst1 = sock.sendto_burst(dst, first)

            def second_window():
                second = [(t, i + 2, size) for i, t in enumerate(ticks[2:])]
                sock.sendto_burst(
                    dst, second, carry_tx_free=burst1.projected_tx_free
                )

            sim.call_at(ticks[2], second_window)
            sim.run()
            return got

        slow, _ = run_slow(2, ticks, link=link,
                           payload_bytes=[size] * len(ticks))
        assert run_batched() == slow
