"""Unit tests for the canned LAN/WAN topologies."""

import pytest

from repro.errors import NetworkError
from repro.net.address import Endpoint
from repro.net.topologies import build_lan, build_wan
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator


def test_lan_structure(sim):
    topo = build_lan(sim, n_hosts=4)
    assert len(topo.hosts) == 4
    assert len(topo.infrastructure) == 1
    assert len(topo.network.nodes) == 5


def test_lan_any_pair_communicates(sim):
    topo = build_lan(sim, n_hosts=3)
    got = []
    UdpSocket(topo.network.node(topo.host(2)), 7,
              on_receive=lambda d: got.append(sim.now))
    UdpSocket(topo.network.node(topo.host(0)), 7).sendto(
        Endpoint(topo.host(2), 7), "x", 1000
    )
    sim.run()
    assert got and got[0] < 0.001  # sub-millisecond on the LAN


def test_lan_requires_a_host(sim):
    with pytest.raises(NetworkError):
        build_lan(sim, n_hosts=0)


def test_wan_structure(sim):
    topo = build_wan(sim, 2, 3, n_router_hops=7)
    assert len(topo.hosts) == 5
    # 2 switches + 6 routers between the 7 hops.
    assert len(topo.infrastructure) == 8


def test_wan_cross_site_latency_larger_than_lan(sim):
    topo = build_wan(sim, 1, 1, n_router_hops=7)
    got = []
    UdpSocket(topo.network.node(topo.host(1)), 7,
              on_receive=lambda d: got.append(sim.now))
    UdpSocket(topo.network.node(topo.host(0)), 7).sendto(
        Endpoint(topo.host(1), 7), "x", 1000
    )
    sim.run()
    # Either lost (small loss prob) or delayed by >= 7 hops * 4 ms.
    if got:
        assert got[0] > 0.025


def test_wan_same_site_stays_fast(sim):
    topo = build_wan(sim, 2, 1)
    got = []
    UdpSocket(topo.network.node(topo.host(1)), 7,
              on_receive=lambda d: got.append(sim.now))
    UdpSocket(topo.network.node(topo.host(0)), 7).sendto(
        Endpoint(topo.host(1), 7), "x", 1000
    )
    sim.run()
    assert got and got[0] < 0.001


def test_wan_exhibits_loss(sim):
    topo = build_wan(sim, 1, 1)
    got = []
    UdpSocket(topo.network.node(topo.host(1)), 7,
              on_receive=lambda d: got.append(d))
    sock = UdpSocket(topo.network.node(topo.host(0)), 7)
    for i in range(2000):
        sim.call_at(i * 0.005, sock.sendto, Endpoint(topo.host(1), 7), i, 500)
    sim.run()
    assert 0 < 2000 - len(got) < 200  # ~1% end-to-end loss


def test_wan_validation(sim):
    with pytest.raises(NetworkError):
        build_wan(sim, 0, 1)
    with pytest.raises(NetworkError):
        build_wan(sim, 1, 1, n_router_hops=0)


def test_host_accessor(sim):
    topo = build_lan(sim, n_hosts=2)
    assert topo.host(0) == topo.hosts[0]
    assert topo.sim is sim
