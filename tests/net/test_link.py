"""Unit tests for the link model."""

import pytest

from repro.errors import NetworkError
from repro.net.address import Endpoint
from repro.net.link import Link, LinkParams
from repro.net.packet import HEADER_BYTES, Datagram
from repro.sim.core import Simulator


def make_datagram(size=1000):
    return Datagram(Endpoint(0, 1), Endpoint(1, 1), "payload", size)


def collect_link(sim, params, n=1, spacing=0.0, size=1000):
    """Transmit n datagrams over one link direction; return arrivals."""
    link = Link(sim, 0, 1, params)
    arrivals = []
    for i in range(n):
        sim.call_at(
            i * spacing,
            lambda: link.forward.transmit(
                make_datagram(size), lambda d: arrivals.append(sim.now)
            ),
        )
    sim.run()
    return link, arrivals


class TestDelay:
    def test_propagation_delay_applied(self):
        sim = Simulator()
        params = LinkParams(delay_s=0.010, bandwidth_bps=1e9)
        _link, arrivals = collect_link(sim, params)
        serialization = (1000 + HEADER_BYTES) * 8 / 1e9
        assert arrivals[0] == pytest.approx(0.010 + serialization)

    def test_serialization_delay_scales_with_size(self):
        sim = Simulator()
        params = LinkParams(delay_s=0.0, bandwidth_bps=1e6)
        _link, arrivals = collect_link(sim, params, size=10_000)
        assert arrivals[0] == pytest.approx((10_000 + HEADER_BYTES) * 8 / 1e6)

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        params = LinkParams(delay_s=0.0, bandwidth_bps=1e6)
        _link, arrivals = collect_link(sim, params, n=3, spacing=0.0)
        serialization = (1000 + HEADER_BYTES) * 8 / 1e6
        for i, arrival in enumerate(arrivals):
            assert arrival == pytest.approx((i + 1) * serialization)


class TestLoss:
    def test_lossless_link_delivers_everything(self):
        sim = Simulator()
        _link, arrivals = collect_link(
            sim, LinkParams(loss_prob=0.0), n=200, spacing=0.001
        )
        assert len(arrivals) == 200

    def test_lossy_link_drops_roughly_the_configured_fraction(self):
        sim = Simulator(seed=3)
        link, arrivals = collect_link(
            sim, LinkParams(loss_prob=0.2), n=2000, spacing=0.001
        )
        assert 0.15 < 1 - len(arrivals) / 2000 < 0.25
        assert link.forward.stats.dropped_loss == 2000 - len(arrivals)

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            _link, arrivals = collect_link(
                sim, LinkParams(loss_prob=0.3), n=100, spacing=0.01
            )
            return len(arrivals)

        assert run(5) == run(5)


class TestQueueDrop:
    def test_tail_drop_under_overload(self):
        sim = Simulator()
        params = LinkParams(
            delay_s=0.0, bandwidth_bps=1e5, queue_packets=4
        )
        link, arrivals = collect_link(sim, params, n=100, spacing=0.0)
        assert link.forward.stats.dropped_queue > 0
        assert len(arrivals) < 100


class TestReorder:
    def test_detour_can_reorder(self):
        sim = Simulator(seed=2)
        params = LinkParams(
            delay_s=0.001, reorder_prob=0.2, reorder_delay_s=0.5,
            bandwidth_bps=1e9,
        )
        link = Link(sim, 0, 1, params)
        order = []
        for i in range(100):
            sim.call_at(
                i * 0.01,
                lambda i=i: link.forward.transmit(
                    make_datagram(), lambda d, i=i: order.append(i)
                ),
            )
        sim.run()
        assert link.forward.stats.detoured > 0
        assert any(b < a for a, b in zip(order, order[1:]))


class TestLifecycle:
    def test_down_link_drops_traffic(self):
        sim = Simulator()
        link = Link(sim, 0, 1, LinkParams())
        link.set_up(False)
        arrivals = []
        link.forward.transmit(make_datagram(), lambda d: arrivals.append(d))
        sim.run()
        assert arrivals == []
        assert not link.up

    def test_in_flight_packet_lost_when_link_goes_down(self):
        sim = Simulator()
        link = Link(sim, 0, 1, LinkParams(delay_s=1.0))
        arrivals = []
        link.forward.transmit(make_datagram(), lambda d: arrivals.append(d))
        sim.call_at(0.5, link.set_up, False)
        sim.run()
        assert arrivals == []

    def test_direction_lookup(self):
        link = Link(Simulator(), 3, 7, LinkParams())
        assert link.direction(3) is link.forward
        assert link.direction(7) is link.backward
        with pytest.raises(NetworkError):
            link.direction(9)

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError):
            Link(Simulator(), 1, 1, LinkParams())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delay_s": -1},
            {"jitter_s": -0.1},
            {"loss_prob": 1.0},
            {"loss_prob": -0.1},
            {"bandwidth_bps": 0},
            {"queue_packets": 0},
            {"reorder_prob": 1.5},
            {"reorder_delay_s": -1},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(NetworkError):
            LinkParams(**kwargs).validate()


class TestStats:
    def test_aggregated_stats_cover_both_directions(self):
        sim = Simulator()
        link = Link(sim, 0, 1, LinkParams())
        link.forward.transmit(make_datagram(), lambda d: None)
        link.backward.transmit(make_datagram(), lambda d: None)
        sim.run()
        stats = link.stats()
        assert stats.sent_packets == 2
        assert stats.delivered_packets == 2
        assert stats.sent_bytes == 2 * (1000 + HEADER_BYTES)
