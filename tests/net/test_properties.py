"""Property-based tests for the network substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.address import Endpoint
from repro.net.link import Link, LinkParams
from repro.net.network import Network
from repro.net.packet import Datagram
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=20_000), min_size=1,
                   max_size=50),
    loss=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_delivered_is_subset_of_sent(sizes, loss, seed):
    """No link ever invents or duplicates packets."""
    sim = Simulator(seed=seed)
    link = Link(sim, 0, 1, LinkParams(loss_prob=loss))
    delivered = []
    for i, size in enumerate(sizes):
        datagram = Datagram(Endpoint(0, 1), Endpoint(1, 1), i, size)
        sim.call_at(
            i * 0.001,
            link.forward.transmit,
            datagram,
            lambda d: delivered.append(d.payload),
        )
    sim.run()
    assert len(delivered) <= len(sizes)
    assert sorted(set(delivered)) == sorted(delivered)  # no duplicates
    assert set(delivered) <= set(range(len(sizes)))


@given(
    spacing=st.floats(min_value=0.0, max_value=0.01),
    count=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_jitterless_link_preserves_fifo(spacing, count, seed):
    """Without jitter/detours a link is FIFO regardless of load."""
    sim = Simulator(seed=seed)
    link = Link(sim, 0, 1, LinkParams(jitter_s=0.0, reorder_prob=0.0))
    order = []
    for i in range(count):
        datagram = Datagram(Endpoint(0, 1), Endpoint(1, 1), i, 500)
        sim.call_at(
            i * spacing,
            link.forward.transmit,
            datagram,
            lambda d: order.append(d.payload),
        )
    sim.run()
    assert order == sorted(order)


@given(
    n_nodes=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_lossless_chain_delivers_everything(n_nodes, seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    for _ in range(n_nodes):
        net.add_node()
    for i in range(n_nodes - 1):
        net.add_link(i, i + 1, LinkParams(delay_s=0.001, bandwidth_bps=1e9))
    got = []
    UdpSocket(net.node(n_nodes - 1), 9, on_receive=lambda d: got.append(d))
    sock = UdpSocket(net.node(0), 9)
    for i in range(20):
        sim.call_at(i * 0.01, sock.sendto, Endpoint(n_nodes - 1, 9), i, 100)
    sim.run()
    assert len(got) == 20


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_identical_seeds_identical_outcomes(seed):
    """Whole-network runs are reproducible from the seed."""

    def run():
        sim = Simulator(seed=seed)
        link = Link(sim, 0, 1, LinkParams(loss_prob=0.5, jitter_s=0.01))
        arrived = []
        for i in range(50):
            datagram = Datagram(Endpoint(0, 1), Endpoint(1, 1), i, 200)
            sim.call_at(
                i * 0.002,
                link.forward.transmit,
                datagram,
                lambda d: arrived.append((round(sim.now, 9), d.payload)),
            )
        sim.run()
        return arrived

    assert run() == run()
