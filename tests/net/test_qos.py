"""Unit and integration tests for QoS reservations."""

import pytest

from repro.errors import NetworkError
from repro.net.address import Endpoint
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.qos import QosManager
from repro.net.topologies import build_wan
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator


def lossy_pair(sim, loss=0.3, bandwidth=1e6):
    net = Network(sim)
    net.add_node()
    net.add_node()
    net.add_link(0, 1, LinkParams(
        delay_s=0.001, loss_prob=loss, bandwidth_bps=bandwidth
    ))
    qos = QosManager(net)
    qos.install()
    return net, qos


class TestAdmission:
    def test_reserve_within_capacity(self, sim):
        net, qos = lossy_pair(sim)
        reservation = qos.reserve(0, 1, cbr_bps=400_000, vbr_bps=100_000)
        assert reservation is not None
        assert qos.committed_on(0, 1) == 500_000

    def test_admission_rejects_over_subscription(self, sim):
        net, qos = lossy_pair(sim, bandwidth=1e6)
        assert qos.reserve(0, 1, cbr_bps=500_000) is not None
        # 80% of 1 Mbps is reservable: a second 500 kbps flow won't fit.
        assert qos.reserve(0, 1, cbr_bps=500_000) is None
        assert qos.rejected_admissions == 1

    def test_release_frees_capacity(self, sim):
        net, qos = lossy_pair(sim)
        first = qos.reserve(0, 1, cbr_bps=600_000)
        assert qos.reserve(0, 1, cbr_bps=600_000) is None
        qos.release(first)
        assert qos.committed_on(0, 1) == 0.0
        assert qos.reserve(0, 1, cbr_bps=600_000) is not None

    def test_release_is_idempotent(self, sim):
        net, qos = lossy_pair(sim)
        reservation = qos.reserve(0, 1, cbr_bps=100_000)
        qos.release(reservation)
        qos.release(reservation)
        assert qos.committed_on(0, 1) == 0.0

    def test_unreachable_path_rejected(self, sim):
        net = Network(sim)
        net.add_node()
        net.add_node()  # no link
        qos = QosManager(net)
        qos.install()
        assert qos.reserve(0, 1, cbr_bps=1000) is None

    def test_invalid_rates_rejected(self, sim):
        net, qos = lossy_pair(sim)
        with pytest.raises(NetworkError):
            qos.reserve(0, 1, cbr_bps=0)
        with pytest.raises(NetworkError):
            qos.reserve(0, 1, cbr_bps=100, vbr_bps=-1)

    def test_invalid_fraction_rejected(self, sim):
        net = Network(sim)
        with pytest.raises(NetworkError):
            QosManager(net, reservable_fraction=0.0)


class TestGuaranteedDelivery:
    def test_reserved_flow_is_lossless(self, sim):
        net, qos = lossy_pair(sim, loss=0.5)
        reservation = qos.reserve(0, 1, cbr_bps=500_000)
        got = []
        UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d.payload))
        sock = UdpSocket(net.node(0), 9)
        for i in range(200):
            sim.call_at(
                i * 0.01, sock.sendto, Endpoint(1, 9), i, 500,
                reservation.flow_id,
            )
        sim.run_until(5.0)
        assert got == list(range(200))  # all delivered, in order

    def test_unreserved_flow_still_lossy(self, sim):
        net, qos = lossy_pair(sim, loss=0.5)
        got = []
        UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d))
        sock = UdpSocket(net.node(0), 9)
        for i in range(200):
            sim.call_at(i * 0.01, sock.sendto, Endpoint(1, 9), i, 500)
        sim.run_until(5.0)
        assert 50 < len(got) < 150

    def test_nonconforming_traffic_policed_to_best_effort(self, sim):
        # Reserve 100 kbps but blast ~4 Mbps: excess is policed.
        net, qos = lossy_pair(sim, loss=0.9, bandwidth=1e7)
        reservation = qos.reserve(0, 1, cbr_bps=100_000)
        got = []
        UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d))
        sock = UdpSocket(net.node(0), 9)
        for i in range(1000):
            sim.call_at(
                i * 0.001, sock.sendto, Endpoint(1, 9), i, 500,
                reservation.flow_id,
            )
        sim.run_until(3.0)
        assert qos.policed_packets > 0
        # Conforming share got through; policed share faced 90% loss.
        assert len(got) < 1000

    def test_guaranteed_skips_jitter(self, sim):
        net = Network(sim)
        net.add_node()
        net.add_node()
        net.add_link(0, 1, LinkParams(
            delay_s=0.010, jitter_s=0.05, bandwidth_bps=1e9
        ))
        qos = QosManager(net)
        qos.install()
        reservation = qos.reserve(0, 1, cbr_bps=1_000_000)
        arrivals = []
        UdpSocket(net.node(1), 9, on_receive=lambda d: arrivals.append(sim.now))
        sock = UdpSocket(net.node(0), 9)
        for i in range(20):
            sim.call_at(
                i * 0.1, sock.sendto, Endpoint(1, 9), i, 500,
                reservation.flow_id,
            )
        sim.run_until(5.0)
        latencies = [t - i * 0.1 for i, t in enumerate(arrivals)]
        spread = max(latencies) - min(latencies)
        assert spread < 0.001  # essentially jitter-free


class TestQosVodService:
    def test_wan_playback_near_lossless_with_qos(self):
        from repro.media.catalog import MovieCatalog
        from repro.media.movie import Movie
        from repro.server.server import ServerConfig
        from repro.service.deployment import Deployment

        sim = Simulator(seed=5)
        topology = build_wan(sim, 2, 1)
        catalog = MovieCatalog([Movie.synthetic("feature", duration_s=60)])
        deployment = Deployment(
            topology,
            catalog,
            server_nodes=[0, 1],
            server_config=ServerConfig(use_qos=True),
            enable_qos=True,
        )
        client = deployment.attach_client(2)
        client.request_movie("feature")
        sim.run_until(70.0)
        assert client.finished
        # The reserved stream loses nothing in the network; the only
        # skips are the startup refill's buffer-overflow discards.
        assert client.skipped_total == client.stats.overflow_discards
        assert client.skipped_total <= 15
        assert client.late_total == 0  # no reordering on a CBR channel
        assert deployment.qos.policed_packets == 0  # stream conformed

    def test_reservation_released_on_session_end(self):
        from repro.media.catalog import MovieCatalog
        from repro.media.movie import Movie
        from repro.server.server import ServerConfig
        from repro.service.deployment import Deployment

        sim = Simulator(seed=5)
        topology = build_wan(sim, 2, 1)
        catalog = MovieCatalog([Movie.synthetic("feature", duration_s=15)])
        deployment = Deployment(
            topology,
            catalog,
            server_nodes=[0, 1],
            server_config=ServerConfig(use_qos=True),
            enable_qos=True,
        )
        client = deployment.attach_client(2)
        client.request_movie("feature")
        sim.run_until(10.0)
        assert len(deployment.qos.reservations) == 1
        client.stop()
        sim.run_until(15.0)
        assert len(deployment.qos.reservations) == 0
