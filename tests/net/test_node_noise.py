"""Tests for process-scheduling delivery noise on nodes."""

from repro.net.address import Endpoint
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator


def build_pair(sim, noise=0.0):
    net = Network(sim)
    net.add_node()
    net.add_node()
    net.add_link(0, 1, LinkParams(delay_s=0.001, bandwidth_bps=1e9))
    net.node(1).scheduling_noise_s = noise
    return net


def latencies(sim, net, count=50):
    arrivals = []
    UdpSocket(net.node(1), 9, on_receive=lambda d: arrivals.append(sim.now))
    sock = UdpSocket(net.node(0), 9)
    for i in range(count):
        sim.call_at(i * 0.1, sock.sendto, Endpoint(1, 9), i, 100)
    sim.run()
    return [t - i * 0.1 for i, t in enumerate(arrivals)]


def test_no_noise_is_deterministic_latency():
    sim = Simulator(seed=1)
    values = latencies(sim, build_pair(sim))
    assert max(values) - min(values) < 1e-9


def test_noise_spreads_latency_within_bound():
    sim = Simulator(seed=1)
    values = latencies(sim, build_pair(sim, noise=0.02))
    assert max(values) - min(values) > 0.005
    assert all(v <= 0.001 + 0.02 + 1e-6 for v in values)


def test_all_packets_still_delivered():
    sim = Simulator(seed=2)
    net = build_pair(sim, noise=0.05)
    got = []
    UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d.payload))
    sock = UdpSocket(net.node(0), 9)
    for i in range(100):
        sim.call_at(i * 0.01, sock.sendto, Endpoint(1, 9), i, 100)
    sim.run()
    assert sorted(got) == list(range(100))


def test_crash_during_noise_window_drops():
    sim = Simulator(seed=3)
    net = build_pair(sim, noise=0.5)
    got = []
    UdpSocket(net.node(1), 9, on_receive=lambda d: got.append(d))
    UdpSocket(net.node(0), 9).sendto(Endpoint(1, 9), "x", 100)
    sim.call_at(0.002, net.node(1).crash)  # arrives, then node dies
    sim.run()
    assert got == []
