"""Unit tests for synthetic movies."""

import pytest

from repro.errors import MediaError
from repro.media.frames import FrameType
from repro.media.movie import Movie


def test_frame_count_matches_duration():
    movie = Movie.synthetic("m", duration_s=10.0, fps=30)
    assert len(movie) == 300
    assert movie.duration_s == pytest.approx(10.0)


def test_bitrate_calibration():
    movie = Movie.synthetic("m", duration_s=60.0, bitrate_bps=1.4e6)
    assert movie.bitrate_bps() == pytest.approx(1.4e6, rel=0.05)


def test_mean_frame_size_near_nominal():
    movie = Movie.synthetic("m", duration_s=30.0)
    assert movie.mean_frame_bytes() == pytest.approx(1.4e6 / 8 / 30, rel=0.05)


def test_gop_structure_followed():
    movie = Movie.synthetic("m", duration_s=2.0, gop="IBBP")
    assert movie.frame(1).ftype == FrameType.I
    assert movie.frame(2).ftype == FrameType.B
    assert movie.frame(4).ftype == FrameType.P
    assert movie.frame(5).ftype == FrameType.I


def test_i_frames_larger_than_b_frames():
    movie = Movie.synthetic("m", duration_s=30.0)
    i_sizes = [f.size_bytes for f in movie.frames if f.ftype == FrameType.I]
    b_sizes = [f.size_bytes for f in movie.frames if f.ftype == FrameType.B]
    mean_i = sum(i_sizes) / len(i_sizes)
    mean_b = sum(b_sizes) / len(b_sizes)
    assert mean_i > 3 * mean_b


def test_deterministic_in_title():
    a = Movie.synthetic("same", duration_s=5.0)
    b = Movie.synthetic("same", duration_s=5.0)
    assert [f.size_bytes for f in a.frames] == [f.size_bytes for f in b.frames]


def test_different_titles_differ():
    a = Movie.synthetic("one", duration_s=5.0)
    b = Movie.synthetic("two", duration_s=5.0)
    assert [f.size_bytes for f in a.frames] != [f.size_bytes for f in b.frames]


def test_frame_accessor_is_one_based():
    movie = Movie.synthetic("m", duration_s=1.0)
    assert movie.frame(1).index == 1
    with pytest.raises(MediaError):
        movie.frame(0)
    with pytest.raises(MediaError):
        movie.frame(len(movie) + 1)


def test_index_at_clamps():
    movie = Movie.synthetic("m", duration_s=10.0, fps=30)
    assert movie.index_at(0.0) == 1
    assert movie.index_at(1.0) == 31
    assert movie.index_at(999.0) == 300


def test_validation():
    with pytest.raises(MediaError):
        Movie.synthetic("m", duration_s=0)
    with pytest.raises(MediaError):
        Movie.synthetic("m", duration_s=1.0, fps=0)
    with pytest.raises(MediaError):
        Movie.synthetic("m", duration_s=1.0, size_variation=1.5)


def test_minimum_frame_size_floor():
    movie = Movie.synthetic("m", duration_s=5.0, bitrate_bps=1000)
    assert all(f.size_bytes >= 64 for f in movie.frames)
