"""Property-based tests for the media model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.decoder import HardwareDecoder
from repro.media.frames import Frame, FrameType, GopPattern
from repro.media.movie import Movie


@given(
    duration=st.floats(min_value=0.5, max_value=60.0),
    fps=st.integers(min_value=5, max_value=60),
    bitrate=st.floats(min_value=1e5, max_value=1e7),
)
@settings(max_examples=40, deadline=None)
def test_synthetic_movie_invariants(duration, fps, bitrate):
    movie = Movie.synthetic("p", duration_s=duration, fps=fps,
                            bitrate_bps=bitrate)
    assert len(movie) == int(round(duration * fps))
    assert movie.frame(1).ftype == FrameType.I
    indices = [frame.index for frame in movie.frames]
    assert indices == list(range(1, len(movie) + 1))
    # Calibration holds once the movie spans whole GOPs (a fragment of
    # a GOP over-weights the large I frame) and sizes clear the floor.
    if bitrate / (8 * fps) > 500 and len(movie) >= 36:
        assert movie.bitrate_bps() == pytest.approx(bitrate, rel=0.1)


@given(
    pattern=st.sampled_from(["I", "IP", "IBBP", "IBBPBBPBBPBB", "IPPPP"]),
    index=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=100, deadline=None)
def test_gop_cycles_consistently(pattern, index):
    gop = GopPattern(pattern)
    assert gop.frame_type(index) == gop.frame_type(index + len(gop))


@st.composite
def decoder_traffic(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    sizes = draw(
        st.lists(
            st.integers(min_value=100, max_value=8000),
            min_size=count, max_size=count,
        )
    )
    # Ascending, possibly gapped indices.
    steps = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=count, max_size=count,
        )
    )
    indices = []
    current = 0
    for step in steps:
        current += step
        indices.append(current)
    return list(zip(indices, sizes))


@given(traffic=decoder_traffic())
@settings(max_examples=100, deadline=None)
def test_decoder_conservation(traffic):
    """pushed == displayed + still queued; bytes never exceed capacity;
    displayed indices strictly increase; gaps accounted exactly."""
    decoder = HardwareDecoder(capacity_bytes=10**9)
    pushed = 0
    for index, size in traffic:
        frame = Frame("m", index, FrameType.P, size)
        decoder.push(frame)
        pushed += 1
    displayed = []
    t = 0.0
    while decoder.occupancy_frames:
        t += 0.033
        frame = decoder.consume_one(t)
        displayed.append(frame.index)
    assert len(displayed) + decoder.occupancy_frames == pushed
    assert displayed == sorted(displayed)
    total_gap = sum(b - a - 1 for a, b in zip(displayed, displayed[1:]))
    first_gap = displayed[0] - 1 if displayed else 0
    assert decoder.stats.skipped_gaps == total_gap + first_gap
