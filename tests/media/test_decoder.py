"""Unit tests for the hardware decoder model."""

import pytest

from repro.errors import MediaError
from repro.media.decoder import HardwareDecoder
from repro.media.frames import Frame, FrameType


def frame(index, size=1000):
    return Frame("m", index, FrameType.P, size)


def test_push_and_consume_fifo():
    decoder = HardwareDecoder(10_000)
    decoder.push(frame(1))
    decoder.push(frame(2))
    assert decoder.consume_one(0.0).index == 1
    assert decoder.consume_one(0.1).index == 2


def test_occupancy_tracking():
    decoder = HardwareDecoder(10_000)
    decoder.push(frame(1, 3000))
    decoder.push(frame(2, 2000))
    assert decoder.occupancy_bytes == 5000
    assert decoder.occupancy_frames == 2
    decoder.consume_one(0.0)
    assert decoder.occupancy_bytes == 2000


def test_has_space_for():
    decoder = HardwareDecoder(2500)
    decoder.push(frame(1, 2000))
    assert not decoder.has_space_for(frame(2, 1000))
    assert decoder.has_space_for(frame(2, 500))


def test_overflow_push_raises():
    decoder = HardwareDecoder(1500)
    decoder.push(frame(1, 1000))
    with pytest.raises(MediaError):
        decoder.push(frame(2, 1000))


def test_out_of_order_push_raises():
    decoder = HardwareDecoder(10_000)
    decoder.push(frame(5))
    with pytest.raises(MediaError):
        decoder.push(frame(3))
    with pytest.raises(MediaError):
        decoder.push(frame(5))  # same index again


def test_display_gap_counts_skipped():
    decoder = HardwareDecoder(10_000)
    decoder.push(frame(1))
    decoder.push(frame(4))  # 2 and 3 never arrived
    decoder.consume_one(0.0)
    decoder.consume_one(0.1)
    assert decoder.stats.skipped_gaps == 2
    assert decoder.stats.displayed == 2
    assert decoder.stats.last_displayed_index == 4


def test_stall_accounting():
    decoder = HardwareDecoder(10_000)
    assert decoder.consume_one(1.0) is None  # stall starts
    assert decoder.is_stalled
    assert decoder.stats.stall_events == 1
    decoder.push(frame(1))
    decoder.consume_one(3.5)  # stall ends
    assert decoder.stats.stall_time_s == pytest.approx(2.5)
    assert not decoder.is_stalled


def test_consecutive_dry_ticks_are_one_stall():
    decoder = HardwareDecoder(10_000)
    decoder.consume_one(1.0)
    decoder.consume_one(2.0)
    decoder.consume_one(3.0)
    assert decoder.stats.stall_events == 1
    assert decoder.stats.stall_starts == [1.0]


def test_end_stall_closes_open_interval():
    decoder = HardwareDecoder(10_000)
    decoder.consume_one(1.0)
    decoder.end_stall(4.0)
    assert decoder.stats.stall_time_s == pytest.approx(3.0)
    decoder.end_stall(9.0)  # idempotent
    assert decoder.stats.stall_time_s == pytest.approx(3.0)


def test_flush_and_reposition_for_seek():
    decoder = HardwareDecoder(10_000)
    decoder.push(frame(1))
    decoder.push(frame(2))
    assert decoder.flush() == 2
    assert decoder.occupancy_bytes == 0
    decoder.reposition(100)
    decoder.push(frame(100))
    consumed = decoder.consume_one(0.0)
    assert consumed.index == 100
    # No skip is charged for the jump: reposition reset the base.
    assert decoder.stats.skipped_gaps == 0


def test_capacity_validation():
    with pytest.raises(MediaError):
        HardwareDecoder(0)
