"""Tests for variable-bitrate movies and playback over them."""

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.frames import FrameType
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def windowed_bitrates(movie, window_s=3.0):
    window = int(window_s * movie.fps)
    rates = []
    for start in range(0, len(movie) - window, window):
        chunk = movie.frames[start:start + window]
        rates.append(sum(f.size_bytes for f in chunk) * 8 / window_s)
    return rates


class TestVbrGenerator:
    def test_scene_variability(self):
        movie = Movie.synthetic_vbr("v", duration_s=120)
        rates = windowed_bitrates(movie)
        assert max(rates) / min(rates) > 1.8  # real scene swings

    def test_cbr_generator_is_much_flatter(self):
        movie = Movie.synthetic("c", duration_s=120)
        rates = windowed_bitrates(movie)
        assert max(rates) / min(rates) < 1.3

    def test_gop_structure_preserved(self):
        movie = Movie.synthetic_vbr("v", duration_s=10)
        assert movie.frame(1).ftype == FrameType.I
        assert movie.frame(13).ftype == FrameType.I  # 12-frame GOP

    def test_deterministic_in_title(self):
        a = Movie.synthetic_vbr("same", duration_s=10)
        b = Movie.synthetic_vbr("same", duration_s=10)
        assert [f.size_bytes for f in a.frames] == [
            f.size_bytes for f in b.frames
        ]

    def test_frame_count_matches_duration(self):
        movie = Movie.synthetic_vbr("v", duration_s=30, fps=30)
        assert len(movie) == 900

    def test_validation(self):
        from repro.errors import MediaError

        with pytest.raises(MediaError):
            Movie.synthetic_vbr("v", duration_s=0)


class TestVbrPlayback:
    def test_flow_control_rides_scene_changes(self):
        """The frame-counted flow control keeps playback smooth while
        the byte-bounded hardware buffer breathes with the scenes."""
        sim = Simulator(seed=19)
        topology = build_lan(sim, n_hosts=3)
        movie = Movie.synthetic_vbr("vbr-feature", duration_s=120)
        catalog = MovieCatalog([movie])
        deployment = Deployment(topology, catalog, server_nodes=[0])
        client = deployment.attach_client(1)
        client.request_movie("vbr-feature")
        sim.run_until(135.0)
        assert client.finished
        assert client.decoder.stats.stall_time_s <= 0.5
        # Display lost at most a small fraction of frames.
        assert client.skipped_total < 0.03 * len(movie)

    def test_vbr_failover_still_transparent(self):
        sim = Simulator(seed=19)
        topology = build_lan(sim, n_hosts=4)
        catalog = MovieCatalog([Movie.synthetic_vbr("vbr", duration_s=90)])
        deployment = Deployment(topology, catalog, server_nodes=[0, 1])
        client = deployment.attach_client(2)
        client.request_movie("vbr")

        def crash_serving():
            for server in deployment.live_servers():
                if server.process == client.serving_server:
                    server.crash()

        sim.call_at(40.0, crash_serving)
        sim.run_until(80.0)
        assert client.serving_server is not None
        assert client.decoder.stats.stall_time_s <= 0.5
