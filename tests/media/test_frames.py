"""Unit tests for frame types and GOP patterns."""

import pytest

from repro.errors import MediaError
from repro.media.frames import Frame, FrameType, GopPattern


def test_frame_types():
    assert FrameType.I.is_intra
    assert not FrameType.P.is_intra
    assert not FrameType.B.is_intra


def test_frame_validation():
    with pytest.raises(MediaError):
        Frame("m", 0, FrameType.I, 100)
    with pytest.raises(MediaError):
        Frame("m", 1, FrameType.I, 0)


def test_frame_is_intra_shortcut():
    assert Frame("m", 1, FrameType.I, 100).is_intra
    assert not Frame("m", 2, FrameType.B, 100).is_intra


def test_default_gop_pattern():
    gop = GopPattern()
    assert gop.pattern == "IBBPBBPBBPBB"
    assert len(gop) == 12


def test_gop_frame_type_cycles():
    gop = GopPattern("IBBP")
    assert gop.frame_type(1) == FrameType.I
    assert gop.frame_type(2) == FrameType.B
    assert gop.frame_type(4) == FrameType.P
    assert gop.frame_type(5) == FrameType.I  # next GOP starts


def test_gop_must_start_with_i_frame():
    with pytest.raises(MediaError):
        GopPattern("BBI")


def test_gop_rejects_garbage():
    with pytest.raises(MediaError):
        GopPattern("IXZ")
    with pytest.raises(MediaError):
        GopPattern("")


def test_mean_weight():
    gop = GopPattern("IB")
    expected = (5.0 + 1.0) / 2
    assert gop.mean_weight() == pytest.approx(expected)
