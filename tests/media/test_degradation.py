"""GOP-damage accounting: the paper's "slight transient degradation"."""

import pytest

from repro.media.decoder import HardwareDecoder
from repro.media.frames import Frame, FrameType


def frame(index, ftype=FrameType.P, size=1000):
    return Frame("m", index, ftype, size)


def play(decoder, frames):
    t = 0.0
    for f in frames:
        decoder.push(f)
    while decoder.occupancy_frames:
        t += 0.033
        decoder.consume_one(t)


def test_clean_stream_has_no_degradation():
    decoder = HardwareDecoder(10**7)
    stream = [frame(1, FrameType.I)] + [frame(i) for i in range(2, 13)]
    play(decoder, stream)
    assert decoder.stats.degraded_frames == 0
    assert decoder.stats.degradation_episodes == 0


def test_lost_incremental_degrades_until_next_i_frame():
    decoder = HardwareDecoder(10**7)
    # GOP: I(1) P(2..6); frame 3 lost; next GOP at 7.
    stream = (
        [frame(1, FrameType.I), frame(2), frame(4), frame(5), frame(6),
         frame(7, FrameType.I), frame(8)]
    )
    play(decoder, stream)
    # 4, 5, 6 rendered on a damaged GOP; the I frame at 7 repairs it.
    assert decoder.stats.degraded_frames == 3
    assert decoder.stats.degradation_episodes == 1


def test_lost_i_frame_degrades_whole_gop():
    decoder = HardwareDecoder(10**7)
    # I(1) P(2,3) | I(4) lost | P(5,6) | I(7)...
    stream = [
        frame(1, FrameType.I), frame(2), frame(3),
        frame(5), frame(6), frame(7, FrameType.I),
    ]
    play(decoder, stream)
    assert decoder.stats.degraded_frames == 2  # 5 and 6
    assert decoder.stats.degradation_episodes == 1


def test_i_frame_after_gap_is_clean():
    decoder = HardwareDecoder(10**7)
    # Gap right before an I frame: the I frame itself is intact.
    stream = [frame(1, FrameType.I), frame(2), frame(4, FrameType.I), frame(5)]
    play(decoder, stream)
    assert decoder.stats.degraded_frames == 0


def test_two_separate_episodes_counted():
    decoder = HardwareDecoder(10**7)
    stream = [
        frame(1, FrameType.I), frame(3),               # episode 1
        frame(4, FrameType.I), frame(5),
        frame(7),                                      # episode 2 (6 lost)
        frame(8, FrameType.I), frame(9),
    ]
    play(decoder, stream)
    assert decoder.stats.degradation_episodes == 2
    assert decoder.stats.degraded_frames == 2  # frames 3 and 7


def test_seek_counts_as_damage_until_next_i():
    decoder = HardwareDecoder(10**7)
    decoder.reposition(50)
    play(decoder, [frame(50), frame(51), frame(52, FrameType.I), frame(53)])
    assert decoder.stats.degraded_frames == 2  # 50, 51 pre-I


def test_lan_scenario_degradation_matches_paper():
    """Figure 4(a): since no I frame is ever discarded, each emergency's
    few lost incremental frames degrade the image for less than one
    second — "this degradation was not noticeable"."""
    from repro.experiments.figure4 import run_figure4

    figure = run_figure4()
    stats = figure.result.client.decoder.stats
    movie_fps = 30
    if stats.degradation_episodes:
        mean_burst = stats.degraded_frames / stats.degradation_episodes
        assert mean_burst <= movie_fps  # under a second of damage each
    # Total degradation across the entire 240 s run stays tiny.
    assert stats.degraded_frames <= 60
