"""Unit tests for the movie catalog and replication map."""

import pytest

from repro.errors import UnknownMovieError
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie


@pytest.fixture
def catalog():
    return MovieCatalog(
        [Movie.synthetic("a", duration_s=1.0), Movie.synthetic("b", duration_s=1.0)]
    )


def test_titles_sorted(catalog):
    assert catalog.titles() == ["a", "b"]


def test_contains(catalog):
    assert "a" in catalog
    assert "zzz" not in catalog


def test_movie_lookup(catalog):
    assert catalog.movie("a").title == "a"
    with pytest.raises(UnknownMovieError):
        catalog.movie("zzz")


def test_replica_placement(catalog):
    catalog.place_replica("a", "s1")
    catalog.place_replica("a", "s2")
    assert catalog.replicas("a") == {"s1", "s2"}
    assert catalog.replication_degree("a") == 2


def test_replicate_unknown_movie_raises(catalog):
    with pytest.raises(UnknownMovieError):
        catalog.place_replica("zzz", "s1")


def test_replicas_of_unknown_movie_raises(catalog):
    with pytest.raises(UnknownMovieError):
        catalog.replicas("zzz")


def test_movies_of_server(catalog):
    catalog.place_replica("a", "s1")
    catalog.place_replica("b", "s1")
    catalog.place_replica("a", "s2")
    assert catalog.movies_of("s1") == ["a", "b"]
    assert catalog.movies_of("s2") == ["a"]
    assert catalog.movies_of("nobody") == []


def test_remove_replica(catalog):
    catalog.place_replica("a", "s1")
    catalog.remove_replica("a", "s1")
    assert catalog.replicas("a") == set()
    catalog.remove_replica("a", "never-there")  # no-op


def test_add_movie_later():
    catalog = MovieCatalog()
    catalog.add_movie(Movie.synthetic("late", duration_s=1.0))
    assert "late" in catalog


def test_replicas_returns_copy(catalog):
    catalog.place_replica("a", "s1")
    catalog.replicas("a").add("intruder")
    assert catalog.replicas("a") == {"s1"}


class TestRoundRobinPlacement:
    def make_catalog(self, n_movies=6):
        return MovieCatalog(
            [Movie.synthetic(f"m{i}", duration_s=1.0) for i in range(n_movies)]
        )

    def test_every_movie_gets_k_replicas(self):
        catalog = self.make_catalog()
        catalog.place_round_robin(["s0", "s1", "s2"], k=2)
        for title in catalog.titles():
            assert catalog.replication_degree(title) == 2

    def test_storage_balanced(self):
        catalog = self.make_catalog(n_movies=6)
        catalog.place_round_robin(["s0", "s1", "s2"], k=2)
        loads = [len(catalog.movies_of(s)) for s in ("s0", "s1", "s2")]
        assert max(loads) - min(loads) <= 1

    def test_k_equals_n_is_full_replication(self):
        catalog = self.make_catalog(n_movies=3)
        catalog.place_round_robin(["s0", "s1"], k=2)
        for title in catalog.titles():
            assert catalog.replicas(title) == {"s0", "s1"}

    def test_validation(self):
        from repro.errors import MediaError

        catalog = self.make_catalog()
        with pytest.raises(MediaError):
            catalog.place_round_robin(["s0"], k=2)
        with pytest.raises(MediaError):
            catalog.place_round_robin(["s0"], k=0)


def test_partial_replication_end_to_end():
    """k=2-of-3 placement: a movie's clients survive one failure of its
    replica set, and other movies are untouched."""
    from repro.net.topologies import build_lan
    from repro.service.deployment import Deployment
    from repro.sim.core import Simulator

    sim = Simulator(seed=44)
    topology = build_lan(sim, n_hosts=5)
    catalog = MovieCatalog(
        [Movie.synthetic(f"m{i}", duration_s=60.0) for i in range(3)]
    )
    catalog.place_round_robin(["s0", "s1", "s2"], k=2)
    deployment = Deployment(topology, catalog, replicate_all=False)
    for index, name in enumerate(("s0", "s1", "s2")):
        deployment.add_server(index, name, movies=catalog.movies_of(name))
    client = deployment.attach_client(3)
    client.request_movie("m0")  # replicated on s0 and s1
    sim.run_until(15.0)
    serving = client.serving_server
    assert serving is not None and serving.name in ("s0", "s1")
    deployment.server(serving.name).crash()
    sim.run_until(30.0)
    assert client.serving_server is not None
    assert client.serving_server.name in ("s0", "s1")
    assert client.decoder.stats.stall_time_s <= 1.0
