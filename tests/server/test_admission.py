"""Unit tests for the policy-based admission layer.

Covers the deterministic token bucket (burst, refill, clamping), the
request classifier, the reject/degrade policies (including the resume
exemption and per-class starvation fairness) and the declarative
:class:`AdmissionSpec` factory.
"""

import pytest

from repro.errors import ServiceError
from repro.gcs.view import ProcessId
from repro.net.address import Endpoint
from repro.server.admission import (
    INTERACTIVE,
    RESUME,
    STANDARD,
    AdmissionSpec,
    AdmitAll,
    DegradeOverload,
    RejectOverload,
    TokenBucket,
    classify_request,
)
from repro.service.protocol import ConnectRequest


def request(quality_fps=None, resume_offset=1, name="client0"):
    client = ProcessId(20, name)
    return ConnectRequest(
        client=client,
        movie="feature",
        video_endpoint=Endpoint(client.node, 8000),
        session=f"s.{name}",
        quality_fps=quality_fps,
        resume_offset=resume_offset,
    )


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_bucket_starts_full_and_allows_the_burst():
    bucket = TokenBucket(capacity=3, rate_per_s=0.5)
    assert [bucket.take(0.0) for _ in range(3)] == [True, True, True]
    assert bucket.take(0.0) is False


def test_bucket_refills_at_rate_and_fractions_accumulate():
    bucket = TokenBucket(capacity=3, rate_per_s=0.5)
    for _ in range(3):
        bucket.take(0.0)
    # 1 s at 0.5 tokens/s is only half a token.
    assert bucket.take(1.0) is False
    # ...but another second tops the fraction up to a whole one.
    assert bucket.take(2.0) is True
    assert bucket.take(2.0) is False


def test_bucket_never_exceeds_capacity():
    bucket = TokenBucket(capacity=2, rate_per_s=10.0)
    assert bucket.available(100.0) == pytest.approx(2.0)
    assert [bucket.take(100.0) for _ in range(3)] == [True, True, False]


def test_bucket_zero_rate_never_refills():
    bucket = TokenBucket(capacity=1, rate_per_s=0.0)
    assert bucket.take(0.0) is True
    assert bucket.take(1e9) is False


def test_bucket_failed_take_leaves_tokens_intact():
    bucket = TokenBucket(capacity=1, rate_per_s=0.0)
    bucket.take(0.0)
    before = bucket.available(0.0)
    bucket.take(0.0, amount=1.0)
    assert bucket.available(0.0) == pytest.approx(before)


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ServiceError):
        TokenBucket(capacity=0, rate_per_s=1.0)
    with pytest.raises(ServiceError):
        TokenBucket(capacity=1, rate_per_s=-1.0)


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def test_classify_request_covers_the_three_classes():
    assert classify_request(request()) == STANDARD
    assert classify_request(request(quality_fps=12)) == INTERACTIVE
    assert classify_request(request(resume_offset=500)) == RESUME
    # Resume wins even for a low-rate client: fault recovery first.
    assert classify_request(request(quality_fps=12, resume_offset=500)) == RESUME


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_admit_all_admits_everything():
    policy = AdmitAll()
    for req in (request(), request(quality_fps=12), request(resume_offset=9)):
        decision = policy.decide(0.0, req)
        assert decision.action == "admit"
        assert decision.admitted


def test_reject_policy_rejects_over_budget_then_recovers():
    policy = RejectOverload(rate_per_s=1.0, burst=2.0)
    assert policy.decide(0.0, request()).action == "admit"
    assert policy.decide(0.0, request()).action == "admit"
    rejected = policy.decide(0.0, request())
    assert rejected.action == "reject"
    assert not rejected.admitted
    # The client's 1 s retry cadence meets the refilled bucket.
    assert policy.decide(1.0, request()).action == "admit"


def test_resume_traffic_is_never_throttled():
    policy = RejectOverload(rate_per_s=0.0, burst=1.0)
    policy.decide(0.0, request())  # drain the standard bucket
    for _ in range(10):
        decision = policy.decide(0.0, request(resume_offset=300))
        assert decision.action == "admit"
        assert decision.tclass == RESUME


def test_per_class_buckets_prevent_starvation():
    # A standard-class flash crowd must not consume the interactive
    # class's budget (and vice versa): separate buckets per class.
    policy = RejectOverload(rate_per_s=0.0, burst=1.0)
    assert policy.decide(0.0, request()).action == "admit"
    assert policy.decide(0.0, request()).action == "reject"
    assert policy.decide(0.0, request(quality_fps=12)).action == "admit"
    assert policy.decide(0.0, request(quality_fps=12)).action == "reject"
    # And the exhaustion of both metered classes leaves resume alone.
    assert policy.decide(0.0, request(resume_offset=99)).action == "admit"


def test_degrade_policy_grants_reduced_quality_over_budget():
    policy = DegradeOverload(rate_per_s=0.0, burst=1.0, degraded_fps=12)
    assert policy.decide(0.0, request()).action == "admit"
    decision = policy.decide(0.0, request())
    assert decision.action == "degrade"
    assert decision.admitted  # degraded viewers still get a picture
    assert decision.quality_fps == 12


def test_degrade_policy_never_raises_a_clients_own_request():
    # A software decoder already asking for 8 fps must not be "degraded"
    # *up* to 12: the grant is min(degraded, requested).
    policy = DegradeOverload(rate_per_s=0.0, burst=1.0, degraded_fps=12)
    policy.decide(0.0, request(quality_fps=8))  # drain interactive
    decision = policy.decide(0.0, request(quality_fps=8))
    assert decision.action == "degrade"
    assert decision.quality_fps == 8


def test_degrade_policy_rejects_bad_fps():
    with pytest.raises(ServiceError):
        DegradeOverload(rate_per_s=1.0, burst=1.0, degraded_fps=0)


# ----------------------------------------------------------------------
# AdmissionSpec
# ----------------------------------------------------------------------
def test_spec_open_builds_no_policy():
    assert AdmissionSpec(mode="open").build() is None


def test_spec_builds_the_named_policies():
    reject = AdmissionSpec(mode="reject", rate_per_s=2.0, burst=4.0).build()
    assert isinstance(reject, RejectOverload)
    assert reject.buckets[STANDARD].capacity == pytest.approx(4.0)
    assert reject.buckets[STANDARD].rate_per_s == pytest.approx(2.0)

    degrade = AdmissionSpec(mode="degrade", degraded_fps=15).build()
    assert isinstance(degrade, DegradeOverload)
    assert degrade.degraded_fps == 15


def test_spec_rejects_unknown_mode():
    with pytest.raises(ServiceError):
        AdmissionSpec(mode="best-effort").build()


def test_spec_is_hashable_and_comparable():
    a = AdmissionSpec(mode="degrade", rate_per_s=0.5)
    b = AdmissionSpec(mode="degrade", rate_per_s=0.5)
    assert a == b and hash(a) == hash(b)
    assert a != AdmissionSpec(mode="reject", rate_per_s=0.5)
