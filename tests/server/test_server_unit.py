"""Unit-level tests of VoDServer internals via a minimal deployment."""

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.service.protocol import ConnectRequest, movie_group
from repro.sim.core import Simulator


def make(n_servers=2, movies=("m",), seed=8):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + 2)
    catalog = MovieCatalog(
        [Movie.synthetic(title, duration_s=60) for title in movies]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers))
    )
    return sim, topology, deployment


class TestConnectPath:
    def test_connect_for_unknown_movie_ignored(self):
        sim, topo, deployment = make()
        sim.run_until(2.0)
        server = deployment.server("server0")
        request = ConnectRequest(
            client=server.endpoint.process_id("ghost"),
            movie="not-a-movie",
            video_endpoint=server.video_socket.endpoint,
            session="s.ghost",
        )
        server._on_connect(request)
        assert server.n_clients == 0

    def test_duplicate_connect_is_idempotent(self):
        sim, topo, deployment = make()
        client = deployment.attach_client(2)
        client.request_movie("m")
        sim.run_until(5.0)
        total = sum(s.n_clients for s in deployment.servers.values())
        assert total == 1
        # The client's retry timer may have fired several times already;
        # force one more connect round and re-check.
        client._send_connect()
        sim.run_until(7.0)
        total = sum(s.n_clients for s in deployment.servers.values())
        assert total == 1

    def test_quality_request_propagates_to_session(self):
        sim, topo, deployment = make()
        client = deployment.attach_client(2)
        client.request_movie("m", quality_fps=10)
        sim.run_until(5.0)
        sessions = [
            s for server in deployment.servers.values()
            for s in server.sessions.values()
        ]
        assert sessions and sessions[0].quality_fps == 10


class TestMovies:
    def test_add_movie_on_the_fly(self):
        """"new movies can be added on the fly by storing them on
        machines where servers are running" (Section 7)."""
        sim, topo, deployment = make(movies=("m",))
        sim.run_until(2.0)
        deployment.catalog.add_movie(Movie.synthetic("late", duration_s=30))
        for server in deployment.servers.values():
            server.add_movie("late")
        sim.run_until(4.0)
        client = deployment.attach_client(2)
        client.request_movie("late")
        sim.run_until(10.0)
        assert client.serving_server is not None
        assert client.displayed_total > 100

    def test_movie_group_contains_only_replica_holders(self):
        sim, topo, deployment = make(n_servers=2, movies=("m",))
        sim.run_until(2.0)
        view = deployment.server("server0").endpoint.group_view(
            movie_group("m")
        )
        names = {member.name for member in view.members}
        assert names == {"server0", "server1"}

    def test_partial_replication(self):
        sim = Simulator(seed=8)
        topology = build_lan(sim, n_hosts=4)
        catalog = MovieCatalog([
            Movie.synthetic("a", duration_s=30),
            Movie.synthetic("b", duration_s=30),
        ])
        deployment = Deployment(topology, catalog, replicate_all=False)
        deployment.add_server(0, "s0", movies=["a"])
        deployment.add_server(1, "s1", movies=["b"])
        sim.run_until(2.0)
        client = deployment.attach_client(2)
        client.request_movie("b")
        sim.run_until(6.0)
        assert deployment.server("s1").n_clients == 1
        assert deployment.server("s0").n_clients == 0


class TestLifecycle:
    def test_crash_is_idempotent(self):
        sim, topo, deployment = make()
        server = deployment.server("server0")
        server.crash()
        server.crash()
        assert not server.running

    def test_shutdown_is_idempotent(self):
        sim, topo, deployment = make()
        sim.run_until(1.0)
        server = deployment.server("server0")
        server.shutdown()
        server.shutdown()
        assert not server.running

    def test_video_counters_track_traffic(self):
        sim, topo, deployment = make()
        client = deployment.attach_client(2)
        client.request_movie("m")
        sim.run_until(10.0)
        total_frames = sum(
            s.video_frames_sent for s in deployment.servers.values()
        )
        assert total_frames >= client.stats.received > 0

    def test_deployment_name_collisions_rejected(self):
        from repro.errors import ServiceError

        sim, topo, deployment = make()
        with pytest.raises(ServiceError):
            deployment.add_server(0, "server0")
        deployment.attach_client(2, "c")
        with pytest.raises(ServiceError):
            deployment.attach_client(3, "c")

    def test_unknown_lookups_raise(self):
        from repro.errors import ServiceError

        sim, topo, deployment = make()
        with pytest.raises(ServiceError):
            deployment.server("nope")
        with pytest.raises(ServiceError):
            deployment.client("nope")
