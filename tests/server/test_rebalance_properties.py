"""Property-based tests for the deterministic redistribution rule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcs.view import ProcessId
from repro.net.address import Endpoint
from repro.server.state import rebalance
from repro.service.protocol import ClientRecord

SERVERS = [ProcessId(i, f"server{i}") for i in range(1, 6)]
CLIENTS = [ProcessId(20 + i, f"client{i}") for i in range(12)]


def record(client, server):
    return ClientRecord(
        client=client,
        movie="m",
        session=f"s.{client.name}",
        video_endpoint=Endpoint(client.node, 8000),
        offset=1,
        rate_fps=30,
        quality_fps=None,
        paused=False,
        epoch=0,
        server=server,
        updated_at=0.0,
    )


@st.composite
def situations(draw):
    n_servers = draw(st.integers(min_value=1, max_value=5))
    live = SERVERS[:n_servers]
    n_joined = draw(st.integers(min_value=0, max_value=n_servers))
    joined = live[:n_joined]
    n_clients = draw(st.integers(min_value=0, max_value=12))
    records = [
        record(CLIENTS[i], draw(st.sampled_from(SERVERS)))
        for i in range(n_clients)
    ]
    return records, live, joined


@given(situation=situations())
@settings(max_examples=200, deadline=None)
def test_every_client_assigned_to_a_live_server(situation):
    records, live, joined = situation
    assignment = rebalance(records, live, joined)
    assert set(assignment) == {r.client for r in records}
    assert set(assignment.values()) <= set(live)


@given(situation=situations())
@settings(max_examples=200, deadline=None)
def test_deterministic_and_input_order_independent(situation):
    records, live, joined = situation
    a = rebalance(records, live, joined)
    b = rebalance(list(reversed(records)), list(reversed(live)),
                  list(reversed(joined)))
    assert a == b


@given(situation=situations())
@settings(max_examples=200, deadline=None)
def test_join_regime_is_even(situation):
    records, live, joined = situation
    if not joined or not records:
        return
    assignment = rebalance(records, live, joined)
    loads = {server: 0 for server in live}
    for server in assignment.values():
        loads[server] += 1
    assert max(loads.values()) - min(loads.values()) <= 1


@given(situation=situations())
@settings(max_examples=200, deadline=None)
def test_failure_regime_keeps_survivor_clients(situation):
    records, live, _joined = situation
    assignment = rebalance(records, live, joined=())
    for rec in records:
        if rec.server in live:
            assert assignment[rec.client] == rec.server


@given(situation=situations())
@settings(max_examples=100, deadline=None)
def test_failure_regime_idempotent(situation):
    records, live, _joined = situation
    first = rebalance(records, live, joined=())
    re_records = [record(c, s) for c, s in first.items()]
    second = rebalance(re_records, live, joined=())
    assert first == second
