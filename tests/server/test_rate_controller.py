"""Unit tests for the rate controller and emergency decay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.server.rate_controller import EmergencyConfig, RateController
from repro.service.protocol import EmergencyLevel, FlowControlMsg, FlowKind

INC = FlowControlMsg(FlowKind.INCREASE)
DEC = FlowControlMsg(FlowKind.DECREASE)
SEVERE = FlowControlMsg(FlowKind.EMERGENCY, EmergencyLevel.SEVERE)
MILD = FlowControlMsg(FlowKind.EMERGENCY, EmergencyLevel.MILD)


class TestEmergencyConfig:
    def test_severe_sequence_sums_to_43(self):
        """The paper's q=12, f=0.8 with iterated truncation: 43 frames."""
        config = EmergencyConfig()
        assert config.sequence(EmergencyLevel.SEVERE) == [12, 9, 7, 5, 4, 3, 2, 1]
        assert config.total_extra_frames(EmergencyLevel.SEVERE) == 43

    def test_mild_sequence_sums_to_16(self):
        """q=6 gives 16 (the paper reports ~15; see DESIGN.md)."""
        config = EmergencyConfig()
        assert config.sequence(EmergencyLevel.MILD) == [6, 4, 3, 2, 1]
        assert config.total_extra_frames(EmergencyLevel.MILD) == 16

    def test_zero_base_means_no_refill(self):
        config = EmergencyConfig(base_severe=0, base_mild=0)
        assert config.sequence(EmergencyLevel.SEVERE) == []

    def test_validation(self):
        with pytest.raises(ServiceError):
            EmergencyConfig(base_severe=3, base_mild=6).validate()
        with pytest.raises(ServiceError):
            EmergencyConfig(decay=1.0).validate()
        with pytest.raises(ServiceError):
            EmergencyConfig(decay=0.0).validate()


class TestRateAdjustment:
    def test_increase_and_decrease_one_fps(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(INC)
        assert rate.current_rate() == 31
        rate.on_flow_message(DEC)
        rate.on_flow_message(DEC)
        assert rate.current_rate() == 29

    def test_rate_capped_at_bounds(self):
        rate = RateController(base_rate=30, min_rate=29, max_rate=31)
        for _ in range(5):
            rate.on_flow_message(INC)
        assert rate.base_rate == 31
        for _ in range(10):
            rate.on_flow_message(DEC)
        assert rate.base_rate == 29

    def test_invalid_bounds_raise(self):
        with pytest.raises(ServiceError):
            RateController(base_rate=10, min_rate=20, max_rate=30)


class TestEmergency:
    def test_emergency_adds_quantity_to_rate(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        assert rate.current_rate() == 42
        assert rate.in_emergency

    def test_mild_emergency_uses_smaller_base(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(MILD)
        assert rate.current_rate() == 36

    def test_all_requests_ignored_during_emergency(self):
        """"the server ignores all flow control requests" (Section 4.1)."""
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        for message in (INC, DEC, SEVERE, MILD):
            rate.on_flow_message(message)
        assert rate.base_rate == 30
        assert rate.emergency_quantity == 12
        assert rate.requests_ignored == 4

    def test_decay_follows_truncated_sequence(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        observed = [rate.emergency_quantity]
        while rate.in_emergency:
            rate.decay_tick()
            if rate.emergency_quantity:
                observed.append(rate.emergency_quantity)
        assert observed == [12, 9, 7, 5, 4, 3, 2, 1]

    def test_total_extra_frames_transmitted(self):
        """One second at each quantity: 43 extra frames end to end."""
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        extra = 0
        while rate.in_emergency:
            extra += rate.current_rate() - rate.base_rate
            rate.decay_tick()
        assert extra == 43

    def test_requests_resume_after_decay(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        while rate.in_emergency:
            rate.decay_tick()
        rate.on_flow_message(INC)
        assert rate.base_rate == 31

    def test_decay_tick_noop_without_emergency(self):
        rate = RateController(base_rate=30)
        rate.decay_tick()
        assert rate.current_rate() == 30

    def test_peak_bandwidth_within_40_percent(self):
        """Emergency peak rate <= 1.4x the steady rate (Section 4.1)."""
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        assert rate.current_rate() / rate.base_rate <= 1.4

    def test_counters(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(INC)
        rate.on_flow_message(SEVERE)
        rate.on_flow_message(INC)
        assert rate.requests_applied == 1
        assert rate.emergencies_started == 1
        assert rate.requests_ignored == 1


class TestEmergencyEscalation:
    """Regression: a higher-level emergency must not be silently lost
    while a smaller quota is still decaying."""

    def test_severe_replaces_decaying_mild_quota(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(MILD)
        rate.decay_tick()  # 6 -> 4: the mild refill is under way
        assert rate.emergency_quantity == 4
        rate.on_flow_message(SEVERE)
        assert rate.emergency_quantity == 12
        assert rate.current_rate() == 42
        assert rate.emergencies_escalated == 1
        assert rate.emergencies_started == 1

    def test_mild_never_downgrades_active_severe_quota(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        rate.on_flow_message(MILD)
        assert rate.emergency_quantity == 12
        assert rate.requests_ignored == 1
        assert rate.emergencies_escalated == 0

    def test_equal_quota_emergency_still_ignored(self):
        """"ignores all flow control requests" holds for a repeat at
        the same (undecayed) level."""
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        rate.on_flow_message(SEVERE)
        assert rate.emergency_quantity == 12
        assert rate.requests_ignored == 1

    def test_rate_adjustments_still_ignored_during_quota(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(SEVERE)
        rate.on_flow_message(INC)
        rate.on_flow_message(DEC)
        assert rate.base_rate == 30
        assert rate.requests_ignored == 2

    def test_repeated_emergency_reset_triggers_during_active_quota(self):
        """The base-rate reset must fire on an escalation mid-quota: the
        previous refill clearly did not hold."""
        rate = RateController(base_rate=30, nominal_rate=30)
        for _ in range(10):
            rate.on_flow_message(DEC)
        assert rate.base_rate == 20
        rate.on_flow_message(MILD, now=100.0)
        rate.decay_tick()
        rate.on_flow_message(SEVERE, now=101.0)
        assert rate.base_rate == 30
        assert rate.base_rate_resets == 1

    def test_escalation_follows_severe_decay_sequence(self):
        rate = RateController(base_rate=30)
        rate.on_flow_message(MILD)
        rate.decay_tick()
        rate.on_flow_message(SEVERE)
        observed = [rate.emergency_quantity]
        while rate.in_emergency:
            rate.decay_tick()
            if rate.emergency_quantity:
                observed.append(rate.emergency_quantity)
        assert observed == [12, 9, 7, 5, 4, 3, 2, 1]


class TestEmergencyProperties:
    """Property tests for the paper's Section 4.1 refill arithmetic."""

    def test_default_sequence_totals(self):
        config = EmergencyConfig()
        assert config.total_extra_frames(EmergencyLevel.SEVERE) == 43
        assert config.total_extra_frames(EmergencyLevel.MILD) == 16

    @given(level=st.sampled_from([EmergencyLevel.SEVERE, EmergencyLevel.MILD]))
    @settings(max_examples=20, deadline=None)
    def test_sequence_total_matches_paper(self, level):
        config = EmergencyConfig()
        total = config.total_extra_frames(level)
        assert total == (43 if level == EmergencyLevel.SEVERE else 16)
        sequence = config.sequence(level)
        assert sum(sequence) == total
        # Strictly decreasing truncation, ending at 1.
        assert all(a > b for a, b in zip(sequence, sequence[1:]))
        assert sequence[-1] == 1

    @given(
        level=st.sampled_from([EmergencyLevel.SEVERE, EmergencyLevel.MILD]),
        ticks_before=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_refill_rate_respects_40_percent_extra_bandwidth_bound(
        self, level, ticks_before
    ):
        """Section 4.1: the emergency VBR channel is sized at 40% of the
        CBR stream rate; current_rate() must stay within 1.4x nominal at
        every instant of the refill — including across an escalation."""
        rate = RateController(base_rate=30, nominal_rate=30)
        rate.on_flow_message(FlowControlMsg(FlowKind.EMERGENCY, level))
        for _ in range(ticks_before):
            assert rate.current_rate() <= 1.4 * rate.nominal_rate
            rate.decay_tick()
        rate.on_flow_message(SEVERE)  # escalate (or repeat) mid-refill
        while rate.in_emergency:
            assert rate.current_rate() <= 1.4 * rate.nominal_rate
            rate.decay_tick()
        assert rate.current_rate() == rate.base_rate
