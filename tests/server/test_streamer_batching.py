"""Conformance suite for batched transmission (the data-plane fast path).

The headline guarantee: on loss-free links a run with
``ServerConfig.batch_window_s > 0`` is *observationally identical* to the
per-frame run — same frame delivery times (bit-for-bit), same client
buffer trajectory, same counters — for the same seed.  These tests run
the same small service twice, once per mode, and compare everything an
observer could see.
"""

import dataclasses

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.link import LinkFault, LinkParams
from repro.net.topologies import build_lan
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.sim.process import Timer

#: A clean switched LAN (the default LAN link is loss-free).
CLEAN_LINK = LinkParams(delay_s=0.0005, bandwidth_bps=100e6)


@dataclasses.dataclass
class Capture:
    """Everything externally observable about one run."""

    frames: list = dataclasses.field(default_factory=list)
    levels: list = dataclasses.field(default_factory=list)
    received: int = 0
    displayed: int = 0
    skipped: int = 0
    server_frames: tuple = ()
    server_bytes: tuple = ()
    link_stats: tuple = ()
    finished: bool = False


def run_service(
    batch_window_s,
    duration_s=24.0,
    movie_s=60.0,
    seed=23,
    link=CLEAN_LINK,
    fault=None,
    perturb=None,
    crash_at=None,
):
    """Run one single-client service and capture its observables."""
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=4, link=link)
    if fault is not None:
        for lnk in topology.network.links():
            lnk.set_fault(fault)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=movie_s)])
    deployment = Deployment(
        topology,
        catalog,
        server_nodes=[0, 1],
        server_config=ServerConfig(batch_window_s=batch_window_s),
    )
    client = deployment.attach_client(2)
    capture = Capture()

    original_on_frame = client._on_frame

    def spy_on_frame(packet):
        capture.frames.append(
            (sim.now, packet.frame.index, packet.sent_at, packet.epoch)
        )
        original_on_frame(packet)

    client._on_frame = spy_on_frame
    Timer(sim, 0.5, lambda: capture.levels.append(
        (sim.now, client.combined_occupancy)
    ))
    client.request_movie("feature")
    if perturb is not None:
        perturb(sim, client, deployment)
    if crash_at is not None:
        def crash():
            serving = deployment.server(client.serving_server.name)
            serving.crash()
        sim.call_at(crash_at, crash)
    sim.run_until(duration_s)

    capture.received = client.stats.received
    capture.displayed = client.displayed_total
    capture.skipped = client.skipped_total
    capture.finished = client.finished
    servers = sorted(deployment.servers)
    capture.server_frames = tuple(
        deployment.servers[name].video_frames_sent for name in servers
    )
    capture.server_bytes = tuple(
        deployment.servers[name].video_bytes_sent for name in servers
    )
    capture.link_stats = tuple(
        (
            direction.stats.sent_packets,
            direction.stats.sent_bytes,
            direction.stats.delivered_packets,
            direction.stats.dropped_loss,
            direction.stats.dropped_queue,
        )
        for lnk in topology.network.links()
        for direction in (lnk.forward, lnk.backward)
    )
    return capture


class TestLossFreeConformance:
    """Fast path == slow path, bit for bit, on clean links."""

    def test_steady_state_identical(self):
        slow = run_service(0.0)
        fast = run_service(0.5)
        assert fast.frames == slow.frames  # times, indices, sent_at, epoch
        assert fast.levels == slow.levels
        assert (fast.received, fast.displayed, fast.skipped) == (
            slow.received, slow.displayed, slow.skipped,
        )
        assert fast.server_frames == slow.server_frames
        assert fast.server_bytes == slow.server_bytes
        assert fast.link_stats == slow.link_stats

    def test_window_size_does_not_matter(self):
        small = run_service(0.2, duration_s=12.0)
        large = run_service(2.0, duration_s=12.0)
        assert small.frames == large.frames
        assert small.levels == large.levels

    def test_mid_window_control_inputs_identical(self):
        """Quality, pause/resume, VCR speed and seek all interrupt the
        window; the fallback must resume exactly where the slow path's
        timer would have fired."""

        def perturb(sim, client, deployment):
            sim.call_at(6.0, client.set_quality, 15)
            sim.call_at(9.0, client.set_quality, None)
            sim.call_at(11.0, client.pause)
            sim.call_at(13.0, client.resume)
            sim.call_at(15.0, client.set_speed, 2.0)
            sim.call_at(17.0, client.set_speed, 1.0)
            sim.call_at(19.0, client.seek, 5.0)

        slow = run_service(0.0, perturb=perturb)
        fast = run_service(0.5, perturb=perturb)
        assert fast.frames == slow.frames
        assert fast.levels == slow.levels
        assert fast.link_stats == slow.link_stats

    def test_playback_completion_identical(self):
        """The final (short) window and the end-of-stream notices line
        up exactly with the per-frame run."""
        slow = run_service(0.0, movie_s=8.0, duration_s=16.0)
        fast = run_service(0.5, movie_s=8.0, duration_s=16.0)
        assert slow.finished and fast.finished
        assert fast.frames == slow.frames
        assert fast.displayed == slow.displayed

    def test_identical_before_crash_and_recovers_after(self):
        """In-flight frames at a crash are conservatively dropped by the
        burst (a documented relaxation), so post-crash streams may
        reorder; everything before the crash must still match, and the
        batched client must fail over and keep playing."""
        crash_at = 12.0
        slow = run_service(0.0, crash_at=crash_at, duration_s=30.0)
        fast = run_service(0.5, crash_at=crash_at, duration_s=30.0)
        slow_before = [f for f in slow.frames if f[0] <= crash_at]
        fast_before = [f for f in fast.frames if f[0] <= crash_at]
        assert fast_before == slow_before
        # Both runs fail over to the surviving server and keep playing
        # (frames sent well after the crash keep arriving).
        assert fast.frames[-1][0] > crash_at + 2.0
        assert fast.frames[-1][2] > crash_at + 2.0  # sent_at post-crash
        assert fast.displayed > 0.8 * slow.displayed


class TestLossyFallback:
    """On lossy links the fast path must decline, leaving behaviour
    identical because *both* modes stream frame by frame."""

    def test_lossy_runs_identical(self):
        fault = LinkFault(drop_prob=0.02)
        slow = run_service(0.0, fault=fault, duration_s=12.0)
        fast = run_service(0.5, fault=fault, duration_s=12.0)
        assert fast.frames == slow.frames
        assert fast.levels == slow.levels
        assert fast.link_stats == slow.link_stats
        # Same stall/skip behaviour, not just the same deliveries.
        assert (fast.received, fast.displayed, fast.skipped) == (
            slow.received, slow.displayed, slow.skipped,
        )

    def test_no_burst_started_on_lossy_path(self):
        fault = LinkFault(drop_prob=0.02)
        sim = Simulator(seed=23)
        topology = build_lan(sim, n_hosts=4, link=CLEAN_LINK)
        for lnk in topology.network.links():
            lnk.set_fault(fault)
        catalog = MovieCatalog([Movie.synthetic("feature", duration_s=30.0)])
        deployment = Deployment(
            topology, catalog, server_nodes=[0],
            server_config=ServerConfig(batch_window_s=0.5),
        )
        client = deployment.attach_client(1)
        client.request_movie("feature")
        sim.run_until(8.0)
        assert client.stats.received > 0
        sessions = [
            session
            for server in deployment.servers.values()
            for session in server.sessions.values()
        ]
        assert sessions
        assert all(session._batch is None for session in sessions)
