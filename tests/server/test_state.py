"""Unit tests for shared state merging and the redistribution rule."""

from repro.gcs.view import ProcessId
from repro.net.address import Endpoint
from repro.server.state import MovieState, rebalance
from repro.service.protocol import ClientRecord, StateSync

S1 = ProcessId(1, "server1")
S2 = ProcessId(2, "server2")
S3 = ProcessId(3, "server3")
C = [ProcessId(10 + i, f"client{i}") for i in range(6)]


def record(client, server, offset=1, updated_at=0.0):
    return ClientRecord(
        client=client,
        movie="m",
        session=f"session.{client.name}",
        video_endpoint=Endpoint(client.node, 8000),
        offset=offset,
        rate_fps=30,
        quality_fps=None,
        paused=False,
        epoch=0,
        server=server,
        updated_at=updated_at,
    )


class TestMovieState:
    def test_put_and_get(self):
        state = MovieState("m")
        assert state.put_record(record(C[0], S1), now=0.0)
        assert state.record_of(C[0]).server == S1

    def test_newer_record_wins(self):
        state = MovieState("m")
        state.put_record(record(C[0], S1, offset=10, updated_at=1.0), now=1.0)
        assert not state.put_record(
            record(C[0], S2, offset=5, updated_at=0.5), now=1.1
        )
        assert state.record_of(C[0]).offset == 10

    def test_merge_sync(self):
        state = MovieState("m")
        sync = StateSync(S1, "m", (record(C[0], S1), record(C[1], S1)))
        state.merge_sync(sync, now=0.0)
        assert len(state) == 2

    def test_departed_removes_and_tombstones(self):
        state = MovieState("m")
        state.put_record(record(C[0], S1, updated_at=1.0), now=1.0)
        state.mark_departed(C[0], now=2.0)
        assert state.record_of(C[0]) is None
        # Stale records do not resurrect a departed client.
        assert not state.put_record(record(C[0], S2, updated_at=1.5), now=2.1)

    def test_reconnect_after_departure(self):
        state = MovieState("m")
        state.mark_departed(C[0], now=2.0)
        assert state.put_record(record(C[0], S2, updated_at=3.0), now=3.0)

    def test_tombstones_expire(self):
        state = MovieState("m")
        state.mark_departed(C[0], now=0.0)
        state.merge_sync(StateSync(S1, "m", ()), now=100.0)
        assert state.recently_departed() == ()

    def test_clients_sorted(self):
        state = MovieState("m")
        state.put_record(record(C[2], S1), now=0.0)
        state.put_record(record(C[0], S1), now=0.0)
        assert state.clients() == [C[0], C[2]]


class TestRebalanceFailureRegime:
    def test_orphans_go_to_survivors(self):
        records = [record(C[0], S1), record(C[1], S2)]
        assignment = rebalance(records, [S2])
        assert assignment == {C[0]: S2, C[1]: S2}

    def test_survivor_clients_stay_put(self):
        records = [record(C[0], S1), record(C[1], S2), record(C[2], S1)]
        assignment = rebalance(records, [S1, S2])
        assert assignment[C[0]] == S1
        assert assignment[C[1]] == S2
        assert assignment[C[2]] == S1

    def test_orphans_spread_by_load(self):
        records = [
            record(C[0], S1), record(C[1], S1),  # S1 loaded
            record(C[2], S3), record(C[3], S3),  # orphans (S3 dead)
        ]
        assignment = rebalance(records, [S1, S2])
        assert assignment[C[2]] == S2
        assert assignment[C[3]] == S2

    def test_empty_server_set(self):
        assert rebalance([record(C[0], S1)], []) == {}

    def test_idempotent_on_own_output(self):
        records = [record(C[i], S3) for i in range(5)]
        first = rebalance(records, [S1, S2])
        re_records = [record(c, s) for c, s in first.items()]
        second = rebalance(re_records, [S1, S2])
        assert first == second


class TestRebalanceJoinRegime:
    def test_single_client_migrates_to_newcomer(self):
        """The paper's load-balance scenario: the one client moves to
        the freshly started server."""
        records = [record(C[0], S1)]
        assignment = rebalance(records, [S1, S2], joined=[S2])
        assert assignment[C[0]] == S2

    def test_round_robin_even_spread(self):
        records = [record(C[i], S1) for i in range(6)]
        assignment = rebalance(records, [S1, S2, S3], joined=[S3])
        loads = {}
        for server in assignment.values():
            loads[server] = loads.get(server, 0) + 1
        assert set(loads.values()) == {2}

    def test_newcomers_take_load_first(self):
        records = [record(C[0], S1), record(C[1], S1), record(C[2], S1)]
        assignment = rebalance(records, [S1, S2], joined=[S2])
        loads = {}
        for server in assignment.values():
            loads[server] = loads.get(server, 0) + 1
        assert loads[S2] == 2  # newcomer first in the round-robin order

    def test_joined_ignored_if_not_live(self):
        records = [record(C[0], S1)]
        assignment = rebalance(records, [S1], joined=[S3])
        assert assignment[C[0]] == S1

    def test_deterministic_across_replicas(self):
        records = [record(C[i], S1) for i in range(5)]
        a = rebalance(list(records), [S1, S2], joined=[S2])
        b = rebalance(list(reversed(records)), [S2, S1], joined=[S2])
        assert a == b
