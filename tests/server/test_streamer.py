"""Unit tests for the per-client streaming session.

The session only needs a duck-typed server (sim, config, process,
send_video), so these tests drive it without any network.
"""

import pytest

from repro.gcs.view import ProcessId
from repro.media.movie import Movie
from repro.net.address import Endpoint
from repro.server.server import ServerConfig
from repro.server.streamer import ClientSession
from repro.service.protocol import (
    EmergencyLevel,
    EndOfStream,
    FlowControlMsg,
    FlowKind,
    FramePacket,
)
from repro.sim.core import Simulator


class FakeServer:
    def __init__(self, sim):
        self.sim = sim
        self.config = ServerConfig()
        self.process = ProcessId(0, "server")
        self.sent = []

    def send_video(self, endpoint, payload, flow_id=None):
        self.sent.append((self.sim.now, payload))


@pytest.fixture
def rig(short_movie):
    sim = Simulator(seed=2)
    server = FakeServer(sim)
    session = ClientSession(
        server=server,
        movie=short_movie,
        client=ProcessId(5, "client"),
        session_name="s",
        video_endpoint=Endpoint(5, 8000),
    )
    return sim, server, session


def frames_of(server):
    return [p for _t, p in server.sent if isinstance(p, FramePacket)]


def test_paces_at_configured_rate(rig):
    sim, server, _session = rig
    sim.run_until(2.0)
    assert len(frames_of(server)) == pytest.approx(60, abs=2)


def test_frames_sent_in_order_from_offset(short_movie):
    sim = Simulator(seed=2)
    server = FakeServer(sim)
    ClientSession(
        server=server,
        movie=short_movie,
        client=ProcessId(5, "client"),
        session_name="s",
        video_endpoint=Endpoint(5, 8000),
        start_offset=100,
    )
    sim.run_until(1.0)
    indices = [p.frame.index for p in frames_of(server)]
    assert indices[0] == 100
    assert indices == sorted(indices)


def test_flow_increase_speeds_up(rig):
    sim, server, session = rig
    session.on_flow_message(FlowControlMsg(FlowKind.INCREASE))
    # Adjustments are slew-limited to one per 0.5 s: a back-to-back
    # request is ignored, a spaced one applies.
    session.on_flow_message(FlowControlMsg(FlowKind.INCREASE))
    assert session.rate.current_rate() == 31
    sim.run_until(0.6)
    session.on_flow_message(FlowControlMsg(FlowKind.INCREASE))
    assert session.rate.current_rate() == 32
    sim.run_until(2.0)
    assert len(frames_of(server)) >= 61


def test_emergency_rearms_immediately(rig):
    sim, server, session = rig
    sim.run_until(1.0)
    before = len(frames_of(server))
    session.on_flow_message(
        FlowControlMsg(FlowKind.EMERGENCY, EmergencyLevel.SEVERE)
    )
    sim.run_until(1.05)
    # The first boosted frame leaves at once, not after the old 33 ms.
    assert len(frames_of(server)) > before


def test_pause_stops_and_resume_restarts(rig):
    sim, server, session = rig
    sim.run_until(1.0)
    session.pause()
    count = len(frames_of(server))
    sim.run_until(2.0)
    assert len(frames_of(server)) == count
    session.resume()
    sim.run_until(3.0)
    assert len(frames_of(server)) > count


def test_seek_repositions(rig):
    sim, server, session = rig
    sim.run_until(0.5)
    session.seek(20.0, epoch=1)
    sim.run_until(0.6)
    late_frames = [
        p for _t, p in server.sent
        if isinstance(p, FramePacket) and p.epoch == 1
    ]
    assert late_frames
    assert late_frames[0].frame.index == 20 * 30 + 1


def test_quality_mode_keeps_all_i_frames(short_movie):
    sim = Simulator(seed=2)
    server = FakeServer(sim)
    ClientSession(
        server=server,
        movie=short_movie,
        client=ProcessId(5, "client"),
        session_name="s",
        video_endpoint=Endpoint(5, 8000),
        quality_fps=10,
    )
    sim.run_until(10.0)
    sent = frames_of(server)
    sent_indices = {p.frame.index for p in sent}
    covered = max(sent_indices)
    expected_intra = {
        f.index for f in short_movie.frames[:covered] if f.is_intra
    }
    assert expected_intra <= sent_indices


def test_quality_mode_thins_rate(short_movie):
    sim = Simulator(seed=2)
    server = FakeServer(sim)
    ClientSession(
        server=server,
        movie=short_movie,
        client=ProcessId(5, "client"),
        session_name="s",
        video_endpoint=Endpoint(5, 8000),
        quality_fps=10,
    )
    sim.run_until(6.0)
    sent = frames_of(server)
    # Positions covered at 30/s; transmitted well under full rate but at
    # least the target 10/s (I frames push it slightly above).
    assert len(sent) < 6 * 22
    assert len(sent) >= 6 * 10 - 5


def test_end_of_stream_sent_at_movie_end(short_movie):
    sim = Simulator(seed=2)
    server = FakeServer(sim)
    session = ClientSession(
        server=server,
        movie=short_movie,
        client=ProcessId(5, "client"),
        session_name="s",
        video_endpoint=Endpoint(5, 8000),
        start_offset=len(short_movie) - 5,
    )
    sim.run_until(2.0)
    eos = [p for _t, p in server.sent if isinstance(p, EndOfStream)]
    assert len(eos) == 3  # repeated for loss tolerance
    assert session.finished


def test_stop_halts_transmission(rig):
    sim, server, session = rig
    sim.run_until(0.5)
    session.stop()
    count = len(frames_of(server))
    sim.run_until(2.0)
    assert len(frames_of(server)) == count


def test_record_snapshot(rig):
    sim, _server, session = rig
    sim.run_until(1.0)
    record = session.record()
    assert record.offset == session.position
    assert record.rate_fps == session.rate.base_rate
    assert record.server == ProcessId(0, "server")
    assert record.updated_at == 1.0
