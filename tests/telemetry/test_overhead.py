"""Disabled telemetry must cost one predicate check — and nothing else.

Two guards:

* a *behavioural* one — with no subscribers, nothing is emitted,
  no metric is registered, no span is opened: the only telemetry code a
  disabled run executes is reading ``telemetry.active``.  We prove it by
  making every other entry point raise;
* a *wall-clock* one — the small capacity scenario runs within 5% of a
  floor run whose telemetry object is a bare ``active = False`` stub
  (the cheapest conceivable implementation of the guard).  Best-of-N
  interleaved timings keep scheduler noise out of the comparison.
"""

import time

import pytest

from repro.experiments.capacity import run_capacity_point
from repro.sim import core as sim_core
from repro.telemetry import Telemetry


def _boom(*args, **kwargs):
    raise AssertionError("telemetry work ran while the bus was disabled")


def test_disabled_run_touches_nothing_but_the_guard(monkeypatch):
    monkeypatch.setattr(Telemetry, "emit", _boom)
    monkeypatch.setattr(Telemetry, "count", _boom)
    monkeypatch.setattr(Telemetry, "span", _boom)
    point = run_capacity_point(2, duration_s=10.0)
    assert point.n_clients == 2  # the run completed, guard-only


def test_disabled_run_registers_no_state():
    from repro.media.catalog import MovieCatalog
    from repro.media.movie import Movie
    from repro.net.topologies import build_lan
    from repro.service.deployment import Deployment
    from repro.sim.core import Simulator
    from repro.testing import crash_serving_server

    sim = Simulator(seed=3)
    topology = build_lan(sim, n_hosts=3)
    catalog = MovieCatalog([Movie.synthetic("clip", duration_s=40)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)
    client.request_movie("clip")
    sim.call_at(15.0, crash_serving_server, deployment, client)
    sim.run_until(30.0)

    tel = sim.telemetry
    assert tel.active is False
    assert tel.emitted == 0
    assert tel.metrics.names() == []
    assert tel.open_spans() == []


class _NullTelemetry:
    """The floor: the cheapest object that can satisfy the guard sites.

    ``active`` is a plain instance attribute, exactly like the real
    bus's — the floor differs only in carrying *no other state*, so the
    comparison isolates what a disabled run pays beyond the guard read.
    If instrumented code ever touches anything beyond ``.active`` while
    disabled, the floor run crashes — which is itself part of the guard.
    """

    def __init__(self, clock=None):
        self.active = False


def _time_run(seed):
    # CPU time, not wall time: the comparison must survive noisy shared
    # CI machines, and scheduler preemption inflates wall clocks by
    # far more than the 5% being asserted.
    start = time.process_time()
    run_capacity_point(4, duration_s=25.0, seed=seed)
    return time.process_time() - start


def test_disabled_overhead_under_five_percent():
    rounds = 7
    # Warm caches/allocator before timing anything.
    _time_run(seed=51)

    # Per-round paired ratios (floor then real, back to back, same
    # seed) cancel machine-load drift.  The best round is the one least
    # polluted by scheduler noise, so it is the fairest estimate of the
    # true overhead on a loaded CI box: real extra work in the disabled
    # path (formatting, allocation, dispatch) shows up in *every* round
    # and cannot hide in the minimum.
    ratios = []
    for attempt in range(rounds):
        floor_patch = pytest.MonkeyPatch()
        floor_patch.setattr(sim_core, "Telemetry", _NullTelemetry)
        try:
            floor = _time_run(seed=51 + attempt)
        finally:
            floor_patch.undo()
        ratios.append(_time_run(seed=51 + attempt) / floor)

    overhead = min(ratios) - 1.0
    assert overhead < 0.05, (
        f"disabled telemetry costs {overhead:.1%} over the bare-guard "
        f"floor (paired ratios: {[f'{r:.3f}' for r in sorted(ratios)]})"
    )
