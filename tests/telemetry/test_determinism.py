"""Telemetry is a pure observer: enabling it must not perturb a run.

Same seed, same scenario — one run with full telemetry (JSONL exporter
on every kind plus an in-memory collector), one run with none.  Client
stats, fault fire logs, migrations and every sampled series must be
identical; any divergence means instrumentation leaked into simulation
behaviour (consumed randomness, scheduled an event, mutated state).
"""

import dataclasses

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario

SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-determinism",
    movie_duration_s=80.0,
    run_duration_s=80.0,
    schedule=((30.0, "crash-serving"), (55.0, "server-up")),
)


def test_full_telemetry_does_not_perturb_run(tmp_path):
    silent = run_scenario(SPEC)
    assert silent.sim.telemetry.emitted == 0  # nothing ran while disabled

    observed = run_scenario(
        SPEC, telemetry_path=str(tmp_path / "run.jsonl"), telemetry_full=True
    )
    assert observed.sim.telemetry.emitted > 0

    # The full run story — counters, fire log, migrations, series — is
    # identical between the observed and unobserved runs.
    assert observed.export_dict() == silent.export_dict()
    assert observed.injector.fired == silent.injector.fired
    assert observed.crash_times == silent.crash_times
    assert observed.server_up_times == silent.server_up_times


def test_same_seed_telemetry_runs_are_identical(tmp_path):
    first = run_scenario(SPEC, telemetry_path=str(tmp_path / "a.jsonl"))
    second = run_scenario(SPEC, telemetry_path=str(tmp_path / "b.jsonl"))
    assert first.export_dict() == second.export_dict()
    from repro.telemetry import read_jsonl

    assert read_jsonl(str(tmp_path / "a.jsonl")) == read_jsonl(
        str(tmp_path / "b.jsonl")
    )
