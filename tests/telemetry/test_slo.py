"""SLO monitoring: rule semantics, lazy windowing, breach lifecycle.

The monitor's contract: windows advance only on event timestamps (no
simulation timers — zero perturbation), a nominal run stays clean, and
losing every replica breaches the glitch-free objective with
``slo.breach`` in the export.
"""

import dataclasses

import pytest

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.telemetry import (
    FailoverLatencyRule,
    GlitchFreeRule,
    SloMonitor,
    Telemetry,
    load_timeline,
    read_jsonl,
    render_slo,
    slo_from_timeline,
)
from repro.telemetry.slo import EmergencyBandwidthRule, WindowSnapshot

NOMINAL_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-slo-nominal",
    movie_duration_s=60.0,
    run_duration_s=60.0,
    schedule=(),
)

#: One replica, crashed mid-run and never replaced: the client stalls
#: out its buffer and the glitch-free objective must breach.
BLACKOUT_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-slo-blackout",
    movie_duration_s=90.0,
    run_duration_s=90.0,
    n_initial_servers=1,
    schedule=((20.0, "crash-serving"),),
)


def window(**overrides) -> WindowSnapshot:
    base = dict(
        start=0.0, end=10.0, clients=0, stalled=0,
        failover_durations=[], window_failovers=0,
        extra_frames=0.0, base_frames=0.0,
    )
    base.update(overrides)
    return WindowSnapshot(**base)


# ----------------------------------------------------------------------
# Rule semantics
# ----------------------------------------------------------------------
def test_glitch_free_rule_values_and_burn():
    rule = GlitchFreeRule(target=0.99)
    assert rule.evaluate(window(clients=0)).ok  # vacuous window
    good = rule.evaluate(window(clients=100, stalled=0))
    assert good.ok and good.value == pytest.approx(1.0)
    assert good.burn_rate == pytest.approx(0.0)
    bad = rule.evaluate(window(clients=100, stalled=5))
    assert not bad.ok
    assert bad.value == pytest.approx(0.95)
    assert bad.burn_rate == pytest.approx(5.0)  # 5% bad over a 1% budget


def test_failover_rule_judges_p99_of_all_handoffs():
    rule = FailoverLatencyRule(quantile=0.99, limit_s=2.0)
    assert rule.evaluate(window()).ok  # no handoffs yet
    fast = rule.evaluate(window(failover_durations=[0.3, 0.5, 0.4]))
    assert fast.ok and fast.value == pytest.approx(0.5)
    slow = rule.evaluate(window(failover_durations=[0.3, 3.1]))
    assert not slow.ok and slow.value == pytest.approx(3.1)


def test_emergency_rule_is_a_per_window_share():
    rule = EmergencyBandwidthRule(limit=0.40)
    assert rule.evaluate(window()).ok  # no traffic
    ok = rule.evaluate(window(extra_frames=30.0, base_frames=300.0))
    assert ok.ok and ok.value == pytest.approx(0.1)
    over = rule.evaluate(window(extra_frames=150.0, base_frames=300.0))
    assert not over.ok and over.value == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Monitor lifecycle on a synthetic bus
# ----------------------------------------------------------------------
class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_lazy_windows_breach_and_recover():
    clock = Clock()
    tel = Telemetry(clock=clock)
    monitor = SloMonitor(tel, rules=(GlitchFreeRule(),), window_s=10.0)
    emitted = []
    tel.subscribe(lambda e: emitted.append(e), prefixes=("slo.",))

    clock.now = 1.0
    tel.emit("client.stall.begin", client="c0")
    clock.now = 9.0
    tel.emit("client.stall.end", client="c0")
    # Advancing virtual time alone does nothing — only an event past the
    # boundary closes the window (lazy, timer-free evaluation).
    assert monitor.states["glitch_free_fraction"].windows == 0
    clock.now = 11.0
    tel.emit("client.flow", client="c0", message="increase")
    state = monitor.states["glitch_free_fraction"]
    assert state.windows == 1
    assert not state.ok  # the only client stalled in window [0, 10)
    kinds = [e.kind for e in emitted]
    assert "slo.breach" in kinds and "slo.burn" in kinds

    # A clean window recovers the objective.
    clock.now = 25.0
    tel.emit("client.flow", client="c0", message="increase")
    assert monitor.states["glitch_free_fraction"].ok
    assert [e.kind for e in emitted].count("slo.breach") == 1
    assert "slo.recover" in [e.kind for e in emitted]
    summary = monitor.finish(clock.now)
    assert summary["glitch_free_fraction"]["breaches"] == 1


def test_stall_spanning_window_boundary_counts_in_both():
    clock = Clock()
    tel = Telemetry(clock=clock)
    monitor = SloMonitor(tel, rules=(GlitchFreeRule(),), window_s=10.0)
    clock.now = 8.0
    tel.emit("client.stall.begin", client="c0")
    clock.now = 12.0  # still stalled as window [0,10) closes
    tel.emit("client.flow", client="c0", message="increase")
    clock.now = 22.0
    tel.emit("client.stall.end", client="c0")
    summary = monitor.finish(25.0)
    # Stalled in [0,10), [10,20) and [20,30): every window breached.
    assert summary["glitch_free_fraction"]["windows"] == 3
    assert summary["glitch_free_fraction"]["breaches"] == 1  # one episode


def test_slow_takeover_breaches_failover_objective():
    clock = Clock()
    tel = Telemetry(clock=clock)
    monitor = SloMonitor(tel, rules=(FailoverLatencyRule(),), window_s=10.0)
    clock.now = 5.0
    tel.emit("span.end", span="takeover", key="c0", duration_s=3.2)
    summary = monitor.finish(12.0)
    state = summary["failover_p99_s"]
    assert state["breaches"] == 1
    assert state["value"] == pytest.approx(3.2)
    assert monitor.failovers == (3.2,)


# ----------------------------------------------------------------------
# Scenario runs
# ----------------------------------------------------------------------
def test_nominal_run_holds_every_objective(tmp_path):
    result = run_scenario(
        NOMINAL_SPEC, telemetry_path=str(tmp_path / "nominal.jsonl")
    )
    assert result.slo
    assert all(item["ok"] for item in result.slo.values())
    assert all(item["breaches"] == 0 for item in result.slo.values())
    records = read_jsonl(str(tmp_path / "nominal.jsonl"))
    assert not [r for r in records if r.get("kind") == "slo.breach"]
    assert records[-1]["slo_breaches"] == 0


def test_total_blackout_breaches_glitch_free(tmp_path):
    path = tmp_path / "blackout.jsonl"
    result = run_scenario(BLACKOUT_SPEC, telemetry_path=str(path))
    glitch = result.slo["glitch_free_fraction"]
    assert glitch["breaches"] >= 1
    assert not glitch["ok"]  # still stalled at run end
    breaches = [
        r for r in read_jsonl(str(path)) if r.get("kind") == "slo.breach"
    ]
    assert any(r["rule"] == "glitch_free_fraction" for r in breaches)
    assert all(r["t"] > 20.0 for r in breaches)  # only after the crash
    # Offline replay reproduces the online verdicts exactly.
    offline = slo_from_timeline(load_timeline(str(path)))
    assert offline == result.slo


def test_render_slo_marks_breached_rules(tmp_path):
    result = run_scenario(
        BLACKOUT_SPEC, telemetry_path=str(tmp_path / "b.jsonl")
    )
    text = render_slo(result.slo)
    assert "BREACH" in text
    assert "glitch_free_fraction" in text
