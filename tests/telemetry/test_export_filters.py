"""Exporter satellites: gzip paths, the event cap and time windows.

A ``.jsonl.gz`` output path gzips transparently (``read_jsonl`` and
``load_timeline`` both read it back); ``max_events`` ends the stream
with one explicit ``truncated`` marker record instead of silently
dropping the tail; ``since``/``until`` window the export — and, applied
at read time, window a full export the same way.
"""

import gzip
import json

from repro.telemetry.bus import Telemetry
from repro.telemetry.export import JsonlExporter, read_jsonl
from repro.telemetry.report import load_timeline


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.telemetry = Telemetry(clock=lambda: self.now)

    def emit_at(self, t, kind, **fields):
        self.now = t
        self.telemetry.emit(kind, **fields)


def _drive(sim, n=10):
    for i in range(n):
        sim.emit_at(float(i), "client.flow", client="c0", i=i)


def test_gz_suffix_writes_gzip_and_reads_back(tmp_path):
    path = str(tmp_path / "run.jsonl.gz")
    sim = FakeSim()
    exporter = JsonlExporter(sim.telemetry, path)
    _drive(sim)
    exporter.close()
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh]
    assert [r["kind"] for r in lines[:-1]].count("client.flow") == 10
    records = read_jsonl(path)
    assert sum(1 for r in records if r["kind"] == "client.flow") == 10
    assert records[-1]["kind"] == "summary"


def test_max_events_cap_writes_truncation_marker(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sim = FakeSim()
    exporter = JsonlExporter(sim.telemetry, path, max_events=4)
    _drive(sim, n=10)
    exporter.close()
    records = read_jsonl(path)
    events = [r for r in records if r["kind"] == "client.flow"]
    markers = [r for r in records if r["kind"] == "truncated"]
    summary = records[-1]
    assert len(events) == 4
    assert len(markers) == 1
    assert markers[0]["max_events"] == 4
    assert summary["kind"] == "summary"
    assert summary["events_dropped"] == 6
    # The marker surfaces in the reconstructed report too.
    timeline = load_timeline(path)
    assert timeline.truncated is not None


def test_since_until_window_the_export(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sim = FakeSim()
    exporter = JsonlExporter(sim.telemetry, path, since=3.0, until=6.0)
    _drive(sim, n=10)
    exporter.close()
    records = read_jsonl(path)
    times = [r["t"] for r in records if r["kind"] == "client.flow"]
    assert times == [3.0, 4.0, 5.0, 6.0]
    assert records[-1]["events_filtered"] == 6


def test_read_jsonl_windows_a_full_export(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sim = FakeSim()
    exporter = JsonlExporter(sim.telemetry, path)
    _drive(sim, n=10)
    exporter.close()
    windowed = read_jsonl(path, since=2.0, until=4.0)
    times = [r["t"] for r in windowed if r["kind"] == "client.flow"]
    assert times == [2.0, 3.0, 4.0]
    # meta/summary records carry no timestamp filterable as events do,
    # but the timeline fold applies the same window.
    timeline = load_timeline(path, since=2.0, until=4.0)
    assert timeline.counts_by_kind().get("client.flow") == 3


def test_windowed_read_equals_windowed_export(tmp_path):
    full, windowed = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    for path, kwargs in ((full, {}), (windowed, {"since": 2.0, "until": 7.0})):
        sim = FakeSim()
        exporter = JsonlExporter(sim.telemetry, path, **kwargs)
        _drive(sim, n=10)
        exporter.close()
    a = [r for r in read_jsonl(full, since=2.0, until=7.0)
         if r["kind"] == "client.flow"]
    b = [r for r in read_jsonl(windowed) if r["kind"] == "client.flow"]
    assert a == b
