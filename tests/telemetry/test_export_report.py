"""End-to-end: a takeover run's JSONL export reconstructs the timeline.

The acceptance bar for the telemetry subsystem: run the LAN crash
scenario with the exporter attached, then rebuild the whole story —
buffer levels, rate changes, view installs, the takeover span with its
latency — from the file alone, and render it via ``repro-vod report``.
"""

import dataclasses

import pytest

from repro.experiments.runner import main
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.telemetry import SCHEMA_VERSION, load_timeline, read_jsonl, render_report

#: Short LAN run: crash of the serving server at 30 s forces a takeover.
TAKEOVER_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-takeover-telemetry",
    movie_duration_s=80.0,
    run_duration_s=80.0,
    schedule=((30.0, "crash-serving"),),
)


@pytest.fixture(scope="module")
def export_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("telemetry") / "takeover.jsonl"
    result = run_scenario(TAKEOVER_SPEC, telemetry_path=str(path))
    assert result.telemetry_path == str(path)
    return str(path)


def test_export_structure(export_path):
    records = read_jsonl(export_path)
    assert records[0]["kind"] == "meta"
    assert records[0]["schema"] == SCHEMA_VERSION
    assert records[0]["scenario"] == "lan-takeover-telemetry"
    assert records[-1]["kind"] == "summary"
    events = records[1:-1]
    assert records[-1]["events_written"] == len(events)
    assert all("t" in event for event in events)
    times = [event["t"] for event in events]
    assert times == sorted(times)  # virtual time is monotone


def test_export_reconstructs_session_timeline(export_path):
    events = read_jsonl(export_path)[1:-1]
    kinds = {event["kind"] for event in events}
    # Every layer shows up.
    assert "fault.fired" in kinds          # faulting
    assert "gcs.view.install" in kinds     # GCS membership
    assert "server.session.start" in kinds  # server
    assert "server.rate" in kinds          # flow control at the server
    assert "client.flow" in kinds          # client control traffic
    assert "client.watermark" in kinds     # buffer-level crossings
    assert "metric.sample" in kinds        # sampled buffer series

    starts = [e for e in events if e["kind"] == "server.session.start"]
    assert any(not start["takeover"] for start in starts)  # initial admit
    takeover_starts = [start for start in starts if start["takeover"]]
    assert takeover_starts, "crash at 30 s must produce a takeover admit"
    assert all(start["t"] > 30.0 for start in takeover_starts)

    crashes = [e for e in events if e["kind"] == "server.crash"]
    assert len(crashes) == 1 and crashes[0]["t"] == pytest.approx(30.0)

    samples = [e for e in events if e["kind"] == "metric.sample"]
    assert {s["series"] for s in samples} >= {
        "software_buffer_frames", "hardware_buffer_bytes",
    }


def test_takeover_span_has_latency(export_path):
    timeline = load_timeline(str(export_path))
    spans = [s for s in timeline.spans() if s["span"] == "takeover"]
    assert spans, "the crash must open a takeover span"
    finished = [s for s in spans if s["duration_s"] is not None]
    assert finished, "the adopting server must close the takeover span"
    span = finished[0]
    assert span["start"] == pytest.approx(30.0)
    assert 0.0 < span["duration_s"] < 10.0
    # The span latency also lands in the metric registry snapshot.
    hist = timeline.summary["metrics"]["takeover.latency_s"]
    assert hist["count"] == len(finished)
    assert hist["mean"] == pytest.approx(
        sum(s["duration_s"] for s in finished) / len(finished), rel=1e-6
    )


def test_render_report_sections(export_path):
    text = render_report(load_timeline(str(export_path)))
    assert "telemetry run" in text
    assert "scenario=lan-takeover-telemetry" in text
    assert "Event counts" in text
    assert "Timeline" in text
    assert "Spans" in text
    assert "takeover" in text
    assert "Sampled series" in text
    assert "software_buffer_frames" in text
    assert "events_written=" in text


def test_report_truncation_note(export_path):
    text = render_report(load_timeline(str(export_path)), max_rows=5)
    assert "more (raise --max-rows)" in text


def test_exporter_context_manager_flushes_summary_on_crash(tmp_path):
    from repro.telemetry import JsonlExporter, Telemetry

    now = [0.0]
    tel = Telemetry(clock=lambda: now[0])
    path = tmp_path / "crashed.jsonl"
    with pytest.raises(RuntimeError, match="mid-run"):
        with JsonlExporter(tel, str(path)) as exporter:
            exporter.meta(scenario="doomed", seed=1)
            tel.span("takeover", key="client0")
            now[0] = 3.0
            tel.emit("fault.fired", action="CrashServing")
            raise RuntimeError("mid-run failure")

    records = read_jsonl(str(path))
    summary = records[-1]
    assert summary["kind"] == "summary"
    assert summary["crashed"] is True
    assert summary["error"] == "RuntimeError: mid-run failure"
    assert summary["open_spans"] == [
        {"span": "takeover", "key": "client0", "start": 0.0}
    ]
    # The abandoned span's event made it into the file before detach.
    abandoned = [r for r in records if r.get("kind") == "span.abandoned"]
    assert len(abandoned) == 1
    assert abandoned[0]["duration_s"] == pytest.approx(3.0)

    # An explicit close beats __exit__; the context manager then no-ops.
    clean = tmp_path / "clean.jsonl"
    with JsonlExporter(tel, str(clean)) as exporter:
        exporter.close(done=True)
    assert read_jsonl(str(clean))[-1]["done"] is True


def test_run_cut_short_abandons_the_session_span(tmp_path):
    spec = dataclasses.replace(
        LAN_SCENARIO, name="lan-cut-short",
        movie_duration_s=240.0, run_duration_s=40.0,
    )
    path = tmp_path / "short.jsonl"
    run_scenario(spec, telemetry_path=str(path))
    timeline = load_timeline(str(path))
    sessions = [s for s in timeline.spans() if s["span"] == "client.session"]
    assert sessions and all(s["abandoned"] for s in sessions)
    assert sessions[0]["duration_s"] == pytest.approx(40.0)
    assert timeline.summary["open_spans"]
    assert "(abandoned)" in render_report(timeline)


def test_report_handles_empty_and_meta_only_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    text = render_report(load_timeline(str(empty)))
    assert "(empty export)" in text

    from repro.telemetry import JsonlExporter, Telemetry

    meta_only = tmp_path / "meta.jsonl"
    exporter = JsonlExporter(Telemetry(), str(meta_only))
    exporter.meta(scenario="aborted", seed=3)
    exporter.close()
    text = render_report(load_timeline(str(meta_only)))
    assert "no events recorded (meta-only export)" in text
    assert "scenario=aborted" in text
    assert "events_written=0" in text


def test_cli_trace_then_report(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    assert main(["trace", "--scenario", "lan", "--duration", "45",
                 "--out", str(out)]) == 0
    trace_output = capsys.readouterr().out
    assert f"telemetry written to {out}" in trace_output
    assert "displayed=" in trace_output

    assert main(["report", str(out)]) == 0
    report_output = capsys.readouterr().out
    assert "Event counts" in report_output
    assert "Timeline" in report_output
