"""Per-client QoE scorecards: accumulator semantics + scenario runs."""

import dataclasses

import pytest

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.telemetry import load_timeline, render_scorecards, scorecards_from_timeline
from repro.telemetry.qoe import QoEAccumulator

CRASH_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-qoe",
    movie_duration_s=80.0,
    run_duration_s=80.0,
    schedule=((30.0, "crash-serving"),),
)

NOMINAL_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-qoe-nominal",
    movie_duration_s=60.0,
    run_duration_s=60.0,
    schedule=(),
)


# ----------------------------------------------------------------------
# Accumulator unit semantics
# ----------------------------------------------------------------------
def test_stall_episode_and_startup_accounting():
    acc = QoEAccumulator()
    acc.feed(0.0, "span.begin",
             {"span": "client.session", "key": "client0", "movie": "m"})
    acc.feed(1.5, "client.playback.start", {"client": "client0"})
    acc.feed(10.0, "client.stall.begin", {"client": "client0"})
    acc.feed(12.5, "client.stall.end", {"client": "client0"})
    cards = acc.finish(20.0)
    card = cards["client0"]
    assert card.startup_s == pytest.approx(1.5)
    assert card.stall_count == 1
    assert card.stall_s == pytest.approx(2.5)
    assert card.watch_s == pytest.approx(20.0)
    assert card.rebuffer_ratio == pytest.approx(2.5 / 20.0)
    assert not card.glitch_free
    assert not card.finished


def test_open_stall_settles_at_finish():
    acc = QoEAccumulator()
    acc.feed(5.0, "client.stall.begin", {"client": "client0"})
    card = acc.finish(9.0)["client0"]
    assert card.stall_s == pytest.approx(4.0)


def test_initial_adoption_is_not_a_migration():
    acc = QoEAccumulator()
    acc.feed(1.0, "client.migrate",
             {"client": "client0", "from_server": "None",
              "to_server": "server0@1"})
    acc.feed(30.0, "client.migrate",
             {"client": "client0", "from_server": "server0@1",
              "to_server": "server1@2"})
    assert acc.finish()["client0"].migrations == 1


def test_server_and_client_spellings_share_one_card():
    acc = QoEAccumulator()
    acc.feed(1.0, "client.stall.begin", {"client": "client0"})
    acc.feed(2.0, "client.stall.end", {"client": "client0@5"})
    cards = acc.finish()
    assert list(cards) == ["client0"]
    assert cards["client0"].stall_s == pytest.approx(1.0)


def test_score_is_bounded_and_penalizes_rebuffering():
    acc = QoEAccumulator()
    acc.feed(0.0, "span.begin", {"span": "client.session", "key": "c"})
    acc.feed(0.0, "client.stall.begin", {"client": "c"})
    acc.feed(100.0, "client.stall.end", {"client": "c"})
    card = acc.finish(100.0)["c"]
    assert card.rebuffer_ratio == pytest.approx(1.0)
    assert 0.0 <= card.score() <= 100.0
    assert card.score() < 50.0  # stalled the whole session


# ----------------------------------------------------------------------
# Scenario runs
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def crash_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("qoe") / "crash.jsonl"
    return run_scenario(CRASH_SPEC, telemetry_path=str(path))


def test_crash_run_scorecard_matches_client_stats(crash_run):
    card = crash_run.qoe["client0"]
    client = crash_run.client
    assert card.stall_count == client.decoder.stats.stall_events
    assert card.stall_s == pytest.approx(client.decoder.stats.stall_time_s)
    assert card.skipped_frames == client.skipped_total
    assert card.displayed_frames == client.displayed_total
    # One real handoff (the takeover); the initial adoption is free.
    assert card.migrations == 1
    assert card.resumes == 1
    assert card.startup_s is not None and card.startup_s > 0


def test_offline_scorecards_equal_online(crash_run):
    offline = scorecards_from_timeline(
        load_timeline(crash_run.telemetry_path)
    )
    assert offline["client0"].as_dict() == crash_run.qoe["client0"].as_dict()


def test_scorecards_are_deterministic(tmp_path, crash_run):
    again = run_scenario(
        CRASH_SPEC, telemetry_path=str(tmp_path / "again.jsonl")
    )
    assert again.qoe["client0"].as_dict() == crash_run.qoe["client0"].as_dict()


def test_nominal_run_is_glitch_free(tmp_path):
    result = run_scenario(
        NOMINAL_SPEC, telemetry_path=str(tmp_path / "nominal.jsonl")
    )
    card = result.qoe["client0"]
    assert card.glitch_free
    assert card.migrations == 0
    assert card.score() > 95.0


def test_render_scorecards_orders_worst_first(crash_run):
    text = render_scorecards(crash_run.qoe)
    assert "client0" in text
    assert "glitch-free" in text
