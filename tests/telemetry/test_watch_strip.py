"""The watch dashboard's incident strip."""

from repro.telemetry.bus import Telemetry
from repro.telemetry.flight import FlightRecorder, FlightRecorderConfig
from repro.telemetry.watch import WatchState, render_watch


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.telemetry = Telemetry(clock=lambda: self.now)

    def emit_at(self, t, kind, **fields):
        self.now = t
        self.telemetry.emit(kind, **fields)


def test_quiet_run_has_no_strip():
    sim = FakeSim()
    state = WatchState(sim.telemetry)
    sim.emit_at(1.0, "client.stall.begin", client="c0")
    assert state.incident_strip() is None
    assert "incidents:" not in render_watch(state)


def test_fold_only_strip_counts_triggers():
    sim = FakeSim()
    state = WatchState(sim.telemetry)
    sim.emit_at(5.0, "server.crash", server="s0")
    sim.emit_at(9.0, "slo.breach", rule="failover_p99_s", value=3.0)
    strip = state.incident_strip()
    assert strip is not None
    assert "triggers=2" in strip
    assert "last=slo.breach@9.00s" in strip
    assert "last breach rule=failover_p99_s" in strip
    assert "closed=" not in strip  # no recorder attached


def test_recorder_strip_shows_open_window_and_closed_count():
    sim = FakeSim()
    recorder = FlightRecorder(
        sim.telemetry, FlightRecorderConfig(post_trigger_s=4.0)
    )
    state = WatchState(sim.telemetry, flight_recorder=recorder)
    sim.emit_at(5.0, "server.crash", server="s0")
    strip = state.incident_strip()
    assert "OPEN server.crash@5.00s" in strip
    assert "capture to 9.00s" in strip
    # The window closes; a later trigger opens a second incident.
    sim.emit_at(20.0, "server.crash", server="s1")
    strip = state.incident_strip()
    assert "closed=1" in strip
    assert "OPEN server.crash@20.00s" in strip
    rendered = render_watch(state)
    assert "incidents: closed=1" in rendered
    state.close()
    recorder.finish(end_t=21.0)


def test_abandoned_takeover_span_counts_as_trigger():
    sim = FakeSim()
    state = WatchState(sim.telemetry)
    sim.emit_at(3.0, "span.abandoned", span="takeover", key="c0", start=1.0)
    sim.emit_at(4.0, "span.abandoned", span="client.session", key="c0",
                start=1.0)
    assert state.triggers_seen == 1
