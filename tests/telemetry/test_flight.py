"""The flight recorder's retention, trigger and assembly contracts.

The ring/sampling properties are Hypothesis-driven over synthetic event
streams: whatever the stream, occupancy never exceeds the configured
budget and always-retained kinds are never sampled out.  The trigger
and incident tests use hand-built failover stories with known exact
timings.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.bus import Telemetry
from repro.telemetry.flight import (
    ALWAYS_RETAIN_PREFIXES,
    FlightRecorder,
    FlightRecorderConfig,
    Incident,
    incidents_from_records,
    is_trigger,
)


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.telemetry = Telemetry(clock=lambda: self.now)


#: Benign kinds only — no trigger kinds, so ring properties are tested
#: without capture windows muddying the accounting.
_RING_KINDS = (
    "client.watermark", "client.flow", "server.session.start",
    "metric.sample", "gcs.flush.begin", "span.begin",
)


@st.composite
def event_streams(draw):
    n = draw(st.integers(min_value=0, max_value=300))
    stream = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False, allow_infinity=False))
        kind = draw(st.sampled_from(_RING_KINDS))
        stream.append((t, kind))
    return stream


@given(stream=event_streams(),
       budget=st.integers(min_value=1, max_value=16),
       rate=st.integers(min_value=1, max_value=7))
@settings(max_examples=60)
def test_ring_occupancy_never_exceeds_budget(stream, budget, rate):
    config = FlightRecorderConfig(
        default_budget=budget, sample_every={"metric.": rate}
    )
    recorder = FlightRecorder(None, config)
    for t, kind in stream:
        recorder.feed(t, kind, {"value": 1})
        assert recorder.occupancy() <= recorder.ring_budget()
        for kind_seen, ring in recorder._rings.items():
            assert len(ring) <= config.budget_for(kind_seen)
    metering = recorder.metering()
    assert metering["occupancy"] <= metering["ring_budget"]
    # Conservation per kind: what a ring holds is exactly what was
    # appended minus what was evicted.
    for kind in recorder.seen:
        held = len(recorder._rings.get(kind, ()))
        assert held == (
            recorder.retained.get(kind, 0) - recorder.evicted.get(kind, 0)
        )


@given(stream=event_streams(), rate=st.integers(min_value=2, max_value=9))
@settings(max_examples=60)
def test_always_retained_kinds_are_never_sampled_out(stream, rate):
    # Aggressive sampling on every prefix, including the protected ones:
    # the config layer must refuse to sample fault./slo./span./invariant.
    config = FlightRecorderConfig(
        sample_every={
            "": rate, "fault.": rate, "slo.": rate, "span.": rate,
            "invariant.": rate, "metric.": rate,
        },
        max_incidents=0,  # keep capture windows out of the accounting
    )
    recorder = FlightRecorder(None, config)
    protected = [
        (t, kind.replace("client.", "fault.").replace("server.", "slo."))
        for t, kind in stream
    ]
    for t, kind in stream + protected:
        recorder.feed(t, kind, {})
    for kind, count in recorder.sampled_out.items():
        assert not kind.startswith(ALWAYS_RETAIN_PREFIXES), (
            f"{kind} was sampled out {count} times"
        )
    for kind in recorder.seen:
        if kind.startswith(ALWAYS_RETAIN_PREFIXES):
            assert recorder.sampled_out.get(kind, 0) == 0


def test_sampling_is_deterministic_in_the_stream():
    config = FlightRecorderConfig(sample_every={"metric.": 3})
    a, b = FlightRecorder(None, config), FlightRecorder(None, config)
    for i in range(50):
        a.feed(float(i), "metric.sample", {"i": i})
        b.feed(float(i), "metric.sample", {"i": i})
    assert [r for _, r in a._rings["metric.sample"]] == [
        r for _, r in b._rings["metric.sample"]
    ]
    assert a.sampled_out == b.sampled_out


def test_horizon_evicts_old_ring_entries():
    config = FlightRecorderConfig(default_budget=100, horizon_s=5.0)
    recorder = FlightRecorder(None, config)
    for i in range(20):
        recorder.feed(float(i), "client.flow", {"i": i})
    ring = recorder._rings["client.flow"]
    assert all(record["t"] >= 19.0 - 5.0 for _, record in ring)
    assert recorder.evicted["client.flow"] > 0


def test_trigger_rules():
    assert is_trigger("slo.breach", {})
    assert is_trigger("fault.fired", {})
    assert is_trigger("invariant.violation", {})
    assert is_trigger("server.crash", {})
    assert is_trigger("span.abandoned", {"span": "takeover"})
    assert not is_trigger("span.abandoned", {"span": "client.session"})
    assert not is_trigger("client.stall.begin", {})
    assert not is_trigger("span.end", {"span": "takeover"})


def _failover_story(recorder, crash_t=10.0, client="c0"):
    cause = "fault.X#1"
    recorder.feed(crash_t, "server.crash",
                  {"server": "s0", "cause": cause})
    recorder.feed(crash_t, "span.begin",
                  {"span": "takeover", "key": client, "cause": cause})
    recorder.feed(crash_t + 0.4, "gcs.fd.suspect", {"cause": cause})
    recorder.feed(crash_t + 0.6, "gcs.view.install",
                  {"view": "v2", "cause": cause})
    recorder.feed(
        crash_t + 1.0, "span.end",
        {"span": "takeover", "key": client, "start": crash_t,
         "duration_s": 1.0, "cause": cause},
    )
    recorder.feed(crash_t + 1.2, "client.resume",
                  {"client": client, "cause": cause})


def test_trigger_opens_window_and_assembles_incident():
    recorder = FlightRecorder(None, FlightRecorderConfig(
        pre_trigger_s=2.0, post_trigger_s=3.0,
    ))
    for i in range(30):
        recorder.feed(i * 0.3, "client.watermark", {"client": "c0"})
    _failover_story(recorder, crash_t=10.0)
    # Past the deadline: the next event closes the capture.
    recorder.feed(20.0, "client.watermark", {"client": "c0"})
    incidents = recorder.finish()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.trigger_kind == "server.crash"
    assert incident.trigger_t == 10.0
    assert incident.pre_records > 0
    assert incident.window_start >= 8.0 - 1e-9
    assert incident.window_end == 10.0 + 3.0
    assert incident.n_breakdowns == 1
    b = incident.breakdowns[0]
    assert math.isclose(
        b["detect_s"] + b["agree_s"] + b["redistribute_s"], b["total_s"],
        rel_tol=0.0, abs_tol=1e-9,
    )
    assert math.isclose(b["detect_s"], 0.4, abs_tol=1e-9)
    assert incident.qoe["clients_hit"] == 1
    assert incident.chains


def test_overlapping_triggers_extend_one_incident():
    recorder = FlightRecorder(None, FlightRecorderConfig(post_trigger_s=5.0))
    recorder.feed(10.0, "server.crash", {"server": "s0"})
    recorder.feed(12.0, "fault.fired", {"action": "Partition"})
    recorder.feed(30.0, "client.flow", {})  # closes at 12+5
    incidents = recorder.finish()
    assert len(incidents) == 1
    assert incidents[0].n_triggers == 2
    assert incidents[0].window_end == 17.0


def test_post_deadline_trigger_opens_a_second_incident():
    recorder = FlightRecorder(None, FlightRecorderConfig(post_trigger_s=2.0))
    recorder.feed(10.0, "server.crash", {"server": "s0"})
    # Beyond the deadline AND itself a trigger: the old capture closes
    # first, then this opens a new one.
    recorder.feed(20.0, "server.crash", {"server": "s1"})
    incidents = recorder.finish()
    assert [i.trigger_t for i in incidents] == [10.0, 20.0]
    assert incidents[0].window_end == 12.0


def test_max_incidents_counts_dropped_triggers():
    recorder = FlightRecorder(None, FlightRecorderConfig(
        post_trigger_s=1.0, max_incidents=2,
    ))
    for i in range(5):
        recorder.feed(10.0 * (i + 1), "server.crash", {"server": f"s{i}"})
    incidents = recorder.finish()
    assert len(incidents) == 2
    assert recorder.triggers_seen == 5
    assert recorder.triggers_dropped == 3


def test_finish_closes_open_capture_and_is_idempotent():
    recorder = FlightRecorder(None, FlightRecorderConfig(post_trigger_s=9.0))
    recorder.feed(10.0, "server.crash", {"server": "s0"})
    assert recorder.open_trigger is not None
    first = recorder.finish(end_t=12.0)
    assert len(first) == 1
    assert first[0].window_end == 12.0
    assert recorder.open_trigger is None
    assert recorder.finish() is first


def test_abandoned_takeover_span_is_a_trigger():
    recorder = FlightRecorder(None, FlightRecorderConfig())
    recorder.feed(10.0, "span.abandoned",
                  {"span": "takeover", "key": "c1", "start": 8.0,
                   "cause": "fault.X#1"})
    incidents = recorder.finish(end_t=10.0)
    assert len(incidents) == 1
    assert incidents[0].trigger_kind == "span.abandoned"
    assert incidents[0].breakdowns[0]["abandoned"] is True


def test_offline_replay_matches_live_feed():
    records = []
    t = 0.0
    for i in range(40):
        t += 0.25
        records.append({"t": t, "kind": "client.watermark", "client": "c0"})
    records.append({"t": t + 0.1, "kind": "server.crash", "server": "s0"})
    records.append({"t": t + 2.0, "kind": "client.resume", "client": "c0"})

    live = FlightRecorder(None)
    for record in records:
        fields = {k: v for k, v in record.items() if k not in ("t", "kind")}
        live.feed(record["t"], record["kind"], fields)
    replayed = incidents_from_records(records)
    assert [i.as_dict() for i in live.finish()] == [
        i.as_dict() for i in replayed
    ]


def test_incident_round_trips_through_dict():
    recorder = FlightRecorder(None)
    _failover_story(recorder, crash_t=5.0)
    incident = recorder.finish()[0]
    clone = Incident.from_dict(incident.as_dict())
    assert clone.as_dict() == incident.as_dict()


def test_recorder_subscribes_and_publishes_metrics():
    sim = FakeSim()
    recorder = FlightRecorder(sim.telemetry)
    assert sim.telemetry.active
    sim.now = 10.0
    sim.telemetry.emit("server.crash", server="s0")
    sim.now = 11.0
    sim.telemetry.emit("client.resume", client="c0")
    incidents = recorder.finish(end_t=11.0)
    assert len(incidents) == 1
    snapshot = sim.telemetry.metrics.snapshot()
    assert snapshot["telemetry.flight.incidents"] == 1
    assert snapshot["telemetry.flight.events.seen"] == 2
    assert snapshot["telemetry.flight.triggers.seen"] == 1
    assert "telemetry.flight.buffer.occupancy" in snapshot


def test_metering_reports_budgets_and_bytes():
    recorder = FlightRecorder(None)
    for i in range(100):
        recorder.feed(float(i), "client.flow", {"client": "c0", "level": i})
    metering = recorder.metering()
    assert metering["seen"]["client.flow"] == 100
    assert metering["occupancy"] == 100
    assert metering["ring_budget"] == 512
    assert metering["estimated_bytes"] > 0
    assert metering["incidents"] == 0
