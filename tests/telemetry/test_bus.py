"""Unit tests for the telemetry bus, metric registry, spans and tracer."""

import pytest

from repro.telemetry import Span, Telemetry, Tracer
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    HistogramMetric,
    MetricRegistry,
)


def test_active_tracks_subscribers():
    tel = Telemetry()
    assert tel.active is False
    events, sub = tel.collect()
    assert tel.active is True
    sub.close()
    assert tel.active is False
    sub.close()  # idempotent
    assert tel.active is False


def test_emit_delivers_to_matching_subscribers():
    tel = Telemetry(clock=lambda: 7.5)
    everything, _ = tel.collect()
    client_only, _ = tel.collect(prefixes=("client.",))
    tel.emit("client.flow", client="c0", message="increase")
    tel.emit("net.drop", link="l0", reason="loss")
    assert [e.kind for e in everything] == ["client.flow", "net.drop"]
    assert [e.kind for e in client_only] == ["client.flow"]
    event = client_only[0]
    assert event.time == 7.5
    assert event.fields == {"client": "c0", "message": "increase"}
    assert event.as_dict() == {
        "t": 7.5, "kind": "client.flow", "client": "c0", "message": "increase",
    }
    assert tel.emitted == 2


def test_as_dict_reserves_t_and_kind():
    from repro.telemetry.bus import TelemetryEvent

    event = TelemetryEvent(3.0, "server.rate", {"kind": "shadowed", "t": -1.0})
    record = event.as_dict()
    assert record["kind"] == "server.rate"
    assert record["t"] == 3.0


def test_closed_subscriber_stops_receiving():
    tel = Telemetry()
    events, sub = tel.collect()
    tel.emit("fault.fired", note="crash")
    sub.close()
    tel.emit("fault.fired", note="partition")
    assert len(events) == 1


def test_count_shorthand_bumps_registry_counter():
    tel = Telemetry()
    tel.count("net.drop.loss")
    tel.count("net.drop.loss", 2)
    assert tel.metrics.counter("net.drop.loss").value == 3


def test_metric_registry_lazily_creates_and_type_checks():
    registry = MetricRegistry()
    counter = registry.counter("a")
    assert registry.counter("a") is counter
    registry.gauge("g").set(4)
    assert registry.gauge("g").value == 4.0
    with pytest.raises(ValueError):
        registry.histogram("a")
    assert registry.names() == ["a", "g"]


def test_counter_rejects_decrements():
    registry = MetricRegistry()
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_histogram_buckets_and_snapshot():
    hist = HistogramMetric("takeover.latency_s", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.counts == [1, 2, 1]  # <=0.1, <=1.0, +inf overflow
    assert hist.mean == pytest.approx(6.05 / 4)

    registry = MetricRegistry()
    registry.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
    snap = registry.snapshot()
    assert snap["h"]["count"] == 1
    assert snap["h"]["buckets"] == [0.1, 1.0]
    assert len(DEFAULT_LATENCY_BUCKETS_S) + 1 == len(
        HistogramMetric("d").counts
    )


def test_span_lifecycle_and_registry():
    now = [10.0]
    tel = Telemetry(clock=lambda: now[0])
    events, _ = tel.collect()

    span = tel.span("takeover", key="client0", cause="crash")
    assert isinstance(span, Span)
    assert tel.open_span("takeover", "client0") is span
    assert tel.open_spans() == [span]
    assert not span.ended

    now[0] = 12.5
    duration = tel.end_span("takeover", "client0", to_server="s1")
    assert duration == pytest.approx(2.5)
    assert span.ended
    assert tel.open_span("takeover", "client0") is None
    assert tel.open_spans() == []

    kinds = [e.kind for e in events]
    assert kinds == ["span.begin", "span.end"]
    assert events[0].fields["span"] == "takeover"
    assert events[0].fields["cause"] == "crash"
    assert events[1].fields["duration_s"] == pytest.approx(2.5)
    assert events[1].fields["to_server"] == "s1"


def test_span_end_is_idempotent_and_unknown_end_is_none():
    tel = Telemetry(clock=lambda: 1.0)
    span = tel.span("client.session", key="c0")
    assert span.end() == pytest.approx(0.0)
    assert span.end() == pytest.approx(0.0)  # second end keeps duration
    assert tel.end_span("client.session", "c0") is None
    assert tel.end_span("takeover", "never-opened") is None


def test_snapshot_round_trips_through_json():
    import json
    import math

    registry = MetricRegistry()
    registry.counter("faults").inc(3)
    registry.gauge("temp").set(21.5)
    hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 50.0):
        hist.observe(value)

    snap = json.loads(json.dumps(registry.snapshot()))
    assert snap["faults"] == 3 and isinstance(snap["faults"], int)
    assert snap["temp"] == 21.5
    assert snap["lat"]["buckets"] == [0.1, 1.0, 10.0]  # edges survive
    assert snap["lat"]["counts"] == [1, 1, 0, 1]
    assert snap["lat"]["count"] == 3
    assert snap["lat"]["mean"] == pytest.approx(50.55 / 3)

    # Non-finite gauges must not poison the JSON summary.
    registry.gauge("nan").set(math.nan)
    registry.gauge("inf").set(math.inf)
    snap = json.loads(json.dumps(registry.snapshot()))
    assert snap["nan"] is None
    assert snap["inf"] is None


def test_overlapping_prefixes_deliver_once_per_subscription():
    tel = Telemetry()
    # One subscription whose prefixes both match the same kind...
    once, _ = tel.collect(prefixes=("client.", "client.stall"))
    # ... and a second, independent subscription that also matches.
    other, _ = tel.collect(prefixes=("client.stall.", "server."))
    tel.emit("client.stall.begin", client="c0")
    assert [e.kind for e in once] == ["client.stall.begin"]
    assert [e.kind for e in other] == ["client.stall.begin"]
    assert tel.emitted == 1  # one event, however many deliveries


def test_abandon_emits_duration_so_far_and_is_idempotent():
    now = [5.0]
    tel = Telemetry(clock=lambda: now[0])
    events, _ = tel.collect()
    span = tel.span("takeover", key="client0", reason="crash")
    now[0] = 7.0
    assert span.abandon() == pytest.approx(2.0)
    assert span.abandon(reason="again") == pytest.approx(2.0)  # no re-emit
    abandoned = [e for e in events if e.kind == "span.abandoned"]
    assert len(abandoned) == 1
    fields = abandoned[0].fields
    assert fields["duration_s"] == pytest.approx(2.0)
    # The abandonment reason wins over the span's own ``reason`` attr
    # (why the takeover *started*) without tripping a kwarg collision.
    assert fields["reason"] == "run-end"
    assert tel.open_spans() == []


def test_abandon_open_spans_sweeps_the_registry():
    tel = Telemetry(clock=lambda: 1.0)
    events, _ = tel.collect()
    tel.span("takeover", key="c0")
    tel.span("client.session", key="c1")
    closed = tel.abandon_open_spans(reason="export-close")
    assert sorted(s.kind for s in closed) == ["client.session", "takeover"]
    assert tel.open_spans() == []
    kinds = [e.kind for e in events]
    assert kinds.count("span.abandoned") == 2
    assert tel.abandon_open_spans() == []  # second sweep finds nothing


def test_tracer_counts_dropped_records():
    tracer = Tracer(enabled=True, max_records=2)

    def tick():
        pass

    for time in (0.0, 1.0, 2.0, 3.0):
        tracer.record(time, tick, ())
    assert len(tracer.records) == 2
    assert tracer.dropped == 2
    assert tracer.truncated
    assert tracer.names() == ["test_tracer_counts_dropped_records.<locals>.tick"] * 2

    tracer.clear()
    assert tracer.records == []
    assert tracer.dropped == 0
    assert not tracer.truncated


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False, max_records=1)
    tracer.record(0.0, print, ())
    tracer.record(1.0, print, ())
    assert tracer.records == []
    assert tracer.dropped == 0
