"""Live dashboard: WatchState fold, frame rendering, CLI smoke."""

from repro.experiments.runner import main
from repro.telemetry import Telemetry, WatchState, render_watch


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_state():
    clock = Clock()
    tel = Telemetry(clock=clock)
    return clock, tel, WatchState(tel)


# ----------------------------------------------------------------------
# Fold semantics
# ----------------------------------------------------------------------
def test_buffer_column_ignores_byte_series_and_prefers_combined():
    clock, tel, state = make_state()
    tel.emit("metric.sample", series="hardware_buffer_bytes",
             owner="client0", value=242637.0)
    assert state.client("client0").buffer is None  # bytes never shown
    tel.emit("metric.sample", series="software_buffer_frames",
             owner="client0", value=40.0)
    assert state.client("client0").buffer == 40.0
    tel.emit("metric.sample", series="combined_frames",
             owner="client0", value=55.0)
    assert state.client("client0").buffer == 55.0
    # Combined keeps precedence over a later software-only sample.
    tel.emit("metric.sample", series="software_buffer_frames",
             owner="client0", value=10.0)
    assert state.client("client0").buffer == 55.0


def test_stall_and_migration_fold():
    clock, tel, state = make_state()
    clock.now = 1.0
    tel.emit("client.migrate", client="client0", from_server="None",
             to_server="server0@1")
    view = state.client("client0")
    assert view.migrations == 0  # initial adoption is free
    assert view.server == "server0@1"
    clock.now = 5.0
    tel.emit("client.stall.begin", client="client0")
    assert view.stalled and view.stalls == 1 and view.status == "STALL"
    tel.emit("client.migrate", client="client0", from_server="server0@1",
             to_server="server1@2")
    assert view.migrations == 1
    tel.emit("client.stall.end", client="client0")
    assert not view.stalled


def test_spans_and_session_lifecycle():
    clock, tel, state = make_state()
    clock.now = 2.0
    tel.emit("span.begin", span="takeover", key="client0@5")
    assert ("takeover", "client0@5") in state.open_spans
    clock.now = 3.0
    tel.emit("span.end", span="takeover", key="client0@5", duration_s=1.0)
    assert not state.open_spans
    tel.emit("span.begin", span="client.session", key="client0")
    tel.emit("span.abandoned", span="client.session", key="client0",
             reason="run-end")
    # Abandoned is not "done": the movie never finished.
    assert not state.client("client0").done


def test_slo_and_notable_events_fold():
    clock, tel, state = make_state()
    clock.now = 21.0
    tel.emit("fault.fired", action="CrashServing")
    tel.emit("gcs.view.install", view=2)
    tel.emit("slo.breach", rule="glitch_free_fraction", value=0.5)
    assert state.faults == 1 and state.views_installed == 1
    assert not state.slo["glitch_free_fraction"]["ok"]
    tel.emit("slo.recover", rule="glitch_free_fraction", value=1.0)
    assert state.slo["glitch_free_fraction"]["ok"]
    assert state.slo["glitch_free_fraction"]["breaches"] == 1
    assert any("fault.fired" in line for line in state.recent)


def test_buffer_distribution_covers_every_client():
    clock, tel, state = make_state()
    for i, level in enumerate((5.0, 25.0, 60.0)):
        tel.emit("metric.sample", series="combined_frames",
                 owner=f"client{i}", value=level)
    dist = state.buffer_distribution(bins=4)
    assert sum(count for _, count in dist) == 3


def test_render_watch_has_every_section():
    clock, tel, state = make_state()
    clock.now = 12.0
    tel.emit("metric.sample", series="combined_frames",
             owner="client0", value=30.0)
    tel.emit("client.stall.begin", client="client0")
    tel.emit("span.begin", span="takeover", key="client0@5")
    tel.emit("slo.breach", rule="glitch_free_fraction", value=0.5)
    frame = render_watch(state)
    assert "t=   12.00s" in frame
    assert "SLO:" in frame and "BREACH" in frame
    assert "buffer occupancy" in frame
    assert "active spans:" in frame and "takeover" in frame
    assert "STALL" in frame
    assert "recent events:" in frame


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
def test_watch_cli_renders_frames_and_scorecards(capsys, tmp_path):
    code = main([
        "watch", "--scenario", "lan", "--duration", "30",
        "--interval", "15",
        "--telemetry", str(tmp_path / "watch.jsonl"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("t=") >= 2  # one frame per interval
    assert "Per-client QoE scorecards" in out
    assert "glitch_free_fraction" in out
    assert "[telemetry artifact written to" in out
