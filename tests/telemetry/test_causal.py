"""Causal tracing: the failover chain reconstructs from the export.

The acceptance bar for the tracing layer: run the Figure 4 LAN crash
with telemetry on, then rebuild — from the JSONL artifact alone — the
full causal chain ``fault → GCS view change → take-over span → stream
resume``, and decompose the take-over into detection, agreement and
redistribution segments that sum to the span duration exactly.
"""

import dataclasses

import pytest

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.telemetry import (
    Telemetry,
    critical_path,
    failover_breakdowns,
    load_trace_graph,
    load_timeline,
    render_breakdowns,
)

#: Short LAN run with a mid-run crash of the serving replica.
CRASH_SPEC = dataclasses.replace(
    LAN_SCENARIO,
    name="lan-causal",
    movie_duration_s=80.0,
    run_duration_s=80.0,
    schedule=((30.0, "crash-serving"),),
)


@pytest.fixture(scope="module")
def export_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("causal") / "crash.jsonl"
    run_scenario(CRASH_SPEC, telemetry_path=str(path))
    return str(path)


@pytest.fixture(scope="module")
def graph(export_path):
    return load_trace_graph(export_path)


def test_crash_mints_one_cause_chain(graph):
    causes = graph.causes()
    assert len(causes) == 1
    assert causes[0] == "fault.CrashServing#1"


def test_chain_spans_every_failover_stage(graph):
    chain = graph.chain("fault.CrashServing#1")
    kinds = set(chain.kinds)
    # The full event path the issue names, all tagged with one cause id:
    # control message -> view change -> take-over -> resume.
    assert "fault.fired" in kinds
    assert "server.crash" in kinds
    assert "gcs.fd.suspect" in kinds
    assert "gcs.view.install" in kinds
    assert "span.end" in kinds
    assert "server.session.start" in kinds
    assert "client.migrate" in kinds
    assert "client.resume" in kinds


def test_critical_path_is_time_ordered_and_complete(graph):
    chain = graph.chain("fault.CrashServing#1")
    path = critical_path(chain)
    kinds = [event["kind"] for event in path]
    assert kinds[0] == "fault.fired"
    assert "gcs.view.install" in kinds
    assert any(
        event.get("span") == "takeover" for event in path
        if event["kind"] in ("span.end", "span.abandoned")
    )
    assert kinds[-1] == "client.resume"
    times = [event["t"] for event in path]
    assert times == sorted(times)


def test_segments_sum_to_takeover_span_duration(graph, export_path):
    breakdowns = failover_breakdowns(graph)
    assert len(breakdowns) == 1
    item = breakdowns[0]
    assert item.cause == "fault.CrashServing#1"
    assert not item.abandoned
    assert item.crash_t == pytest.approx(30.0)
    # The three in-span segments partition the span exactly.
    assert item.detect_s + item.agree_s + item.redistribute_s == pytest.approx(
        item.total_s
    )
    assert min(item.detect_s, item.agree_s, item.redistribute_s) >= 0.0
    # ... and the total is the take-over span the timeline already knows.
    spans = [
        s for s in load_timeline(export_path).spans()
        if s["span"] == "takeover" and s["duration_s"] is not None
    ]
    assert item.total_s == pytest.approx(spans[0]["duration_s"])
    # The client-visible tail: first frame from the new server.
    assert item.resume_s is not None
    assert item.resume_s > 0.0


def test_render_breakdowns_mentions_cause_and_segments(graph):
    text = render_breakdowns(failover_breakdowns(graph))
    assert "fault.CrashServing#1" in text
    assert "detect" in text and "redistribute" in text


def test_cause_ids_are_deterministic(tmp_path, export_path):
    path = tmp_path / "again.jsonl"
    run_scenario(CRASH_SPEC, telemetry_path=str(path))
    again = load_trace_graph(str(path))
    first = load_trace_graph(export_path)
    assert again.causes() == first.causes()
    assert [
        (e["t"], e["kind"]) for e in again.chain("fault.CrashServing#1").events
    ] == [
        (e["t"], e["kind"]) for e in first.chain("fault.CrashServing#1").events
    ]


# ----------------------------------------------------------------------
# Bus-level causal primitives
# ----------------------------------------------------------------------
def test_new_cause_sequences_deterministically():
    tel = Telemetry()
    assert tel.new_cause("fault.Crash") == "fault.Crash#1"
    assert tel.new_cause("fault.Crash") == "fault.Crash#2"
    assert tel.new_cause("rebalance.server0") == "rebalance.server0#3"


def test_attribute_and_cause_for_with_ambient_fallback():
    tel = Telemetry()
    tel.attribute("node:3", "fault.Crash#1")
    assert tel.cause_for("node:3") == "fault.Crash#1"
    assert tel.cause_for("node:9") is None
    # Ambient cause backstops entities nobody attributed.
    tel.cause = "fault.Crash#2"
    assert tel.cause_for("node:9") == "fault.Crash#2"
    # ... but explicit attribution still wins.
    assert tel.cause_for("node:3") == "fault.Crash#1"
