"""Whole-system determinism: identical seeds, identical runs.

The entire value of the simulation substrate is exact reproducibility;
this locks it down at full-scenario scale (every counter, every time
series sample, every migration timestamp).
"""

import dataclasses

from repro.experiments.scenarios import LAN_SCENARIO, WAN_SCENARIO, run_scenario


def short(spec, **overrides):
    return dataclasses.replace(
        spec,
        movie_duration_s=60.0,
        run_duration_s=60.0,
        schedule=((20.0, "crash-serving"), (35.0, "server-up")),
        **overrides,
    )


def test_lan_scenario_bit_identical_across_runs():
    a = run_scenario(short(LAN_SCENARIO)).export_dict()
    b = run_scenario(short(LAN_SCENARIO)).export_dict()
    assert a == b


def test_wan_scenario_bit_identical_across_runs():
    a = run_scenario(short(WAN_SCENARIO)).export_dict()
    b = run_scenario(short(WAN_SCENARIO)).export_dict()
    assert a == b


def test_different_seeds_differ_somewhere():
    a = run_scenario(short(WAN_SCENARIO), seed=100).export_dict()
    b = run_scenario(short(WAN_SCENARIO), seed=101).export_dict()
    assert a != b
