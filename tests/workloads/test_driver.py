"""End-to-end tests of the workload driver on a live deployment."""

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.driver import WorkloadDriver
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import ViewerProfile


def make_rig(n_hosts=8, n_servers=2, seed=33, movie_s=90.0):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_hosts)
    titles = [f"movie{i}" for i in range(4)]
    catalog = MovieCatalog(
        [Movie.synthetic(t, duration_s=movie_s) for t in titles]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers))
    )
    sampler = ZipfCatalogSampler(titles)
    driver = WorkloadDriver(
        deployment,
        client_hosts=list(range(n_servers, n_servers + n_hosts)),
        sampler=sampler,
    )
    return sim, deployment, driver


def test_population_attaches_and_plays():
    sim, deployment, driver = make_rig()
    arrivals = poisson_arrivals(sim.rng("arrivals"), 0.2, 30.0, start_s=1.0)
    driver.schedule_arrivals(arrivals)
    sim.run_until(60.0)
    stats = driver.stats()
    assert stats.n_viewers == len(arrivals)
    assert stats.total_displayed > 0
    assert sum(stats.requests_per_title.values()) == stats.n_viewers


def test_busy_signal_when_hosts_exhausted():
    sim, deployment, driver = make_rig(n_hosts=2)
    driver.schedule_arrivals([1.0, 1.1, 1.2, 1.3])
    sim.run_until(10.0)
    assert len(driver.clients) == 2
    assert driver.skipped_arrivals == 2


def test_abandoner_frees_host_for_later_arrival():
    sim, deployment, driver = make_rig(n_hosts=1)
    driver.profile = ViewerProfile(abandon_prob=1.0)
    driver.schedule_arrivals([1.0, 40.0])
    sim.run_until(80.0)
    assert len(driver.clients) == 2  # the second arrival found a host
    assert driver.stats().n_abandoned >= 1


def test_popularity_respected_by_requests():
    sim, deployment, driver = make_rig(n_hosts=60, seed=35)
    # Instant arrivals, no behaviour noise.
    driver.profile = ViewerProfile(
        pause_prob=0.0, seek_prob=0.0, abandon_prob=0.0
    )
    driver.schedule_arrivals([1.0 + 0.2 * i for i in range(60)])
    sim.run_until(20.0)
    requests = driver.requests_per_title
    assert requests.get("movie0", 0) > requests.get("movie3", 0)


def test_population_survives_server_crash():
    sim, deployment, driver = make_rig(n_hosts=6, seed=37)
    driver.profile = ViewerProfile(
        pause_prob=0.1, seek_prob=0.1, abandon_prob=0.0
    )
    driver.schedule_arrivals([1.0 + i for i in range(6)])
    sim.call_at(
        30.0,
        lambda: max(
            deployment.live_servers(), key=lambda s: s.n_clients
        ).crash(),
    )
    sim.run_until(70.0)
    stats = driver.stats()
    assert stats.viewers_with_visible_stall == 0
    assert stats.worst_stall_s <= 1.0
