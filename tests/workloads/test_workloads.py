"""Tests for the workload generation package."""

import random

import pytest

from repro.errors import ServiceError
from repro.workloads.arrivals import burst_arrivals, poisson_arrivals
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import (
    CHANNEL_SURFER,
    COUCH_POTATO,
    ViewerProfile,
)


class TestArrivals:
    def test_poisson_rate_approximately_honoured(self):
        rng = random.Random(1)
        times = poisson_arrivals(rng, rate_per_s=2.0, duration_s=500.0)
        assert 800 < len(times) < 1200  # ~1000 expected
        assert all(0 <= t < 500.0 for t in times)
        assert times == sorted(times)

    def test_poisson_deterministic_per_seed(self):
        a = poisson_arrivals(random.Random(7), 1.0, 100.0)
        b = poisson_arrivals(random.Random(7), 1.0, 100.0)
        assert a == b

    def test_poisson_start_offset(self):
        times = poisson_arrivals(random.Random(1), 1.0, 10.0, start_s=50.0)
        assert all(50.0 <= t < 60.0 for t in times)

    def test_poisson_limit(self):
        times = poisson_arrivals(random.Random(1), 100.0, 1e9, limit=50)
        assert len(times) == 50

    def test_poisson_validation(self):
        with pytest.raises(ServiceError):
            poisson_arrivals(random.Random(1), 0.0, 10.0)

    def test_burst_within_spread(self):
        times = burst_arrivals(random.Random(3), 20, at_s=100.0, spread_s=2.0)
        assert len(times) == 20
        assert all(100.0 <= t <= 102.0 for t in times)
        assert times == sorted(times)


class TestZipf:
    def test_head_dominates(self):
        sampler = ZipfCatalogSampler([f"m{i}" for i in range(20)], alpha=1.0)
        rng = random.Random(5)
        histogram = sampler.histogram(sampler.sample_many(rng, 5000))
        assert histogram["m0"] > histogram["m10"] > 0
        # Top-3 titles take a disproportionate share.
        top3 = histogram["m0"] + histogram["m1"] + histogram["m2"]
        assert top3 > 0.4 * 5000

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfCatalogSampler(["a", "b", "c", "d"], alpha=0.0)
        rng = random.Random(5)
        histogram = sampler.histogram(sampler.sample_many(rng, 8000))
        for count in histogram.values():
            assert 1700 < count < 2300

    def test_expected_share_sums_to_one(self):
        sampler = ZipfCatalogSampler([f"m{i}" for i in range(10)])
        total = sum(sampler.expected_share(t) for t in sampler.titles)
        assert total == pytest.approx(1.0)

    def test_empirical_matches_analytic(self):
        sampler = ZipfCatalogSampler([f"m{i}" for i in range(8)], alpha=0.8)
        rng = random.Random(11)
        histogram = sampler.histogram(sampler.sample_many(rng, 20_000))
        for title in sampler.titles:
            expected = sampler.expected_share(title)
            observed = histogram[title] / 20_000
            assert observed == pytest.approx(expected, abs=0.02)

    def test_validation(self):
        with pytest.raises(ServiceError):
            ZipfCatalogSampler([])
        with pytest.raises(ServiceError):
            ZipfCatalogSampler(["a"], alpha=-1)


class TestViewerScripts:
    def test_scripts_deterministic(self):
        profile = ViewerProfile()
        a = profile.script(random.Random(9), 120.0)
        b = profile.script(random.Random(9), 120.0)
        assert a == b

    def test_abandoner_stops_early(self):
        profile = ViewerProfile(abandon_prob=1.0)
        script = profile.script(random.Random(1), 120.0)
        assert len(script) == 1
        assert script[0][1] == "stop"
        assert script[0][0] < 120.0 * 0.5

    def test_pause_always_followed_by_resume(self):
        profile = ViewerProfile(pause_prob=1.0, seek_prob=0.0, abandon_prob=0.0)
        script = profile.script(random.Random(2), 200.0)
        ops = [op for _d, op, _a in script]
        for i, op in enumerate(ops):
            if op == "pause":
                assert ops[i + 1] == "resume"

    def test_seeks_target_inside_movie(self):
        profile = ViewerProfile(pause_prob=0.0, seek_prob=1.0, abandon_prob=0.0)
        script = profile.script(random.Random(3), 100.0)
        for _d, op, arg in script:
            if op == "seek":
                assert 0.0 <= arg <= 100.0

    def test_presets_differ(self):
        def activity(profile, seeds):
            total = 0
            for seed in seeds:
                script = profile.script(random.Random(seed), 300.0)
                total += sum(1 for _d, op, _a in script if op != "nothing")
            return total

        seeds = range(20)
        assert activity(CHANNEL_SURFER, seeds) > activity(COUCH_POTATO, seeds)
