"""The unified admission surface: ClientSpec, attach, from_placement."""

import pytest

from repro.client.player import VoDClient
from repro.errors import ServiceError
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.placement import PlacementContext, ServerProfile, StaticKWay
from repro.placement.plan import build_zipf_catalog
from repro.service.deployment import ClientSpec, Deployment
from repro.sim.core import Simulator


def make_deployment(n_servers=2, n_hosts=6, replicate_all=True):
    sim = Simulator(seed=11)
    topology = build_lan(sim, n_hosts=n_hosts)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=30.0)])
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers)),
        replicate_all=replicate_all,
    )
    return sim, deployment


class TestAttach:
    def test_full_mode_returns_a_client(self):
        sim, deployment = make_deployment()
        client = deployment.attach(ClientSpec(mode="full", host=2))
        assert isinstance(client, VoDClient)
        assert client.name in deployment.clients
        client.request_movie("feature")
        sim.run_until(8.0)
        assert client.displayed_total > 150

    def test_full_mode_requires_a_host(self):
        _, deployment = make_deployment()
        with pytest.raises(ServiceError):
            deployment.attach(ClientSpec(mode="full"))

    def test_flyweight_mode_returns_a_pool(self):
        from repro.client.flyweight import FlyweightPool

        sim, deployment = make_deployment()
        pool = deployment.attach(ClientSpec(mode="flyweight", movie="feature"))
        assert isinstance(pool, FlyweightPool)
        assert pool in deployment.flyweight_pools

    def test_flyweight_mode_requires_a_movie(self):
        _, deployment = make_deployment()
        with pytest.raises(ServiceError):
            deployment.attach(ClientSpec(mode="flyweight"))

    def test_unknown_mode_rejected(self):
        _, deployment = make_deployment()
        with pytest.raises(ServiceError):
            deployment.attach(ClientSpec(mode="holographic"))

    def test_wrappers_delegate_to_attach(self):
        from repro.client.flyweight import FlyweightPool

        _, deployment = make_deployment()
        client = deployment.attach_client(2, name="alice")
        assert isinstance(client, VoDClient)
        assert deployment.client("alice") is client
        pool = deployment.attach_flyweight("feature")
        assert isinstance(pool, FlyweightPool)


class TestFromPlacement:
    def test_replica_map_is_derived_from_the_plan(self):
        sim = Simulator(seed=11)
        topology = build_lan(sim, n_hosts=5)
        catalog = build_zipf_catalog(4, duration_s=20.0)
        profiles = [ServerProfile(name=f"server{i}") for i in range(3)]
        plan = StaticKWay(k=2).build(
            PlacementContext(catalog=catalog, servers=profiles, k=2)
        )
        deployment = Deployment.from_placement(topology, plan, catalog)
        assert sorted(deployment.servers) == ["server0", "server1", "server2"]
        assert deployment.placement is plan
        for title in catalog.titles():
            assert catalog.full_replicas(title) == set(plan.replicas(title))
            assert len(catalog.full_replicas(title)) == 2

    def test_plan_served_catalog_streams(self):
        sim = Simulator(seed=11)
        topology = build_lan(sim, n_hosts=5)
        catalog = build_zipf_catalog(4, duration_s=20.0)
        profiles = [ServerProfile(name=f"server{i}") for i in range(3)]
        plan = StaticKWay(k=2).build(
            PlacementContext(catalog=catalog, servers=profiles, k=2)
        )
        deployment = Deployment.from_placement(topology, plan, catalog)
        client = deployment.attach_client(4)
        client.request_movie(catalog.titles()[0])
        sim.run_until(8.0)
        assert client.displayed_total > 150

    def test_missing_host_mapping_rejected(self):
        sim = Simulator(seed=11)
        topology = build_lan(sim, n_hosts=5)
        catalog = build_zipf_catalog(2, duration_s=20.0)
        profiles = [ServerProfile(name=f"server{i}") for i in range(2)]
        plan = StaticKWay(k=1).build(
            PlacementContext(catalog=catalog, servers=profiles, k=1)
        )
        with pytest.raises(ServiceError):
            Deployment.from_placement(
                topology, plan, catalog, server_hosts={"server0": 0}
            )


class TestDeprecatedMoviesKwarg:
    def test_movies_kwarg_warns_and_routes_through_placement(self):
        sim, deployment = make_deployment(n_servers=1, replicate_all=False)
        with pytest.warns(DeprecationWarning):
            deployment.add_server(1, name="extra", movies=["feature"])
        assert "extra" in deployment.catalog.full_replicas("feature")
