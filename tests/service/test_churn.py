"""Regression tests for membership-churn corner cases.

These scenarios were found by running the elastic-pool example: clients
orphaned across back-to-back server joins, lost view commits under
bursty flush traffic, and multi-movie load spreading.
"""

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_two_movie_service(n_clients=6, seed=42):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=3 + n_clients)
    catalog = MovieCatalog(
        [
            Movie.synthetic("news", duration_s=300),
            Movie.synthetic("feature", duration_s=300),
        ]
    )
    deployment = Deployment(topology, catalog, server_nodes=[0])
    clients = []
    for index in range(n_clients):
        client = deployment.attach_client(3 + index)
        client.request_movie("news" if index % 2 else "feature")
        clients.append(client)
    return sim, deployment, clients


def assert_every_client_served_once(deployment, clients):
    served = {}
    for server in deployment.live_servers():
        for client_pid in server.sessions:
            served.setdefault(client_pid, []).append(server.name)
    for client in clients:
        if client.finished:
            continue
        owners = served.get(client.process, [])
        assert owners != [], f"{client.name} is orphaned"
        assert len(owners) == 1, f"{client.name} served twice: {owners}"


class TestBackToBackJoins:
    def test_no_client_orphaned_after_two_joins(self):
        """Two servers brought up 10 s apart (the flush replays state
        to each joiner) must not leave any client unserved."""
        sim, deployment, clients = make_two_movie_service()
        deployment.controller.start_server_at(40.0, 1, "serverB")
        deployment.controller.start_server_at(50.0, 2, "serverC")
        sim.run_until(80.0)
        assert_every_client_served_once(deployment, clients)
        for client in clients:
            assert client.decoder.stats.stall_time_s <= 1.0, client.name

    def test_joiners_views_install_despite_state_transfer_burst(self):
        """The ViewCommit must survive the state-transfer burst (it was
        once tail-dropped and never re-sent)."""
        from repro.service.protocol import movie_group

        sim, deployment, clients = make_two_movie_service()
        deployment.controller.start_server_at(40.0, 1, "serverB")
        sim.run_until(45.0)
        for title in ("news", "feature"):
            view = deployment.server("serverB").endpoint.group_view(
                movie_group(title)
            )
            assert view is not None, f"no view for {title}"
            assert len(view.members) == 2

    def test_loads_spread_after_joins(self):
        sim, deployment, clients = make_two_movie_service()
        deployment.controller.start_server_at(40.0, 1, "serverB")
        deployment.controller.start_server_at(50.0, 2, "serverC")
        sim.run_until(80.0)
        loads = sorted(s.n_clients for s in deployment.live_servers())
        assert sum(loads) == len(clients)
        assert loads[-1] - loads[0] <= 2


class TestDetachChurn:
    def test_join_then_detach_keeps_everyone_served(self):
        sim, deployment, clients = make_two_movie_service()
        deployment.controller.start_server_at(40.0, 1, "serverB")
        deployment.controller.detach_server_at(70.0, "serverB")
        sim.run_until(100.0)
        assert_every_client_served_once(deployment, clients)
        total_stall = sum(c.decoder.stats.stall_time_s for c in clients)
        assert total_stall <= 1.0

    def test_crash_during_settle_window(self):
        """A server crash right after another server's join exercises
        the orphan-repair path."""
        sim, deployment, clients = make_two_movie_service()
        deployment.controller.start_server_at(40.0, 1, "serverB")
        deployment.controller.crash_server_at(40.6, "server0")
        sim.run_until(80.0)
        assert_every_client_served_once(deployment, clients)


class TestOrphanRepair:
    def test_stale_record_is_reclaimed(self):
        """A record whose server field points at a live server that is
        not actually serving gets re-admitted within a few sync
        periods (the anti-orphan staleness rule)."""
        sim, deployment, clients = make_two_movie_service(n_clients=2)
        sim.run_until(10.0)
        server = deployment.server("server0")
        victim = clients[0]
        # Simulate the lost-session pathology directly: drop the session
        # without marking the client departed.
        session = server.sessions.pop(victim.process)
        session.stop()
        handle = server._session_handles.pop(victim.process)
        handle.leave()
        sim.run_until(16.0)
        assert victim.process in server.sessions  # reclaimed
        assert victim.decoder.stats.stall_time_s <= 1.5
