"""Randomized VCR operation sequences against live invariants.

A deterministic fuzzer drives pause / resume / seek / speed / quality in
random order while a server crash and a load-balance migration happen
underneath, asserting the invariants that must hold whatever the viewer
does: buffers never exceed capacity, the display index stays within the
movie, no I frames are discarded on overflow, and the session always
converges back to exactly one serving server.
"""

import random

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator

MOVIE_S = 120.0


def run_fuzz(seed, n_ops=18, with_faults=True):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=5)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=MOVIE_S)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(4)
    client.request_movie("m")

    rng = random.Random(seed)
    operations = []

    def random_op():
        choice = rng.choice(
            ["pause", "resume", "seek", "speed", "quality", "nothing"]
        )
        operations.append((sim.now, choice))
        if choice == "pause":
            client.pause()
        elif choice == "resume":
            client.resume()
        elif choice == "seek":
            client.seek(rng.uniform(0, MOVIE_S - 10))
        elif choice == "speed":
            client.set_speed(rng.choice([0.5, 1.0, 2.0, 4.0]))
        elif choice == "quality":
            client.set_quality(rng.choice([None, 10, 15]))

    for i in range(n_ops):
        sim.call_at(5.0 + i * 4.0, random_op)

    if with_faults:
        def crash_serving():
            for server in deployment.live_servers():
                if server.process == client.serving_server:
                    server.crash()
                    return

        sim.call_at(25.0, crash_serving)
        sim.call_at(50.0, lambda: deployment.add_server(2, "fresh"))

    # Invariant checks every simulated second.
    movie_frames = int(MOVIE_S * 30)
    violations = []

    def check():
        if client.software_buffer.occupancy > client.config.sw_capacity_frames:
            violations.append("sw overflow")
        if client.decoder.occupancy_bytes > client.decoder.capacity_bytes:
            violations.append("hw overflow")
        index = client.decoder.stats.last_displayed_index
        if not 0 <= index <= movie_frames:
            violations.append(f"display index {index} out of range")
        # Note: overflow_discarded_intra may legitimately rise in
        # reduced-quality phases — the buffer then holds mostly I frames
        # and the paper's policy discards I only "when possible"
        # otherwise.  The preference itself is pinned by unit tests.

    from repro.sim.process import Timer

    Timer(sim, 1.0, check)
    sim.run_until(90.0)

    return sim, deployment, client, operations, violations


@pytest.mark.parametrize("seed", [101, 102, 103, 104, 105, 106])
def test_vcr_fuzz_invariants(seed):
    sim, deployment, client, operations, violations = run_fuzz(seed)
    assert violations == [], (violations, operations)
    # The session always converges back to exactly one serving server
    # (or the client finished the movie).
    serving = [
        s for s in deployment.live_servers()
        if client.process in s.sessions
    ]
    assert client.finished or len(serving) == 1, operations
    # And playback made progress despite everything.
    assert client.displayed_total > 200


@pytest.mark.parametrize("seed", [201, 202])
def test_vcr_fuzz_without_faults(seed):
    sim, deployment, client, operations, violations = run_fuzz(
        seed, with_faults=False
    )
    assert violations == []
    assert client.finished or client.displayed_total > 400
