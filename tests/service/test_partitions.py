"""Service behaviour under network partitions (the paper §2: "Our VoD
service tolerates failures and network partitions")."""

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_wan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_two_site_service(seed=9):
    """A server and a client at each site, seven hops apart."""
    sim = Simulator(seed=seed)
    topology = build_wan(sim, n_hosts_site_a=2, n_hosts_site_b=2)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=240.0)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 2])
    client_a = deployment.attach_client(1, "client-a")
    client_b = deployment.attach_client(3, "client-b")
    client_a.request_movie("m")
    client_b.request_movie("m")
    trunk = (topology.infrastructure[0], topology.infrastructure[2])
    return sim, topology, deployment, client_a, client_b, trunk


def test_both_sides_keep_playing_through_a_partition():
    sim, topo, deployment, a, b, trunk = make_two_site_service()
    sim.run_until(15.0)
    deployment.network.set_link_state(*trunk, False)
    sim.run_until(60.0)
    # Both clients still watch, each from a server in its component.
    assert a.decoder.stats.stall_time_s <= 1.0
    assert b.decoder.stats.stall_time_s <= 1.0
    assert a.displayed_total > 50 * 30 * 0.9
    assert b.displayed_total > 50 * 30 * 0.9


def test_clients_converge_to_local_servers_in_partition():
    sim, topo, deployment, a, b, trunk = make_two_site_service()
    sim.run_until(15.0)
    deployment.network.set_link_state(*trunk, False)
    sim.run_until(45.0)
    # Whoever serves each client must be reachable from it.
    for client in (a, b):
        serving = client.serving_server
        assert serving is not None
        assert deployment.network.reachable(client.node_id, serving.node)


def test_partition_heals_into_one_movie_group():
    from repro.service.protocol import movie_group

    sim, topo, deployment, a, b, trunk = make_two_site_service()
    sim.run_until(15.0)
    deployment.network.set_link_state(*trunk, False)
    sim.run_until(45.0)
    deployment.network.set_link_state(*trunk, True)
    sim.run_until(70.0)
    views = [
        server.endpoint.group_view(movie_group("m"))
        for server in deployment.live_servers()
    ]
    assert all(view is not None for view in views)
    assert all(len(view.members) == 2 for view in views)
    assert views[0].view_id == views[1].view_id


def test_playback_smooth_across_heal():
    sim, topo, deployment, a, b, trunk = make_two_site_service()
    sim.run_until(15.0)
    deployment.network.set_link_state(*trunk, False)
    sim.run_until(40.0)
    deployment.network.set_link_state(*trunk, True)
    sim.run_until(90.0)
    for client in (a, b):
        assert client.decoder.stats.stall_time_s <= 1.0
        assert client.serving_server is not None


def test_client_cut_off_from_all_servers_recovers_on_heal():
    """Both servers at site A; the client at site B loses everything
    during the partition and resumes after the heal."""
    sim = Simulator(seed=13)
    topology = build_wan(sim, n_hosts_site_a=2, n_hosts_site_b=1)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=240.0)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)
    client.request_movie("m")
    sim.run_until(15.0)
    trunk = (topology.infrastructure[0], topology.infrastructure[2])
    deployment.network.set_link_state(*trunk, False)
    sim.run_until(35.0)
    displayed_blackout = client.displayed_total
    deployment.network.set_link_state(*trunk, True)
    sim.run_until(70.0)
    client.decoder.end_stall(sim.now)
    # The blackout itself stalls playback (nothing can prevent that)...
    assert client.decoder.stats.stall_time_s > 5.0
    # ...but service resumes after the heal and playback continues.
    assert client.displayed_total > displayed_blackout + 20 * 30 * 0.8
    assert client.serving_server is not None
