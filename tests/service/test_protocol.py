"""Unit tests for the VoD protocol message definitions."""

from repro.gcs.view import ProcessId
from repro.net.address import Endpoint
from repro.service.protocol import (
    SERVER_GROUP,
    ClientRecord,
    ConnectRequest,
    EmergencyLevel,
    EndOfStream,
    FlowControlMsg,
    FlowKind,
    FramePacket,
    ListMoviesReply,
    StateSync,
    VcrCommand,
    VcrOp,
    movie_group,
    session_group,
)

CLIENT = ProcessId(5, "client0")
SERVER = ProcessId(1, "server0")


def make_record(offset=10):
    return ClientRecord(
        client=CLIENT, movie="m", session="s",
        video_endpoint=Endpoint(5, 8000),
        offset=offset, rate_fps=30, quality_fps=None, paused=False,
        epoch=0, server=SERVER, updated_at=1.0,
    )


def test_group_name_helpers_are_distinct():
    assert movie_group("casablanca") != movie_group("metropolis")
    assert session_group("a") != session_group("b")
    assert movie_group("x") != session_group("x")
    assert SERVER_GROUP not in (movie_group("x"), session_group("x"))


def test_record_is_a_few_dozen_bytes():
    """The §5.2 claim anchors the sync-overhead arithmetic."""
    assert 24 <= make_record().wire_bytes() <= 64


def test_state_sync_size_scales_with_records():
    one = StateSync(SERVER, "m", (make_record(),))
    three = StateSync(SERVER, "m", tuple(make_record(i) for i in (1, 2, 3)))
    assert three.wire_bytes() - one.wire_bytes() == 2 * make_record().wire_bytes()


def test_flow_control_message_is_tiny():
    message = FlowControlMsg(FlowKind.EMERGENCY, EmergencyLevel.SEVERE, 12)
    assert message.wire_bytes() <= 24


def test_vcr_command_kinds():
    for op in VcrOp:
        command = VcrCommand(op, position_s=1.0, quality_fps=10, speed=2.0)
        assert command.wire_bytes() > 0


def test_frame_packet_dominated_by_frame_payload():
    from repro.media.frames import Frame, FrameType

    frame = Frame("m", 1, FrameType.I, 12_000)
    packet = FramePacket(frame, 0, SERVER, 0.0)
    assert packet.wire_bytes() - frame.size_bytes <= 32


def test_connect_request_carries_resume_point():
    request = ConnectRequest(
        client=CLIENT, movie="m",
        video_endpoint=Endpoint(5, 8000), session="s",
        resume_offset=777, resume_epoch=3,
    )
    assert request.resume_offset == 777
    assert request.resume_epoch == 3


def test_messages_are_immutable():
    import dataclasses

    import pytest

    message = EndOfStream("m", 0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        message.movie = "other"
    reply = ListMoviesReply(("a",))
    with pytest.raises(dataclasses.FrozenInstanceError):
        reply.titles = ("b",)
