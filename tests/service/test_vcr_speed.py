"""End-to-end tests for VCR speed control (fast forward / slow motion)."""

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_service(seed=14, movie_s=120.0):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=4)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)
    client.request_movie("m")
    return sim, deployment, client


def position_covered(client, window_s, run):
    """Movie positions traversed per second over a window."""
    sim, start = run
    begin = client.decoder.stats.last_displayed_index
    sim.run_until(start + window_s)
    end = client.decoder.stats.last_displayed_index
    return (end - begin) / window_s


def test_fast_forward_doubles_position_rate():
    sim, deployment, client = make_service()
    sim.run_until(20.0)
    normal = position_covered(client, 10.0, (sim, 20.0))
    client.set_speed(2.0)
    sim.run_until(35.0)  # settle
    fast = position_covered(client, 10.0, (sim, 35.0))
    assert normal == pytest.approx(30, abs=3)
    # Flow control trims the wire rate a little under fast playback, so
    # coverage settles between 1.5x and 2.2x of normal.
    assert 45 <= fast <= 66


def test_fast_forward_keeps_wire_rate_bounded():
    sim, deployment, client = make_service()
    sim.run_until(20.0)
    client.set_speed(2.0)
    sim.run_until(25.0)
    received_before = client.stats.received
    sim.run_until(35.0)
    wire_rate = (client.stats.received - received_before) / 10.0
    # Positions covered at 60/s but frames on the wire stay ~<= 35/s.
    assert wire_rate < 40


def test_fast_forward_keeps_i_frames():
    sim, deployment, client = make_service()
    sim.run_until(10.0)
    client.set_speed(4.0)
    sim.run_until(30.0)
    # At 4x only ~1/4 of incremental frames fit, but the display still
    # progresses through I frames (no long display gaps > 1 GOP).
    assert client.decoder.stats.last_displayed_index > 40 * 30


def test_slow_motion_halves_position_rate():
    sim, deployment, client = make_service()
    sim.run_until(20.0)
    client.set_speed(0.5)
    sim.run_until(25.0)
    slow = position_covered(client, 10.0, (sim, 25.0))
    assert slow == pytest.approx(15, abs=3)


def test_return_to_normal_speed():
    sim, deployment, client = make_service()
    sim.run_until(15.0)
    client.set_speed(2.0)
    sim.run_until(25.0)
    client.set_speed(1.0)
    sim.run_until(32.0)
    normal_again = position_covered(client, 8.0, (sim, 32.0))
    assert normal_again == pytest.approx(30, abs=4)


def test_speed_survives_failover():
    sim, deployment, client = make_service()
    sim.run_until(15.0)
    client.set_speed(2.0)
    sim.run_until(25.0)
    for server in deployment.live_servers():
        if server.process == client.serving_server:
            server.crash()
    sim.run_until(32.0)
    # The takeover resumes the session; the client re-issues its state
    # through the session group... the *offset* carried over:
    survivor = next(s for s in deployment.live_servers() if s.n_clients)
    session = list(survivor.sessions.values())[0]
    assert session.position > 25 * 30  # well past normal-speed coverage


def test_speed_clamped_to_sane_range():
    sim, deployment, client = make_service()
    sim.run_until(10.0)
    client.set_speed(100.0)
    sim.run_until(12.0)
    survivor = next(s for s in deployment.live_servers() if s.n_clients)
    session = list(survivor.sessions.values())[0]
    assert session.speed <= 8.0
