"""Unit tests for the scenario controller."""

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make(n_hosts=5, seed=2):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_hosts)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=60)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    return sim, topology, deployment


def test_crash_server_at():
    sim, topo, deployment = make()
    deployment.controller.crash_server_at(5.0, "server0")
    sim.run_until(6.0)
    assert not deployment.server("server0").running
    events = deployment.controller.events_of("crash")
    assert len(events) == 1 and events[0].time == 5.0


def test_detach_server_at():
    sim, topo, deployment = make()
    deployment.controller.detach_server_at(5.0, "server1")
    sim.run_until(6.0)
    assert not deployment.server("server1").running
    assert deployment.controller.events_of("detach")[0].detail == "server1"


def test_start_server_at():
    sim, topo, deployment = make()
    deployment.controller.start_server_at(5.0, 2, "late-server")
    sim.run_until(6.0)
    assert deployment.server("late-server").running
    assert deployment.controller.events_of("server-up")


def test_partition_and_heal_at():
    sim, topo, deployment = make()
    switch = topo.infrastructure[0]
    deployment.controller.partition_at(
        5.0, [topo.host(0)], [switch] + [topo.host(i) for i in (1, 2, 3)]
    )
    deployment.controller.heal_at(10.0)
    sim.run_until(6.0)
    assert not deployment.network.reachable(topo.host(0), topo.host(1))
    sim.run_until(11.0)
    assert deployment.network.reachable(topo.host(0), topo.host(1))
    kinds = [event.kind for event in deployment.controller.events]
    assert kinds == ["partition", "heal"]


def test_link_state_at():
    sim, topo, deployment = make()
    deployment.controller.link_state_at(
        5.0, topo.host(0), topo.infrastructure[0], False
    )
    sim.run_until(6.0)
    assert not deployment.network.link(
        topo.host(0), topo.infrastructure[0]
    ).up


def test_event_log_ordered_by_time():
    sim, topo, deployment = make()
    deployment.controller.crash_server_at(7.0, "server0")
    deployment.controller.start_server_at(3.0, 2)
    sim.run_until(10.0)
    times = [event.time for event in deployment.controller.events]
    assert times == sorted(times)
