"""End-to-end tests of the full VoD service."""

import pytest

from repro.client.player import ClientConfig
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_service(n_servers=2, n_clients=1, movie_s=60.0, seed=11,
                 replicate_all=True):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_clients + 2)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=movie_s)])
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers)),
        replicate_all=replicate_all,
    )
    clients = [
        deployment.attach_client(n_servers + i) for i in range(n_clients)
    ]
    return sim, deployment, clients


class TestConnect:
    def test_client_connects_and_receives_video(self):
        sim, deployment, (client,) = make_service()
        client.request_movie("feature")
        sim.run_until(10.0)
        assert client.serving_server is not None
        assert client.stats.received > 200
        assert client.displayed_total > 150

    def test_client_is_served_by_exactly_one_server(self):
        sim, deployment, (client,) = make_service()
        client.request_movie("feature")
        sim.run_until(10.0)
        serving = [s for s in deployment.servers.values() if s.n_clients]
        assert len(serving) == 1

    def test_playback_completes(self):
        sim, deployment, (client,) = make_service(movie_s=20.0)
        client.request_movie("feature")
        sim.run_until(35.0)
        assert client.finished
        assert client.displayed_total > 19 * 30

    def test_unknown_movie_never_connects(self):
        sim, deployment, (client,) = make_service()
        client.request_movie("no-such-movie")
        sim.run_until(5.0)
        assert client.serving_server is None

    def test_list_movies(self):
        sim, deployment, (client,) = make_service()
        sim.run_until(2.0)  # let the server group form
        got = []
        client.list_movies(got.append)
        sim.run_until(5.0)
        assert got == [("feature",)]

    def test_two_clients_balanced_across_servers(self):
        sim, deployment, clients = make_service(n_servers=2, n_clients=2)
        for client in clients:
            client.request_movie("feature")
        sim.run_until(10.0)
        loads = sorted(s.n_clients for s in deployment.servers.values())
        assert loads == [1, 1]


class TestCrashFailover:
    def test_client_migrates_transparently(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        first = client.serving_server
        for server in deployment.servers.values():
            if server.process == first:
                server.crash()
        sim.run_until(40.0)
        assert client.serving_server is not None
        assert client.serving_server != first
        # The viewer never saw a freeze.
        assert client.decoder.stats.stall_time_s == 0.0

    def test_takeover_resumes_near_last_offset(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        victim = next(
            s for s in deployment.servers.values()
            if s.process == client.serving_server
        )
        position_at_crash = list(victim.sessions.values())[0].position
        victim.crash()
        sim.run_until(25.0)
        survivor = next(
            s for s in deployment.servers.values() if s.n_clients == 1
        )
        new_position = list(survivor.sessions.values())[0].position
        # Resumed within a few sync periods' worth of the crash position.
        assert abs(new_position - position_at_crash) < 150

    def test_duplicates_counted_late_after_takeover(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        late_before = client.late_total
        for server in deployment.servers.values():
            if server.process == client.serving_server:
                server.crash()
        sim.run_until(30.0)
        assert client.late_total > late_before  # conservative overlap

    def test_k_replicas_tolerate_k_minus_1_failures(self):
        sim, deployment, (client,) = make_service(n_servers=3, movie_s=120.0)
        client.request_movie("feature")

        def crash_serving():
            for server in deployment.live_servers():
                if server.process == client.serving_server:
                    server.crash()
                    return

        sim.call_at(20.0, crash_serving)
        sim.call_at(40.0, crash_serving)
        sim.run_until(70.0)
        assert client.decoder.stats.stall_time_s <= 1.0
        assert len(deployment.live_servers()) == 1
        assert client.serving_server is not None

    def test_all_replicas_dead_stalls_playback(self):
        sim, deployment, (client,) = make_service(n_servers=1, movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        deployment.server("server0").crash()
        sim.run_until(60.0)
        client.decoder.end_stall(sim.now)
        assert client.decoder.stats.stall_time_s > 10.0


class TestGracefulDetach:
    def test_detach_migrates_without_fd_timeout(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        first = client.serving_server
        victim = next(
            s for s in deployment.servers.values() if s.process == first
        )
        victim.shutdown()
        sim.run_until(23.0)
        assert client.serving_server is not None
        assert client.serving_server != first
        assert client.decoder.stats.stall_time_s == 0.0


class TestLoadBalancing:
    def test_new_server_takes_the_client(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        deployment.add_server(3, "serverNew")
        sim.run_until(30.0)
        assert deployment.server("serverNew").n_clients == 1
        assert client.decoder.stats.stall_time_s == 0.0

    def test_load_spreads_over_new_server(self):
        sim, deployment, clients = make_service(
            n_servers=1, n_clients=2, movie_s=90.0
        )
        for client in clients:
            client.request_movie("feature")
        sim.run_until(15.0)
        assert deployment.server("server0").n_clients == 2
        deployment.add_server(4, "serverNew")
        sim.run_until(30.0)
        assert deployment.server("server0").n_clients == 1
        assert deployment.server("serverNew").n_clients == 1


class TestClientDeparture:
    def test_client_crash_cleans_up_sessions(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        deployment.network.node(client.node_id).crash()
        client.endpoint.crash()
        sim.run_until(30.0)
        assert all(s.n_clients == 0 for s in deployment.servers.values())

    def test_client_stop_leaves_gracefully(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(20.0)
        client.stop()
        sim.run_until(25.0)
        assert all(s.n_clients == 0 for s in deployment.servers.values())


class TestVcr:
    def test_pause_and_resume(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(10.0)
        client.pause()
        sim.run_until(12.0)
        received_paused = client.stats.received
        displayed_paused = client.displayed_total
        sim.run_until(20.0)
        # A trickle may land from in-flight frames, then silence.
        assert client.stats.received - received_paused < 40
        assert client.displayed_total == displayed_paused
        client.resume()
        sim.run_until(30.0)
        assert client.displayed_total > displayed_paused + 200

    def test_seek_forward(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(10.0)
        client.seek(60.0)
        sim.run_until(20.0)
        assert client.decoder.stats.last_displayed_index > 60 * 30

    def test_seek_backward(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(30.0)
        client.seek(5.0)
        sim.run_until(32.0)
        index = client.decoder.stats.last_displayed_index
        assert 5 * 30 <= index <= 12 * 30

    def test_stale_epoch_frames_dropped_after_seek(self):
        sim, deployment, (client,) = make_service(movie_s=90.0)
        client.request_movie("feature")
        sim.run_until(10.0)
        client.seek(60.0)
        sim.run_until(12.0)
        assert client.stats.stale_epoch >= 0  # counted, not displayed
        assert client.epoch == 1

    def test_quality_adaptation_reduces_rate_keeps_i_frames(self):
        config = ClientConfig()
        sim, deployment, (client,) = make_service(movie_s=60.0)
        client.request_movie("feature", quality_fps=10)
        sim.run_until(30.0)
        # Received far less than full rate...
        assert client.stats.received < 30 * 22
        # ...but playback progressed in real time (positions advance).
        assert client.decoder.stats.last_displayed_index > 25 * 30
        del config

    def test_set_quality_mid_stream(self):
        sim, deployment, (client,) = make_service(movie_s=60.0)
        client.request_movie("feature")
        sim.run_until(10.0)
        client.set_quality(10)
        sim.run_until(12.0)
        received_before = client.stats.received
        sim.run_until(22.0)
        assert client.stats.received - received_before < 10 * 22


class TestVcrErrors:
    def test_vcr_before_connect_raises(self):
        from repro.errors import SessionError

        sim, deployment, (client,) = make_service()
        with pytest.raises(SessionError):
            client.pause()
        with pytest.raises(SessionError):
            client.seek(1.0)

    def test_double_request_movie_raises(self):
        from repro.errors import SessionError

        sim, deployment, (client,) = make_service()
        client.request_movie("feature")
        with pytest.raises(SessionError):
            client.request_movie("feature")
