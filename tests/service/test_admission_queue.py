"""Regression tests for connect-flood admission (the session ping-pong
bug).

A connect flood landing while the movie group's first view was still
settling used to be admitted straight into the join-regime full
recompute, which round-robins the (growing) record set differently on
every sync receipt — at N=1000 that bounced sessions between replicas
~90 000 times before converging.  The :class:`AdmissionQueue` defers
the flood until the view settles and admits it in sorted client order,
so every replica runs the identical admission sequence exactly once.
"""

from repro.experiments.scale import build_scale_rig


def run_flood(n_clients=64, duration_s=8.0, seed=77):
    """A t=0 connect flood (no spread window, no artificial delay)."""
    sim, deployment, clients, _ = build_scale_rig(
        n_clients, 0.5, connect_window_s=0.0, seed=seed
    )
    starts = {}

    class SessionCounter:
        def on_session_start(self, server, record, takeover):
            starts[record.client] = starts.get(record.client, 0) + 1

    deployment.add_server_observer(SessionCounter())
    sim.run_until(duration_s)
    return sim, deployment, clients, starts


def test_connect_flood_admits_every_client_exactly_once():
    sim, deployment, clients, starts = run_flood()
    # Every client is playing...
    assert len(starts) == len(clients)
    assert all(c.serving_server is not None for c in clients)
    # ...and no session ever moved: zero ping-pong.
    ping_pong = sum(count - 1 for count in starts.values() if count > 1)
    assert ping_pong == 0


def test_connect_flood_goes_through_the_admission_queue():
    # The queue must actually engage (the flood lands before the movie
    # group's first view exists), or this file tests nothing.
    _, deployment, clients, _ = run_flood(n_clients=32, duration_s=6.0)
    deferred = [s.admission.deferred_total for s in deployment.live_servers()]
    assert all(count > 0 for count in deferred)


def test_replicas_agree_on_the_whole_assignment():
    # Sorted-order drain: every replica must compute the same owner for
    # every client, or clients whose replicas disagree are never served
    # (each side thinks the other one is serving).
    _, deployment, clients, _ = run_flood(n_clients=48, duration_s=8.0)
    assignments = [
        dict(server._assignments.get("feature", {}))
        for server in deployment.live_servers()
    ]
    for other in assignments[1:]:
        assert other == assignments[0]
    # The load split is even (least-loaded placement over a queue
    # drained in one deterministic batch).
    loads = sorted(s.n_clients for s in deployment.live_servers())
    assert loads[-1] - loads[0] <= 1


def test_retry_while_settling_is_deduplicated():
    sim, deployment, clients, starts = run_flood(n_clients=16, duration_s=0.0)
    server = deployment.live_servers()[0]
    before = server.admission.pending("feature")
    if before:
        # Replay every queued request: the queue must not grow.
        queue = dict(server.admission._pending["feature"])
        for request in queue.values():
            assert server.admission.defer("feature", request)
        assert server.admission.pending("feature") == before
