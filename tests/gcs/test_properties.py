"""Property-based tests for GCS data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcs.messages import Multicast
from repro.gcs.store import GroupStore
from repro.gcs.view import ProcessId

SENDERS = [ProcessId(i, f"s{i}") for i in range(3)]


@st.composite
def arrival_schedules(draw):
    """A shuffled multiset of (sender, seq) arrivals with duplicates."""
    events = []
    for sender in SENDERS:
        count = draw(st.integers(min_value=0, max_value=15))
        seqs = list(range(1, count + 1))
        duplicates = (
            draw(st.lists(st.sampled_from(seqs), max_size=5)) if seqs else []
        )
        events.extend((sender, seq) for seq in seqs + duplicates)
    return draw(st.permutations(events))


@given(schedule=arrival_schedules())
@settings(max_examples=100, deadline=None)
def test_store_delivers_each_seq_once_in_fifo_order(schedule):
    store = GroupStore("g")
    delivered = {sender: [] for sender in SENDERS}
    for step, (sender, seq) in enumerate(schedule):
        for message in store.receive(
            Multicast("g", sender, seq, None, 8), float(step)
        ):
            delivered[message.sender].append(message.seq)
    for sender in SENDERS:
        total = max(
            [seq for s, seq in schedule if s == sender], default=0
        )
        # FIFO: exactly the full prefix 1..total, in order, no dups.
        assert delivered[sender] == list(range(1, total + 1))


@given(schedule=arrival_schedules())
@settings(max_examples=50, deadline=None)
def test_store_prefix_vector_matches_delivery(schedule):
    store = GroupStore("g")
    count = {sender: 0 for sender in SENDERS}
    for step, (sender, seq) in enumerate(schedule):
        count[sender] += len(
            store.receive(Multicast("g", sender, seq, None, 8), float(step))
        )
    vector = store.known_prefix_vector()
    for sender in SENDERS:
        assert vector.get(sender, 0) == count[sender]


@given(
    cut=st.dictionaries(
        st.sampled_from(SENDERS), st.integers(min_value=0, max_value=30),
        max_size=3,
    ),
    received=st.dictionaries(
        st.sampled_from(SENDERS), st.integers(min_value=0, max_value=30),
        max_size=3,
    ),
)
@settings(max_examples=100, deadline=None)
def test_satisfies_cut_iff_no_deficits(cut, received):
    store = GroupStore("g")
    for sender, upto in received.items():
        for seq in range(1, upto + 1):
            store.receive(Multicast("g", sender, seq, None, 8), 0.0)
    assert store.satisfies_cut(cut) == (not store.deficits(cut))


@given(
    baseline=st.integers(min_value=0, max_value=50),
    extra=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_adopt_baseline_then_stream_continues(baseline, extra):
    store = GroupStore("g")
    sender = SENDERS[0]
    store.adopt_baseline({sender: baseline})
    delivered = []
    for seq in range(baseline + 1, baseline + extra + 1):
        delivered += [
            m.seq for m in store.receive(
                Multicast("g", sender, seq, None, 8), 0.0
            )
        ]
    assert delivered == list(range(baseline + 1, baseline + extra + 1))
