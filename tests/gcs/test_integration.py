"""Integration tests for the group communication system.

Each test builds daemons on a simulated LAN (or WAN), drives membership
churn and traffic, and checks the GCS contract the VoD layer relies on:
view agreement, reliable FIFO multicast, join/leave/crash/partition
handling, open-group sends and reliable point-to-point.
"""

import pytest

from repro.gcs import GcsDomain, GroupListener
from repro.net.link import LinkParams
from repro.net.topologies import build_lan, build_wan
from repro.sim.core import Simulator


class Member:
    """A test process: joins a group and records what it observes."""

    def __init__(self, domain, host, group="g", name=None):
        self.name = name or f"p{host}"
        self.endpoint = domain.create_endpoint(host)
        self.views = []
        self.messages = []
        self.handle = self.endpoint.join(
            group,
            self.name,
            GroupListener(
                on_view=self.views.append,
                on_message=lambda s, p: self.messages.append((s, p)),
            ),
        )

    @property
    def process(self):
        return self.handle.process

    def current_members(self):
        view = self.handle.view
        return set(view.members) if view else set()

    def payloads(self):
        return [payload for _sender, payload in self.messages]


def make_cluster(n, seed=1, hosts=None):
    sim = Simulator(seed=seed)
    topo = build_lan(sim, n_hosts=max(n, hosts or n) + 1)
    domain = GcsDomain(sim, topo.network)
    members = [Member(domain, topo.host(i)) for i in range(n)]
    return sim, topo, domain, members


class TestJoin:
    def test_members_converge_to_one_view(self):
        sim, _topo, _domain, members = make_cluster(3)
        sim.run_until(2.0)
        views = [m.current_members() for m in members]
        assert views[0] == views[1] == views[2]
        assert len(views[0]) == 3

    def test_view_ids_agree(self):
        sim, _topo, _domain, members = make_cluster(3)
        sim.run_until(2.0)
        ids = {m.handle.view.view_id for m in members}
        assert len(ids) == 1

    def test_single_member_forms_singleton(self):
        sim, _topo, _domain, members = make_cluster(1)
        sim.run_until(1.0)
        assert members[0].current_members() == {members[0].process}

    def test_late_joiner_admitted(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        late = Member(domain, topo.host(2))
        sim.run_until(4.0)
        for m in members + [late]:
            assert len(m.current_members()) == 3

    def test_joiner_does_not_see_old_messages(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        members[0].handle.multicast("before-join", 16)
        sim.run_until(3.0)
        late = Member(domain, topo.host(2))
        sim.run_until(5.0)
        assert "before-join" not in late.payloads()

    def test_joiner_receives_new_messages(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        late = Member(domain, topo.host(2))
        sim.run_until(4.0)
        members[0].handle.multicast("after-join", 16)
        sim.run_until(5.0)
        assert "after-join" in late.payloads()


class TestMulticast:
    def test_delivered_to_all_members_including_sender(self):
        sim, _topo, _domain, members = make_cluster(3)
        sim.run_until(2.0)
        members[1].handle.multicast("hello", 16)
        sim.run_until(3.0)
        for m in members:
            assert "hello" in m.payloads()

    def test_fifo_per_sender(self):
        sim, _topo, _domain, members = make_cluster(3)
        sim.run_until(2.0)
        for i in range(20):
            sim.call_at(2.0 + i * 0.01, members[0].handle.multicast, i, 16)
        sim.run_until(4.0)
        for m in members:
            ints = [p for p in m.payloads() if isinstance(p, int)]
            assert ints == list(range(20))

    def test_reliable_under_loss(self):
        # A lossy LAN: every packet has a 10% chance of vanishing.
        sim = Simulator(seed=3)
        lossy = LinkParams(delay_s=0.0005, loss_prob=0.10, bandwidth_bps=1e8)
        topo = build_lan(sim, n_hosts=4, link=lossy)
        domain = GcsDomain(sim, topo.network)
        members = [Member(domain, topo.host(i)) for i in range(3)]
        sim.run_until(3.0)
        for i in range(50):
            sim.call_at(3.0 + i * 0.02, members[0].handle.multicast, i, 16)
        sim.run_until(8.0)
        for m in members:
            ints = [p for p in m.payloads() if isinstance(p, int)]
            assert ints == list(range(50))

    def test_multicast_while_flushing_is_queued_not_lost(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        # Trigger a view change and multicast during it.
        late = Member(domain, topo.host(2))
        sim.call_at(2.05, members[0].handle.multicast, "during-change", 16)
        sim.run_until(5.0)
        assert "during-change" in members[1].payloads()
        del late


class TestCrash:
    def crash(self, topo, domain, member, host):
        topo.network.node(topo.host(host)).crash()
        member.endpoint.crash()

    def test_crash_removes_member_from_views(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        self.crash(topo, domain, members[2], 2)
        sim.run_until(4.0)
        expected = {members[0].process, members[1].process}
        assert members[0].current_members() == expected
        assert members[1].current_members() == expected

    def test_crash_detected_within_a_second(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        self.crash(topo, domain, members[2], 2)
        sim.run_until(3.2)
        assert len(members[0].current_members()) == 2

    def test_coordinator_crash_handled(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        coordinator = members[0].handle.view.coordinator
        victim = next(m for m in members if m.process == coordinator)
        index = members.index(victim)
        self.crash(topo, domain, victim, index)
        sim.run_until(5.0)
        survivors = [m for m in members if m is not victim]
        for m in survivors:
            assert len(m.current_members()) == 2
            assert coordinator not in m.current_members()

    def test_messages_before_crash_delivered_to_survivors(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        members[2].handle.multicast("last-words", 16)
        sim.call_at(2.001, lambda: self.crash(topo, domain, members[2], 2))
        sim.run_until(5.0)
        assert "last-words" in members[0].payloads()
        assert "last-words" in members[1].payloads()

    def test_multicast_works_after_crash_recovery(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        self.crash(topo, domain, members[0], 0)
        sim.run_until(4.0)
        members[1].handle.multicast("post-crash", 16)
        sim.run_until(5.0)
        assert "post-crash" in members[2].payloads()


class TestLeave:
    def test_graceful_leave_updates_views_quickly(self):
        sim, _topo, _domain, members = make_cluster(3)
        sim.run_until(2.0)
        members[1].handle.leave()
        sim.run_until(2.5)  # no FD timeout needed
        assert members[1].process not in members[0].current_members()
        assert len(members[0].current_members()) == 2

    def test_leaver_can_rejoin(self):
        sim, topo, domain, members = make_cluster(2)
        sim.run_until(2.0)
        members[1].endpoint.leave_group("g")
        sim.run_until(3.0)
        assert len(members[0].current_members()) == 1
        rejoined_views = []
        members[1].endpoint.join(
            "g", "p1-again", GroupListener(on_view=rejoined_views.append)
        )
        sim.run_until(5.0)
        assert len(members[0].current_members()) == 2
        assert rejoined_views and len(rejoined_views[-1].members) == 2

    def test_multicast_after_leave_raises(self):
        from repro.errors import NotMemberError

        sim, _topo, _domain, members = make_cluster(2)
        sim.run_until(2.0)
        members[0].handle.leave()
        with pytest.raises(NotMemberError):
            members[0].handle.multicast("zombie", 16)


class TestPartition:
    def test_partition_forms_component_views(self):
        sim = Simulator(seed=3)
        topo = build_wan(sim, 2, 2)
        domain = GcsDomain(sim, topo.network)
        members = [Member(domain, topo.host(i)) for i in range(4)]
        sim.run_until(3.0)
        topo.network.set_link_state(0, 2, False)  # cut the WAN trunk
        sim.run_until(8.0)
        side_a = {members[0].process, members[1].process}
        side_b = {members[2].process, members[3].process}
        assert members[0].current_members() == side_a
        assert members[1].current_members() == side_a
        assert members[2].current_members() == side_b

    def test_merge_after_heal(self):
        sim = Simulator(seed=3)
        topo = build_wan(sim, 2, 2)
        domain = GcsDomain(sim, topo.network)
        members = [Member(domain, topo.host(i)) for i in range(4)]
        sim.run_until(3.0)
        topo.network.set_link_state(0, 2, False)
        sim.run_until(8.0)
        members[0].handle.multicast("a-side", 16)
        members[2].handle.multicast("b-side", 16)
        sim.run_until(10.0)
        topo.network.set_link_state(0, 2, True)
        sim.run_until(20.0)
        everyone = {m.process for m in members}
        for m in members:
            assert m.current_members() == everyone
        # Multicast flows across the merged group again.
        members[3].handle.multicast("post-merge", 16)
        sim.run_until(21.0)
        for m in members:
            assert "post-merge" in m.payloads()


class TestOpenGroupAndP2p:
    def test_open_group_send_reaches_members(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        received = []
        members[0].endpoint.register_open_group_handler(
            "g", lambda s, p: received.append((s, p))
        )
        outsider = domain.create_endpoint(topo.host(2))
        outsider.send_to_group("g", "knock", 16, sender_name="outsider")
        sim.run_until(3.0)
        assert received and received[0][1] == "knock"
        assert received[0][0].name == "outsider"

    def test_open_group_duplicate_requests_suppressed(self):
        sim, topo, domain, members = make_cluster(2, hosts=3)
        sim.run_until(2.0)
        received = []
        members[0].endpoint.register_open_group_handler(
            "g", lambda s, p: received.append(p)
        )
        outsider = domain.create_endpoint(topo.host(2))
        request_id = outsider.send_to_group("g", "knock", 16)
        sim.run_until(3.0)
        assert len(received) == 1
        del request_id

    def test_p2p_delivery_and_dedup(self):
        sim, topo, domain, members = make_cluster(2)
        sim.run_until(2.0)
        got = []
        members[1].endpoint.register_p2p_handler(
            members[1].name, lambda s, p: got.append(p)
        )
        members[0].endpoint.send_p2p(
            members[1].process, "direct", 16, sender_name="p0"
        )
        sim.run_until(3.0)
        assert got == ["direct"]

    def test_p2p_survives_loss(self):
        sim = Simulator(seed=9)
        lossy = LinkParams(delay_s=0.0005, loss_prob=0.4, bandwidth_bps=1e8)
        topo = build_lan(sim, n_hosts=2, link=lossy)
        domain = GcsDomain(sim, topo.network)
        a = domain.create_endpoint(topo.host(0))
        b = domain.create_endpoint(topo.host(1))
        got = []
        b.register_p2p_handler("target", lambda s, p: got.append(p))
        from repro.gcs.view import ProcessId

        a.send_p2p(ProcessId(topo.host(1), "target"), "please", 16)
        sim.run_until(5.0)
        assert got == ["please"]


class TestVirtualSynchronyFlavour:
    def test_same_messages_before_view_change(self):
        """Messages sent before a crash are delivered to both survivors
        (all-or-none within the surviving component)."""
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        for i in range(10):
            members[0].handle.multicast(("pre", i), 16)
        topo.network.node(topo.host(0)).crash()
        members[0].endpoint.crash()
        sim.run_until(6.0)
        set_1 = {p for p in members[1].payloads() if isinstance(p, tuple)}
        set_2 = {p for p in members[2].payloads() if isinstance(p, tuple)}
        assert set_1 == set_2

    def test_view_sequence_monotonic(self):
        sim, topo, domain, members = make_cluster(3)
        sim.run_until(2.0)
        topo.network.node(topo.host(2)).crash()
        members[2].endpoint.crash()
        sim.run_until(5.0)
        for m in members[:2]:
            ids = [v.view_id for v in m.views]
            assert all(a < b for a, b in zip(ids, ids[1:]))


class TestSilentLossRecovery:
    def test_single_lost_message_recovered_via_heartbeat_vectors(self):
        """A lost multicast with NO follow-up traffic is still
        recovered: heartbeat ack-vectors expose the deficit and the
        normal NACK machinery fills it (regression: a lost one-shot
        control message like PAUSE used to vanish forever)."""
        sim = Simulator(seed=41)
        # Deterministic single loss: drop exactly the first multicast.
        topo = build_lan(sim, n_hosts=2)
        domain = GcsDomain(sim, topo.network)
        members = [Member(domain, topo.host(i)) for i in range(2)]
        sim.run_until(2.0)

        # Intercept the link to drop the next Multicast datagram once.
        from repro.gcs.messages import Multicast as McastMsg

        link = topo.network.link(topo.host(0), topo.infrastructure[0])
        direction = link.direction(topo.host(0))
        original_transmit = direction.transmit
        dropped = []

        def dropping_transmit(datagram, deliver, guaranteed=False):
            if isinstance(datagram.payload, McastMsg) and not dropped:
                dropped.append(datagram)
                return  # silently lost
            original_transmit(datagram, deliver, guaranteed)

        direction.transmit = dropping_transmit
        members[0].handle.multicast("one-shot", 16)
        sim.run_until(4.0)
        assert dropped, "interception did not fire"
        assert "one-shot" in members[1].payloads()
