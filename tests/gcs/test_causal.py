"""Tests for causally-ordered multicast."""

from repro.gcs import GcsDomain
from repro.gcs.causal import CausalGroup
from repro.net.link import LinkParams
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


def make_group(n, seed=1, link=None):
    sim = Simulator(seed=seed)
    kwargs = {"link": link} if link is not None else {}
    topo = build_lan(sim, n_hosts=n, **kwargs)
    domain = GcsDomain(sim, topo.network)
    members = [
        CausalGroup(domain.create_endpoint(topo.host(i)), "causal", f"p{i}")
        for i in range(n)
    ]
    return sim, topo, domain, members


def bodies(member):
    return [body for _s, body in member.delivered]


def test_single_sender_fifo():
    sim, _t, _d, members = make_group(3)
    sim.run_until(2.0)
    for i in range(10):
        members[0].multicast(i)
    sim.run_until(3.0)
    for m in members:
        assert bodies(m) == list(range(10))


def test_reply_after_delivery_is_causally_ordered():
    """If B replies to A's message, nobody sees the reply first."""
    sim, _t, _d, members = make_group(3)
    sim.run_until(2.0)
    members[1].on_deliver = (
        lambda sender, body:
        members[1].multicast(("reply", body))
        if body == "question" else None
    )
    members[0].multicast("question")
    sim.run_until(4.0)
    for m in members:
        seq = bodies(m)
        assert "question" in seq and ("reply", "question") in seq
        assert seq.index("question") < seq.index(("reply", "question"))


def test_causal_chain_across_three_members():
    sim, _t, _d, members = make_group(3)
    sim.run_until(2.0)

    def chain(member, trigger, emit):
        original = member.on_deliver

        def handler(sender, body):
            if body == trigger:
                member.multicast(emit)
            original(sender, body)

        member.on_deliver = handler

    chain(members[1], "a", "b")
    chain(members[2], "b", "c")
    members[0].multicast("a")
    sim.run_until(5.0)
    for m in members:
        seq = bodies(m)
        assert seq.index("a") < seq.index("b") < seq.index("c")


def test_concurrent_messages_all_delivered():
    sim, _t, _d, members = make_group(4)
    sim.run_until(2.0)
    for i in range(12):
        members[i % 4].multicast(("m", i))
    sim.run_until(4.0)
    expected = {("m", i) for i in range(12)}
    for m in members:
        assert set(bodies(m)) == expected


def test_causality_preserved_under_loss():
    lossy = LinkParams(delay_s=0.0005, loss_prob=0.1, bandwidth_bps=1e8)
    sim, _t, _d, members = make_group(3, seed=5, link=lossy)
    sim.run_until(3.0)
    # A ping-pong conversation between p0 and p1; causal order must
    # hold at the bystander p2 even with retransmission delays.
    def echo(member, label):
        def handler(sender, body):
            if isinstance(body, int) and body < 10 and sender != member.process:
                member.multicast(body + 1)
        member.on_deliver = handler

    echo(members[1], "B")
    echo(members[0], "A")
    members[0].multicast(0)
    sim.run_until(10.0)
    for m in members:
        ints = [b for b in bodies(m) if isinstance(b, int)]
        assert ints == sorted(ints)
        assert len(ints) >= 10


def test_vector_reflects_deliveries():
    sim, _t, _d, members = make_group(2)
    sim.run_until(2.0)
    members[0].multicast("x")
    members[0].multicast("y")
    sim.run_until(3.0)
    assert members[1].vector()[members[0].process] == 2


def test_crash_of_sender_does_not_block_others():
    sim, topo, _d, members = make_group(3, seed=9)
    sim.run_until(2.0)
    members[0].multicast("pre-crash")
    sim.run_until(3.0)
    topo.network.node(topo.host(0)).crash()
    members[0].endpoint.crash()
    sim.run_until(6.0)
    members[1].multicast("post-crash")
    sim.run_until(7.0)
    for m in members[1:]:
        assert "pre-crash" in bodies(m)
        assert "post-crash" in bodies(m)


def test_late_joiner_skips_history_but_gets_new_traffic():
    sim, topo, domain, members = make_group(2, seed=3)
    sim.run_until(2.0)
    members[0].multicast("old")
    sim.run_until(3.0)
    node = topo.network.add_node("late-host")
    topo.network.add_link(node.node_id, topo.infrastructure[0])
    late = CausalGroup(domain.create_endpoint(node.node_id), "causal", "late")
    sim.run_until(6.0)
    members[0].multicast("new")
    sim.run_until(8.0)
    assert "old" not in bodies(late)
    assert "new" in bodies(late)
