"""Unit tests for the GroupMember state machine with a scripted endpoint.

The integration tests exercise the protocol over the network; these pin
down individual transitions with full control over message injection.
"""

import pytest

from repro.gcs.membership import GroupMember, MemberState
from repro.gcs.messages import (
    FlushOk,
    FlushVector,
    JoinRequest,
    LeaveRequest,
    Multicast,
    Propose,
    ViewCommit,
)
from repro.gcs.view import ProcessId, ViewId

ME = ProcessId(1, "me")
PEER = ProcessId(2, "peer")
THIRD = ProcessId(3, "third")


class FakeEndpoint:
    """Scripted endpoint: records sends, exposes a controllable clock."""

    def __init__(self):
        self.now = 0.0
        self.daemon_id = 1
        self.sent = []  # (daemon, message)
        self.broadcasts = []
        self._suspected = set()

    def send_to_daemon(self, daemon, message):
        self.sent.append((daemon, message))

    def broadcast_domain(self, message):
        self.broadcasts.append(message)

    def suspected_daemons(self):
        return set(self._suspected)

    @staticmethod
    def daemon_of(process):
        return process.node

    def note_installed_view(self, group, view):
        pass

    def note_left_process(self, group, process):
        pass

    def is_tombstoned(self, group, process):
        return False

    def sent_of_type(self, cls):
        return [m for _d, m in self.sent if isinstance(m, cls)]

    def broadcast_of_type(self, cls):
        return [m for m in self.broadcasts if isinstance(m, cls)]


@pytest.fixture
def member():
    endpoint = FakeEndpoint()
    views, messages = [], []
    gm = GroupMember(
        endpoint, "g", ME,
        on_view=views.append,
        on_message=lambda s, p: messages.append((s, p)),
    )
    return endpoint, gm, views, messages


def install_singleton(endpoint, gm):
    endpoint.now = 1.0
    gm.tick()  # past JOIN_SINGLETON_TIMEOUT
    assert gm.state == MemberState.NORMAL


def test_join_broadcasts_request(member):
    endpoint, gm, _v, _m = member
    assert len(endpoint.broadcast_of_type(JoinRequest)) == 1


def test_join_retries_until_view(member):
    endpoint, gm, _v, _m = member
    endpoint.now = 0.3
    gm.tick()
    assert len(endpoint.broadcast_of_type(JoinRequest)) == 2


def test_singleton_installed_after_timeout(member):
    endpoint, gm, views, _m = member
    install_singleton(endpoint, gm)
    assert views[-1].members == (ME,)
    assert views[-1].coordinator == ME


def test_join_request_triggers_proposal_from_coordinator(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    proposals = endpoint.sent_of_type(Propose)
    assert proposals and set(proposals[-1].members) == {ME, PEER}
    assert proposals[-1].prior == (ME,)


def test_duplicate_join_request_no_second_proposal(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    count = len(endpoint.sent_of_type(Propose))
    gm.on_join_request(JoinRequest("g", PEER))
    assert len(endpoint.sent_of_type(Propose)) == count


def test_flush_completes_with_peer_vector_and_ok(member):
    endpoint, gm, views, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    vid = gm.proposal.view_id
    gm.on_flush_vector(FlushVector("g", vid, PEER, {}))
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    assert gm.state == MemberState.NORMAL
    assert set(views[-1].members) == {ME, PEER}
    commits = endpoint.sent_of_type(ViewCommit)
    assert commits and commits[-1].view_id == vid


def test_stale_proposal_rejected(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    old = Propose("g", ViewId(0, PEER), (ME, PEER))
    gm.on_propose(old)
    assert gm.proposal is None  # older than the installed view


def test_proposal_not_including_me_ignored(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    foreign = Propose("g", ViewId(9, PEER), (PEER, THIRD))
    gm.on_propose(foreign)
    assert gm.proposal is None


def test_higher_concurrent_proposal_wins(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    mine = gm.proposal.view_id
    higher = Propose(
        "g", ViewId(mine.counter, THIRD), (ME, PEER, THIRD)
    )
    assert ViewId(mine.counter, THIRD) > mine  # THIRD sorts after ME
    gm.on_propose(higher)
    assert gm.proposal.view_id == higher.view_id


def test_lower_concurrent_proposal_ignored(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", THIRD))
    mine = gm.proposal.view_id
    lower = Propose("g", ViewId(mine.counter, ProcessId(0, "a")), (ME, PEER))
    gm.on_propose(lower)
    assert gm.proposal.view_id == mine


def test_multicast_blocked_during_flush_released_on_install(member):
    endpoint, gm, _v, messages = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    assert gm.state == MemberState.FLUSHING
    gm.multicast("queued", 8)
    assert not endpoint.sent_of_type(Multicast)
    vid = gm.proposal.view_id
    gm.on_flush_vector(FlushVector("g", vid, PEER, {}))
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    sent = endpoint.sent_of_type(Multicast)
    assert [m.payload for m in sent] == ["queued"]
    assert ("queued" in [p for _s, p in messages])  # local delivery too


def test_suspected_member_removed_by_coordinator(member):
    endpoint, gm, views, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    vid = gm.proposal.view_id
    gm.on_flush_vector(FlushVector("g", vid, PEER, {}))
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    assert set(views[-1].members) == {ME, PEER}
    endpoint._suspected = {PEER.node}
    gm.on_suspicion_change()
    # With a single live member the flush completes synchronously.
    assert gm.state == MemberState.NORMAL
    assert views[-1].members == (ME,)
    assert views[-1].departed == (PEER,)


def test_leave_request_triggers_removal(member):
    endpoint, gm, views, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    vid = gm.proposal.view_id
    gm.on_flush_vector(FlushVector("g", vid, PEER, {}))
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    gm.on_leave_request(LeaveRequest("g", PEER))
    # Single-survivor flush commits synchronously.
    assert views[-1].members == (ME,)


def test_left_member_ignores_everything(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.leave()
    assert gm.state == MemberState.LEFT
    gm.on_join_request(JoinRequest("g", PEER))
    assert gm.proposal is None


def test_commit_for_installed_view_answered_from_cache(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    vid = gm.proposal.view_id
    gm.on_flush_vector(FlushVector("g", vid, PEER, {}))
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    endpoint.sent.clear()
    # PEER lost the commit and re-sends its FlushOk.
    gm.on_flush_ok(FlushOk("g", vid, PEER))
    resent = endpoint.sent_of_type(ViewCommit)
    assert resent and resent[-1].view_id == vid


def test_reproposal_same_members_keeps_flush_episode_clock(member):
    """A FLUSH_TIMEOUT re-proposal over the same member set must carry
    the flush episode start forward: resetting it would starve the
    FLUSH_STALL_ADOPT escape (FLUSH_TIMEOUT < FLUSH_STALL_ADOPT) and a
    proposer whose cut demands messages a merged-in component already
    evicted as stable would re-propose forever."""
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    first = gm.proposal
    assert first.flush_since == first.started_at

    endpoint.now = first.started_at + 0.9  # past FLUSH_TIMEOUT
    gm.tick()
    second = gm.proposal
    assert second.view_id.counter == first.view_id.counter + 1
    assert set(second.members) == set(first.members)
    assert second.started_at == endpoint.now
    assert second.flush_since == first.flush_since


def test_reproposal_changed_members_resets_flush_episode_clock(member):
    endpoint, gm, _v, _m = member
    install_singleton(endpoint, gm)
    gm.on_join_request(JoinRequest("g", PEER))
    first = gm.proposal

    # A third process asks to join mid-flush: the changed member set
    # starts a fresh flush episode.
    endpoint.now = first.started_at + 0.5
    gm.on_join_request(JoinRequest("g", THIRD))
    second = gm.proposal
    assert set(second.members) == {ME, PEER, THIRD}
    assert second.flush_since == endpoint.now
    assert second.flush_since != first.flush_since
