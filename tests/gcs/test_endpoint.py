"""Unit tests for the GCS daemon endpoint services."""

import pytest

from repro.errors import GroupError
from repro.gcs import GcsDomain, GroupListener
from repro.gcs.view import ProcessId
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


@pytest.fixture
def rig():
    sim = Simulator(seed=6)
    topo = build_lan(sim, n_hosts=3)
    domain = GcsDomain(sim, topo.network)
    endpoints = [domain.create_endpoint(topo.host(i)) for i in range(3)]
    return sim, topo, domain, endpoints


def test_one_member_per_group_per_daemon(rig):
    _sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    with pytest.raises(GroupError):
        endpoints[0].join("g", "b", GroupListener())


def test_rejoin_after_leave_allowed(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    sim.run_until(1.0)
    endpoints[0].leave_group("g")
    endpoints[0].join("g", "a2", GroupListener())


def test_duplicate_daemon_on_node_rejected(rig):
    _sim, topo, domain, _endpoints = rig
    with pytest.raises(ValueError):
        domain.create_endpoint(topo.host(0))


def test_daemon_recreate_after_crash(rig):
    sim, topo, domain, endpoints = rig
    endpoints[0].crash()
    topo.network.node(topo.host(0)).restart()
    fresh = domain.create_endpoint(topo.host(0))
    assert not fresh.closed


def test_group_view_lookup(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    endpoints[1].join("g", "b", GroupListener())
    sim.run_until(2.0)
    view = endpoints[0].group_view("g")
    assert view is not None and len(view.members) == 2
    assert endpoints[2].group_view("g") is None


def test_shutdown_leaves_groups(rig):
    sim, _topo, _domain, endpoints = rig
    views = []
    endpoints[0].join("g", "a", GroupListener(on_view=views.append))
    endpoints[1].join("g", "b", GroupListener())
    sim.run_until(2.0)
    endpoints[1].shutdown()
    sim.run_until(3.0)
    assert len(views[-1].members) == 1
    assert endpoints[1].closed


def test_operations_on_closed_endpoint_raise(rig):
    _sim, _topo, _domain, endpoints = rig
    endpoints[0].shutdown()
    with pytest.raises(GroupError):
        endpoints[0].join("g", "a", GroupListener())
    with pytest.raises(GroupError):
        endpoints[0].send_to_group("g", "x")


def test_open_group_send_without_members_is_harmless(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].send_to_group("empty-group", "hello")
    sim.run_until(1.0)  # nobody joined: nothing happens, nothing crashes


def test_open_group_local_delivery(rig):
    sim, _topo, _domain, endpoints = rig
    got = []
    endpoints[0].join("g", "a", GroupListener())
    endpoints[0].register_open_group_handler("g", lambda s, p: got.append(p))
    sim.run_until(1.0)
    endpoints[0].send_to_group("g", "self-call")
    sim.run_until(2.0)
    assert got == ["self-call"]


def test_p2p_to_dead_daemon_gives_up(rig):
    sim, topo, _domain, endpoints = rig
    topo.network.node(topo.host(1)).crash()
    endpoints[1].crash()
    endpoints[0].send_p2p(ProcessId(topo.host(1), "ghost"), "hello")
    sim.run_until(10.0)
    assert endpoints[0]._p2p_pending == {}  # retries exhausted, cleaned up


def test_p2p_handler_per_process_name(rig):
    sim, _topo, _domain, endpoints = rig
    got_a, got_b = [], []
    endpoints[1].register_p2p_handler("a", lambda s, p: got_a.append(p))
    endpoints[1].register_p2p_handler("b", lambda s, p: got_b.append(p))
    endpoints[0].send_p2p(ProcessId(endpoints[1].daemon_id, "b"), "for-b")
    sim.run_until(2.0)
    assert got_a == []
    assert got_b == ["for-b"]


def test_control_traffic_accounted(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    endpoints[1].join("g", "b", GroupListener())
    sim.run_until(3.0)
    assert endpoints[0].control_bytes_sent > 0
    assert endpoints[0].control_packets_sent > 0


def test_heartbeats_only_to_co_members(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    endpoints[1].join("g", "b", GroupListener())
    # endpoint 2 joins nothing shared.
    sim.run_until(3.0)
    targets = endpoints[0]._heartbeat_targets()
    assert endpoints[1].daemon_id in targets
    assert endpoints[2].daemon_id not in targets


def test_heartbeats_reciprocate_recent_senders(rig):
    """A daemon answers daemons that are heartbeating *it*, even when its
    own views list none of their processes — one-way view divergence
    after a partition merge must not read as daemon death."""
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    sim.run_until(1.5)
    stranger = endpoints[2].daemon_id
    assert stranger not in endpoints[0]._heartbeat_targets()
    # A fresh heartbeat from the stranger makes it a target...
    endpoints[0]._hb_heard[stranger] = sim.now
    assert stranger in endpoints[0]._heartbeat_targets()
    # ...but only while it keeps sending: a stale entry ages out.
    endpoints[0]._hb_heard[stranger] = sim.now - endpoints[0].fd.timeout - 0.01
    assert stranger not in endpoints[0]._heartbeat_targets()


def test_heard_within_tracks_any_traffic(rig):
    sim, _topo, _domain, endpoints = rig
    endpoints[0].join("g", "a", GroupListener())
    endpoints[1].join("g", "b", GroupListener())
    sim.run_until(3.0)
    # Co-members exchange heartbeats constantly.
    assert endpoints[0].heard_within(endpoints[1].daemon_id, 0.5)
    # The silent third daemon has never been heard from.
    assert not endpoints[0].heard_within(endpoints[2].daemon_id, 0.5)
    # A daemon always counts as having heard itself.
    assert endpoints[0].heard_within(endpoints[0].daemon_id, 0.5)
