"""Unit tests for the reliable-multicast store."""

from repro.gcs.messages import Multicast
from repro.gcs.store import GroupStore
from repro.gcs.view import ProcessId

A = ProcessId(1, "a")
B = ProcessId(2, "b")


def msg(sender, seq, payload=None):
    return Multicast("g", sender, seq, payload or f"m{seq}", 16)


def test_in_order_messages_deliver_immediately():
    store = GroupStore("g")
    assert [m.seq for m in store.receive(msg(A, 1), 0.0)] == [1]
    assert [m.seq for m in store.receive(msg(A, 2), 0.0)] == [2]


def test_gap_blocks_delivery_until_filled():
    store = GroupStore("g")
    assert store.receive(msg(A, 2), 0.0) == []
    delivered = store.receive(msg(A, 1), 0.1)
    assert [m.seq for m in delivered] == [1, 2]


def test_duplicates_dropped():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    assert store.receive(msg(A, 1), 0.1) == []


def test_pending_duplicate_dropped():
    store = GroupStore("g")
    store.receive(msg(A, 2), 0.0)
    assert store.receive(msg(A, 2), 0.1) == []


def test_flows_are_per_sender():
    store = GroupStore("g")
    store.receive(msg(A, 2), 0.0)  # gap in A's flow
    delivered = store.receive(msg(B, 1), 0.0)  # B unaffected
    assert [m.sender for m in delivered] == [B]


def test_gaps_reported_after_min_age():
    store = GroupStore("g")
    store.receive(msg(A, 3), 1.0)
    assert store.gaps(now=1.01, min_age=0.05) == []
    assert store.gaps(now=1.2, min_age=0.05) == [(A, 1, 2)]


def test_gap_cleared_when_filled():
    store = GroupStore("g")
    store.receive(msg(A, 2), 1.0)
    store.receive(msg(A, 1), 1.1)
    assert store.gaps(now=5.0, min_age=0.01) == []


def test_record_own_advances_delivered():
    store = GroupStore("g")
    store.record_own(msg(A, 1))
    store.record_own(msg(A, 2))
    assert store.delivered_seq(A) == 2
    assert store.receive(msg(A, 1), 0.0) == []  # own copy not re-delivered


def test_retained_range_returns_copies():
    store = GroupStore("g")
    for seq in range(1, 6):
        store.receive(msg(A, seq), 0.0)
    assert [m.seq for m in store.retained_range(A, 2, 4)] == [2, 3, 4]


def test_retained_range_unknown_sender_empty():
    store = GroupStore("g")
    assert list(store.retained_range(A, 1, 3)) == []


def test_known_prefix_vector():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    store.receive(msg(B, 1), 0.0)
    store.receive(msg(B, 3), 0.0)  # gap at 2
    assert store.known_prefix_vector() == {A: 1, B: 1}


def test_satisfies_cut():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    assert store.satisfies_cut({A: 1})
    assert not store.satisfies_cut({A: 2})
    assert not store.satisfies_cut({B: 1})
    assert store.satisfies_cut({})


def test_deficits():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    assert store.deficits({A: 3, B: 2}) == [(A, 2, 3), (B, 1, 2)]


def test_adopt_baseline_skips_history():
    store = GroupStore("g")
    store.adopt_baseline({A: 10})
    assert store.delivered_seq(A) == 10
    # The next message continues the flow without a gap.
    assert [m.seq for m in store.receive(msg(A, 11), 0.0)] == [11]


def test_adopt_baseline_never_rewinds():
    store = GroupStore("g")
    for seq in (1, 2, 3):
        store.receive(msg(A, seq), 0.0)
    store.adopt_baseline({A: 2})
    assert store.delivered_seq(A) == 3


def test_adopt_baseline_discards_stale_pending():
    store = GroupStore("g")
    store.receive(msg(A, 3), 0.0)  # pending behind a gap
    store.adopt_baseline({A: 5})
    assert store.gaps(now=10.0, min_age=0.0) == []


def test_eviction_requires_all_member_vectors():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    store.update_peer_vector(A, {A: 1})
    # B's vector unknown: nothing evicted.
    assert store.evict_stable([A, B]) == 0
    store.update_peer_vector(B, {A: 1})
    assert store.evict_stable([A, B]) == 1
    assert list(store.retained_range(A, 1, 1)) == []


def test_eviction_keeps_undelivered():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    store.receive(msg(A, 2), 0.0)
    store.update_peer_vector(A, {A: 2})
    store.update_peer_vector(B, {A: 1})  # B lags
    store.evict_stable([A, B])
    assert [m.seq for m in store.retained_range(A, 1, 2)] == [2]


def test_forget_peer_removes_vector():
    store = GroupStore("g")
    store.receive(msg(A, 1), 0.0)
    store.update_peer_vector(A, {A: 1})
    store.update_peer_vector(B, {A: 1})
    store.forget_peer(B)
    assert store.evict_stable([A]) == 1  # only A's vector needed now


def test_retain_limit_trims_oldest():
    store = GroupStore("g", retain_limit=5)
    for seq in range(1, 21):
        store.receive(msg(A, seq), 0.0)
    assert store.retained_count() == 5
    assert [m.seq for m in store.retained_range(A, 1, 20)] == [16, 17, 18, 19, 20]
