"""GCS hardening: cascades, flapping links, concurrent churn."""

from repro.gcs import GcsDomain, GroupListener
from repro.net.link import LinkParams
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


class Member:
    def __init__(self, domain, host, name):
        self.name = name
        self.endpoint = domain.create_endpoint(host)
        self.views = []
        self.messages = []
        self.handle = self.endpoint.join(
            "g", name,
            GroupListener(
                on_view=self.views.append,
                on_message=lambda s, p: self.messages.append(p),
            ),
        )

    @property
    def process(self):
        return self.handle.process

    def members(self):
        view = self.handle.view
        return set(view.members) if view else set()


def build(n, seed=1, link=None):
    sim = Simulator(seed=seed)
    kwargs = {"link": link} if link else {}
    topo = build_lan(sim, n_hosts=n, **kwargs)
    domain = GcsDomain(sim, topo.network)
    members = [Member(domain, topo.host(i), f"p{i}") for i in range(n)]
    return sim, topo, domain, members


def crash(topo, member, index):
    topo.network.node(topo.host(index)).crash()
    member.endpoint.crash()


def test_cascading_failures_until_one_remains():
    sim, topo, domain, members = build(5, seed=21)
    sim.run_until(3.0)
    for index in range(4):
        sim.run_until(3.0 + 5.0 * (index + 1))
        crash(topo, members[index], index)
    sim.run_until(30.0)
    survivor = members[4]
    assert survivor.members() == {survivor.process}
    survivor.handle.multicast("alone", 8)
    sim.run_until(31.0)
    assert "alone" in survivor.messages


def test_simultaneous_double_crash():
    sim, topo, domain, members = build(4, seed=22)
    sim.run_until(3.0)
    crash(topo, members[0], 0)
    crash(topo, members[1], 1)
    sim.run_until(8.0)
    expected = {members[2].process, members[3].process}
    assert members[2].members() == expected
    assert members[3].members() == expected


def test_coordinator_crash_during_flush():
    """Kill the coordinator right after a join triggers a flush."""
    sim, topo, domain, members = build(3, seed=23)
    sim.run_until(3.0)
    coordinator = members[0].handle.view.coordinator
    victim_index = next(
        i for i, m in enumerate(members) if m.process == coordinator
    )
    # A new joiner's request makes the coordinator propose...
    from tests.gcs.test_stress import Member as M  # self-import ok
    sim.call_at(3.01, lambda: crash(topo, members[victim_index], victim_index))
    sim.run_until(12.0)
    survivors = [m for i, m in enumerate(members) if i != victim_index]
    expected = {m.process for m in survivors}
    for m in survivors:
        assert m.members() == expected
    survivors[0].handle.multicast("post", 8)
    sim.run_until(13.0)
    assert "post" in survivors[1].messages


def test_flapping_link_converges_after_stabilizing():
    sim, topo, domain, members = build(3, seed=24)
    sim.run_until(3.0)
    switch = topo.infrastructure[0]
    flapped = topo.host(2)
    # Flap host2's uplink 6 times over 6 seconds.
    for i in range(6):
        sim.call_at(3.0 + i, topo.network.set_link_state, switch, flapped,
                    i % 2 == 1)
    sim.call_at(9.5, topo.network.set_link_state, switch, flapped, True)
    sim.run_until(25.0)
    everyone = {m.process for m in members}
    for m in members:
        assert m.members() == everyone
    members[2].handle.multicast("back", 8)
    sim.run_until(26.0)
    for m in members:
        assert "back" in m.messages


def test_churn_with_traffic_never_loses_messages_for_stable_members():
    """Members that stay up throughout heavy churn agree on the set of
    messages from stable senders."""
    sim, topo, domain, members = build(6, seed=25)
    sim.run_until(3.0)
    # Members 0 and 1 are stable; 2..5 crash one by one while 0 streams.
    for i in range(60):
        sim.call_at(3.0 + i * 0.2, members[0].handle.multicast, ("m", i), 8)
    for index in (2, 3, 4, 5):
        sim.call_at(4.0 + index, lambda i=index: crash(topo, members[i], i))
    sim.run_until(25.0)
    stable_0 = [p for p in members[0].messages if isinstance(p, tuple)]
    stable_1 = [p for p in members[1].messages if isinstance(p, tuple)]
    assert stable_0 == [("m", i) for i in range(60)]
    assert stable_1 == stable_0


def test_rapid_join_leave_cycles():
    """A third process joins and leaves repeatedly; the stable pair's
    view always converges back to exactly the live membership."""
    sim, topo, domain, members = build(3, seed=26)
    sim.run_until(2.0)
    cycler = members[2]
    for cycle in range(3):
        sim.run_until(2.0 + 4.0 * cycle + 2.0)
        cycler.endpoint.leave_group("g")
        sim.run_until(2.0 + 4.0 * cycle + 4.0)
        assert members[0].members() == {
            members[0].process, members[1].process
        }
        views = []
        handle = cycler.endpoint.join(
            "g", f"p2-cycle{cycle}", GroupListener(on_view=views.append)
        )
        sim.run_until(2.0 + 4.0 * (cycle + 1) + 1.0)
        assert len(members[0].members()) == 3
        assert views and len(views[-1].members) == 3
        cycler.handle = handle


def test_lossy_network_churn():
    lossy = LinkParams(delay_s=0.0005, loss_prob=0.05, bandwidth_bps=1e8)
    sim, topo, domain, members = build(4, seed=27, link=lossy)
    sim.run_until(4.0)
    crash(topo, members[3], 3)
    sim.run_until(10.0)
    for i in range(20):
        sim.call_at(10.0 + i * 0.05, members[1].handle.multicast, i, 8)
    sim.run_until(15.0)
    for m in members[:3]:
        ints = [p for p in m.messages if isinstance(p, int)]
        assert ints == list(range(20))
