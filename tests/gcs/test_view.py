"""Unit tests for process ids and views."""

from repro.gcs.view import ProcessId, View, ViewId


def pid(node, name="p"):
    return ProcessId(node, name)


def test_process_id_total_order():
    assert pid(1, "a") < pid(1, "b") < pid(2, "a")


def test_process_id_str():
    assert str(pid(3, "server0")) == "server0@3"


def test_view_id_ordering():
    a, b = pid(1), pid(2)
    assert ViewId(1, a) < ViewId(1, b) < ViewId(2, a)
    assert ViewId(2, a) <= ViewId(2, a)


def test_view_id_next_increments_counter():
    vid = ViewId(3, pid(1)).next(pid(2))
    assert vid.counter == 4
    assert vid.proposer == pid(2)


def test_view_members_sorted():
    view = View("g", ViewId(1, pid(2)), (pid(3), pid(1), pid(2)))
    assert view.members == (pid(1), pid(2), pid(3))


def test_view_coordinator_is_smallest_member():
    view = View("g", ViewId(1, pid(2)), (pid(3), pid(1)))
    assert view.coordinator == pid(1)


def test_view_contains_and_len():
    view = View("g", ViewId(1, pid(1)), (pid(1), pid(2)))
    assert pid(1) in view
    assert pid(9) not in view
    assert len(view) == 2


def test_joined_derived_from_prior():
    view = View(
        "g", ViewId(2, pid(1)), (pid(1), pid(2), pid(3)), prior=(pid(1), pid(2))
    )
    assert view.joined == (pid(3),)
    assert view.departed == ()


def test_departed_derived_from_prior():
    view = View("g", ViewId(2, pid(1)), (pid(1),), prior=(pid(1), pid(2)))
    assert view.departed == (pid(2),)
    assert view.joined == ()


def test_empty_prior_means_everyone_joined():
    view = View("g", ViewId(1, pid(1)), (pid(1), pid(2)))
    assert view.joined == (pid(1), pid(2))


def test_prior_is_sorted_too():
    view = View("g", ViewId(1, pid(1)), (pid(1),), prior=(pid(3), pid(2)))
    assert view.prior == (pid(2), pid(3))
