"""Wire-size sanity for every control message type.

The T-sync claim depends on these estimates; they must be positive,
bounded, and grow with their content.
"""

from repro.gcs.messages import (
    FlushOk,
    FlushVector,
    Heartbeat,
    JoinRequest,
    LeaveRequest,
    Multicast,
    Nack,
    OpenGroupSend,
    PointToPoint,
    PointToPointAck,
    Presence,
    Propose,
    Retransmission,
    ViewCommit,
)
from repro.gcs.view import ProcessId, ViewId

A = ProcessId(1, "a")
B = ProcessId(2, "b")
VID = ViewId(3, A)


def test_all_messages_have_positive_wire_size():
    messages = [
        Heartbeat(1, {"g": {A: 5}}),
        JoinRequest("g", A),
        LeaveRequest("g", A),
        Multicast("g", A, 1, "x", 100),
        Nack("g", A, 1, 5),
        Propose("g", VID, (A, B), prior=(A,)),
        FlushVector("g", VID, A, {A: 3}),
        FlushOk("g", VID, A),
        ViewCommit("g", VID, (A, B), {A: 3}, prior=(A,)),
        Presence("g", VID, (A, B), A),
        OpenGroupSend("g", A, "x", 64, 1),
        PointToPoint(A, B, 1, "x", 64),
        PointToPointAck(A, B, 1),
        Retransmission(Multicast("g", A, 1, "x", 100)),
    ]
    for message in messages:
        assert message.wire_bytes() > 0, message


def test_multicast_size_includes_payload():
    small = Multicast("g", A, 1, "x", 10)
    large = Multicast("g", A, 1, "x", 10_000)
    assert large.wire_bytes() - small.wire_bytes() == 9990


def test_heartbeat_grows_with_vector_entries():
    empty = Heartbeat(1, {})
    loaded = Heartbeat(1, {"g": {A: 1, B: 2}, "h": {A: 3}})
    assert loaded.wire_bytes() > empty.wire_bytes()


def test_commit_grows_with_membership():
    small = ViewCommit("g", VID, (A,), {})
    large = ViewCommit("g", VID, (A, B), {A: 1, B: 2}, prior=(A, B))
    assert large.wire_bytes() > small.wire_bytes()


def test_retransmission_slightly_larger_than_original():
    original = Multicast("g", A, 1, "x", 100)
    assert Retransmission(original).wire_bytes() > original.wire_bytes()


def test_control_messages_are_small():
    """Everything except data-bearing messages stays under ~100 bytes
    for typical group sizes — the control plane must stay negligible."""
    small_messages = [
        JoinRequest("g", A),
        LeaveRequest("g", A),
        Nack("g", A, 1, 5),
        FlushOk("g", VID, A),
        PointToPointAck(A, B, 1),
        Presence("g", VID, (A, B), A),
    ]
    for message in small_messages:
        assert message.wire_bytes() <= 100, message
