"""Unit tests for the heartbeat failure detector."""

from repro.gcs.failure_detector import FailureDetector
from repro.sim.core import Simulator


def make_fd(sim, timeout=0.5):
    suspects, trusts = [], []
    fd = FailureDetector(
        sim, timeout=timeout,
        on_suspect=lambda d: suspects.append((sim.now, d)),
        on_trust=lambda d: trusts.append((sim.now, d)),
    )
    return fd, suspects, trusts


def test_silent_peer_suspected_after_timeout():
    sim = Simulator()
    fd, suspects, _ = make_fd(sim)
    fd.watch(7)
    sim.run_until(1.0)
    fd.check()
    assert fd.is_suspected(7)
    assert suspects == [(1.0, 7)]


def test_heartbeats_prevent_suspicion():
    sim = Simulator()
    fd, suspects, _ = make_fd(sim)
    fd.watch(7)
    for t in (0.2, 0.4, 0.6, 0.8):
        sim.call_at(t, fd.heard_from, 7)
    sim.run_until(1.0)
    fd.check()
    assert not fd.is_suspected(7)
    assert suspects == []


def test_trust_restored_on_new_heartbeat():
    sim = Simulator()
    fd, suspects, trusts = make_fd(sim)
    fd.watch(7)
    sim.run_until(1.0)
    fd.check()
    fd.heard_from(7)
    assert not fd.is_suspected(7)
    assert trusts == [(1.0, 7)]


def test_grace_period_from_watch_time():
    sim = Simulator()
    fd, _, _ = make_fd(sim, timeout=0.5)
    sim.run_until(10.0)
    fd.watch(7)  # never heard from, but just started watching
    fd.check()
    assert not fd.is_suspected(7)


def test_unwatched_peer_reported_suspected():
    sim = Simulator()
    fd, _, _ = make_fd(sim)
    assert fd.is_suspected(99)  # unknown daemon: not trusted
    assert 99 not in fd.suspected()  # ...but not in the watched-suspect set


def test_unwatch_removes_peer():
    sim = Simulator()
    fd, suspects, _ = make_fd(sim)
    fd.watch(7)
    fd.unwatch(7)
    sim.run_until(5.0)
    fd.check()
    assert suspects == []
    assert fd.watched() == set()


def test_suspected_set():
    sim = Simulator()
    fd, _, _ = make_fd(sim)
    fd.watch(1)
    fd.watch(2)
    sim.run_until(1.0)
    fd.heard_from(2)
    fd.check()
    assert fd.suspected() == {1}


def test_no_duplicate_suspect_callbacks():
    sim = Simulator()
    fd, suspects, _ = make_fd(sim)
    fd.watch(7)
    sim.run_until(1.0)
    fd.check()
    fd.check()
    assert len(suspects) == 1


def test_heard_from_unwatched_is_ignored():
    sim = Simulator()
    fd, _, _ = make_fd(sim)
    fd.heard_from(42)  # must not implicitly watch
    assert fd.watched() == set()
