"""Tests for the agreed (totally ordered) multicast layer."""

from repro.gcs import GcsDomain
from repro.gcs.total_order import TotalOrderGroup
from repro.net.link import LinkParams
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


def make_group(n, seed=1, link=None):
    sim = Simulator(seed=seed)
    kwargs = {"link": link} if link is not None else {}
    topo = build_lan(sim, n_hosts=n, **kwargs)
    domain = GcsDomain(sim, topo.network)
    members = [
        TotalOrderGroup(
            domain.create_endpoint(topo.host(i)), "agreed", f"p{i}"
        )
        for i in range(n)
    ]
    return sim, topo, domain, members


def orders(members):
    return [[body for _s, body in m.delivered] for m in members]


def test_single_sender_order_preserved():
    sim, _t, _d, members = make_group(3)
    sim.run_until(2.0)
    for i in range(10):
        members[0].multicast(i)
    sim.run_until(4.0)
    for seq in orders(members):
        assert seq == list(range(10))


def test_concurrent_senders_identical_order_everywhere():
    sim, _t, _d, members = make_group(4)
    sim.run_until(2.0)
    # Interleave sends from all members at overlapping times.
    for i in range(12):
        sender = members[i % 4]
        sim.call_at(2.0 + 0.01 * i, sender.multicast, f"m{i}")
    sim.run_until(5.0)
    sequences = orders(members)
    assert all(len(seq) == 12 for seq in sequences)
    assert all(seq == sequences[0] for seq in sequences)


def test_total_order_under_loss():
    lossy = LinkParams(delay_s=0.0005, loss_prob=0.08, bandwidth_bps=1e8)
    sim, _t, _d, members = make_group(3, seed=9, link=lossy)
    sim.run_until(3.0)
    for i in range(30):
        sim.call_at(3.0 + 0.02 * i, members[i % 3].multicast, i)
    sim.run_until(10.0)
    sequences = orders(members)
    assert all(len(seq) == 30 for seq in sequences)
    assert all(seq == sequences[0] for seq in sequences)


def test_sequencer_crash_order_continues():
    sim, topo, _d, members = make_group(3, seed=4)
    sim.run_until(2.0)
    for i in range(5):
        members[1].multicast(("pre", i))
    sim.run_until(3.0)
    # Crash the sequencer (the view coordinator).
    coordinator = members[0].view.coordinator
    victim_index = next(
        i for i, m in enumerate(members) if m.process == coordinator
    )
    topo.network.node(topo.host(victim_index)).crash()
    members[victim_index].endpoint.crash()
    sim.run_until(6.0)
    survivors = [m for i, m in enumerate(members) if i != victim_index]
    for i in range(5):
        survivors[0].multicast(("post", i))
    sim.run_until(8.0)
    sequences = orders(survivors)
    assert sequences[0] == sequences[1]
    assert [b for b in sequences[0] if b[0] == "post"] == [
        ("post", i) for i in range(5)
    ]


def test_message_sent_during_view_change_survives():
    sim, topo, domain, members = make_group(3, seed=2)
    sim.run_until(2.0)
    # Crash a non-coordinator member and multicast during the change.
    coordinator = members[0].view.coordinator
    victim_index = next(
        i for i, m in enumerate(members) if m.process != coordinator
    )
    topo.network.node(topo.host(victim_index)).crash()
    members[victim_index].endpoint.crash()
    sender = next(
        m for i, m in enumerate(members)
        if i != victim_index
    )
    sim.call_at(2.2, sender.multicast, "mid-change")
    sim.run_until(6.0)
    survivors = [m for i, m in enumerate(members) if i != victim_index]
    for m in survivors:
        assert "mid-change" in [b for _s, b in m.delivered]


def test_delivery_includes_sender_identity():
    sim, _t, _d, members = make_group(2)
    seen = []
    members[1].on_deliver = lambda sender, body: seen.append((sender, body))
    sim.run_until(2.0)
    members[0].multicast("hello")
    sim.run_until(3.0)
    assert seen == [(members[0].process, "hello")]


def test_no_duplicates_in_agreed_stream():
    sim, _t, _d, members = make_group(3, seed=7)
    sim.run_until(2.0)
    for i in range(20):
        members[i % 3].multicast(i)
    sim.run_until(5.0)
    for seq in orders(members):
        assert len(seq) == len(set(seq)) == 20
