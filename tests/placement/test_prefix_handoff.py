"""Prefix placement: edge admission and the mid-stream handoff."""

from repro.faulting.invariants import InvariantChecker
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_world(prefix_s=8.0, movie_s=40.0, seed=11):
    """One core server with the full movie, one edge with a prefix.

    A decoy viewer is parked on the core first, so least-loaded
    admission sends the viewer under test to the edge cache."""
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=4)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, replicate_all=False)
    deployment.add_server(0, name="core")
    deployment.add_server(1, name="edge")
    deployment.server("core").add_movie("feature")
    deployment.server("edge").add_movie("feature", prefix_s=prefix_s)
    decoy = deployment.attach_client(2)
    client = deployment.attach_client(3)
    decoy.request_movie("feature")
    sim.call_at(1.0, lambda: client.request_movie("feature"))
    return sim, deployment, decoy, client


class TestHandoff:
    def test_session_hands_off_before_the_prefix_runs_out(self):
        sim, deployment, decoy, client = make_world()
        events, subscription = sim.telemetry.collect(prefixes=("placement.",))
        checker = InvariantChecker(deployment).install()
        sim.run_until(5.0)
        assert client.process in deployment.server("edge").sessions
        sim.run_until(30.0)
        checker.stop()
        subscription.close()
        handoffs = [
            event for event in events
            if event.kind == "placement.prefix.handoff"
        ]
        assert len(handoffs) == 1
        assert handoffs[0].fields["server"] == "edge"
        assert handoffs[0].fields["to_server"] == "core"
        # The viewer noticed nothing: playback ran through the boundary
        # and the edge is out of the loop.
        assert checker.violations == []
        assert client.decoder.stats.stall_events == 0
        assert client.displayed_total > 25 * 30
        assert client.process in deployment.server("core").sessions
        assert deployment.server("edge").sessions == {}

    def test_handoff_span_closes_into_latency_histogram(self):
        sim, deployment, decoy, client = make_world()
        events, subscription = sim.telemetry.collect(prefixes=("span.",))
        sim.run_until(30.0)
        subscription.close()
        ends = [
            event for event in events
            if event.kind == "span.end"
            and event.fields.get("span") == "placement.handoff"
        ]
        assert len(ends) == 1
        histogram = sim.telemetry.metrics.histogram(
            "placement.handoff.latency_s"
        )
        assert histogram.count == 1

    def test_no_eligible_successor_keeps_streaming(self):
        """With no full-copy member alive the edge keeps serving past
        its stored prefix rather than orphaning the viewer."""
        sim, deployment, decoy, client = make_world()
        sim.call_at(3.0, lambda: deployment.server("core").crash())
        sim.run_until(20.0)
        assert client.process in deployment.server("edge").sessions
        assert client.displayed_total > 13 * 30
