"""The pluggable strategies: determinism, floors and domain diversity."""

import pytest

from repro.errors import ServiceError
from repro.placement import (
    MarkovAvailability,
    PlacementContext,
    PrefixPlacement,
    ServerProfile,
    StaticKWay,
    StaticPlacement,
    make_strategy,
    surviving_availability,
)
from repro.placement.plan import build_zipf_catalog


def make_ctx(n_titles=12, n_servers=6, k=2, edge_rack=None, fail_rates=None):
    catalog = build_zipf_catalog(n_titles, duration_s=30.0)
    servers = []
    for i in range(n_servers):
        domain = f"rack{i // 2}"
        servers.append(
            ServerProfile(
                name=f"server{i}",
                domain=domain,
                fail_rate=(fail_rates or {}).get(domain, 0.01),
                repair_rate=1.0,
                edge=(domain == edge_rack),
            )
        )
    return PlacementContext(catalog=catalog, servers=servers, k=k)


class TestStaticKWay:
    def test_every_title_gets_exactly_k(self):
        ctx = make_ctx()
        plan = StaticKWay().build(ctx)
        assert all(plan.replication_degree(t) == 2 for t in plan.titles())

    def test_k_equals_n_is_full_replication(self):
        ctx = make_ctx(n_servers=3, k=3)
        plan = StaticKWay(k=3).build(ctx)
        for title in plan.titles():
            assert plan.replicas(title) == ["server0", "server1", "server2"]

    def test_deterministic(self):
        ctx = make_ctx()
        assert StaticKWay().build(ctx).entries == StaticKWay().build(ctx).entries

    def test_rejects_k_above_pool(self):
        ctx = make_ctx(n_servers=2)
        with pytest.raises(ServiceError):
            StaticKWay(k=3).build(ctx)


class TestStaticPlacement:
    def test_from_server_movies_round_trip(self):
        static = StaticPlacement.from_server_movies(
            {"server0": ["title0001"], "server1": ["title0001", "title0002"]}
        )
        plan = static.as_plan()
        assert plan.replicas("title0001") == ["server0", "server1"]
        assert plan.replicas("title0002") == ["server1"]

    def test_build_rejects_unknown_names(self):
        ctx = make_ctx(n_titles=2)
        bad = StaticPlacement(assignments={"nope": ["server0"]})
        with pytest.raises(ServiceError):
            bad.build(ctx)


class TestPopularityProportional:
    def test_head_gets_more_copies_than_tail(self):
        ctx = make_ctx()
        strategy = make_strategy("popularity")
        counts = strategy.replica_counts(ctx)
        titles = ctx.titles
        assert counts[titles[0]] > counts[titles[-1]]
        assert counts[titles[-1]] >= ctx.k

    def test_build_matches_counts_when_capacity_allows(self):
        ctx = make_ctx()
        strategy = make_strategy("popularity")
        plan = strategy.build(ctx)
        counts = strategy.replica_counts(ctx)
        for title in ctx.titles:
            assert plan.replication_degree(title) == counts[title]

    def test_max_k_below_floor_rejected(self):
        ctx = make_ctx(k=3)
        with pytest.raises(ServiceError):
            make_strategy("popularity", max_k=2).build(ctx)


class TestMarkovAvailability:
    def test_never_concentrates_a_title_in_one_domain(self):
        ctx = make_ctx(fail_rates={"rack0": 0.04, "rack1": 0.02, "rack2": 0.01})
        plan = MarkovAvailability().build(ctx)
        domains = {p.name: p.domain for p in ctx.servers}
        for title in plan.titles():
            replicas = plan.replicas(title)
            assert len({domains[r] for r in replicas}) >= min(2, len(replicas))

    def test_beats_static_under_a_rack_crash(self):
        ctx = make_ctx(fail_rates={"rack0": 0.04, "rack1": 0.02, "rack2": 0.01})
        static = StaticKWay().build(ctx)
        markov = MarkovAvailability().build(ctx)
        down = ["server0", "server1"]
        assert surviving_availability(markov, ctx, down) > surviving_availability(
            static, ctx, down
        )

    def test_hot_titles_meet_tighter_budgets(self):
        ctx = make_ctx()
        strategy = MarkovAvailability(target=0.999)
        hot = strategy.required_unavailability(ctx, ctx.titles[0])
        cold = strategy.required_unavailability(ctx, ctx.titles[-1])
        assert hot < cold


class TestPrefixPlacement:
    def test_edges_hold_prefixes_cores_hold_full(self):
        ctx = make_ctx(edge_rack="rack2")
        plan = PrefixPlacement(prefix_s=10.0).build(ctx)
        for title in plan.titles():
            full = plan.replicas(title)
            assert full and all(s in {"server0", "server1", "server2", "server3"}
                                for s in full)
            assert plan.prefix_holders(title) == {
                "server4": 10.0, "server5": 10.0,
            }

    def test_needs_a_core(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        all_edge = [ServerProfile(name="e0", edge=True)]
        ctx = PlacementContext(catalog=catalog, servers=all_edge, k=1)
        with pytest.raises(ServiceError):
            PrefixPlacement().build(ctx)


class TestFactory:
    def test_unknown_name(self):
        with pytest.raises(ServiceError):
            make_strategy("quantum")

    def test_all_registered_names_build(self):
        ctx = make_ctx(edge_rack="rack2")
        for name in ("static", "popularity", "markov", "prefix"):
            plan = make_strategy(name).build(ctx)
            assert plan.min_replication() >= 1
