"""Property-based guarantees of the placement subsystem (Hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faulting.invariants import InvariantChecker
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.placement import (
    PlacementContext,
    Rebalancer,
    ServerProfile,
    make_strategy,
)
from repro.placement.plan import build_zipf_catalog
from repro.service.deployment import Deployment
from repro.sim.core import Simulator

STRATEGY_NAMES = ("static", "popularity", "markov", "prefix")


def make_ctx(n_titles, n_servers, k, alpha):
    catalog = build_zipf_catalog(n_titles, duration_s=10.0)
    servers = [
        ServerProfile(
            name=f"server{i}",
            domain=f"rack{i // 2}",
            fail_rate=0.01 * (1 + i % 3),
            repair_rate=1.0,
            # prefix needs a core: mark at most the last server edge.
            edge=(i == n_servers - 1 and n_servers >= 3),
        )
        for i in range(n_servers)
    ]
    return PlacementContext(
        catalog=catalog, servers=servers, k=k, alpha=alpha
    )


@settings(max_examples=40, deadline=None)
@given(
    strategy=st.sampled_from(STRATEGY_NAMES),
    n_titles=st.integers(min_value=1, max_value=20),
    n_servers=st.integers(min_value=3, max_value=8),
    k=st.integers(min_value=1, max_value=3),
    alpha=st.floats(min_value=0.0, max_value=1.5),
)
def test_every_strategy_meets_the_k_floor(
    strategy, n_titles, n_servers, k, alpha
):
    """With unbounded capacity every title gets >= k full replicas
    (``prefix`` is floored by its core size)."""
    ctx = make_ctx(n_titles, n_servers, k, alpha)
    plan = make_strategy(strategy).build(ctx)
    floor = k
    if strategy == "prefix":
        floor = min(k, sum(1 for p in ctx.servers if not p.edge))
    for title in ctx.titles:
        assert plan.replication_degree(title) >= floor
    plan.validate(ctx.catalog)  # every title streams from somewhere


@settings(max_examples=40, deadline=None)
@given(
    n_titles=st.integers(min_value=2, max_value=40),
    n_servers=st.integers(min_value=2, max_value=10),
    k=st.integers(min_value=1, max_value=4),
    alpha=st.floats(min_value=0.0, max_value=2.0),
)
def test_popularity_counts_are_monotone_in_rank(
    n_titles, n_servers, k, alpha
):
    k = min(k, n_servers)
    ctx = make_ctx(n_titles, n_servers, k, alpha)
    counts = make_strategy("popularity").replica_counts(ctx)
    values = [counts[title] for title in ctx.titles]  # rank order
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert all(value >= k for value in values)


@settings(max_examples=8, deadline=None)
@given(
    crash_target=st.booleans(),
    crash_delay=st.floats(min_value=0.2, max_value=4.5),
)
def test_mid_migration_crash_never_violates_invariants(
    crash_target, crash_delay
):
    """Crashing either endpoint mid-migration (copy started, drop not
    yet executed) leaves the title served and the invariant checker
    silent: a migration can lose the *copy*, never the *title*."""
    sim = Simulator(seed=7)
    topology = build_lan(sim, n_hosts=4)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=40.0)])
    deployment = Deployment(
        topology, catalog, replicate_all=False,
    )
    deployment.add_server(0, name="source")
    deployment.add_server(1, name="spare")
    deployment.add_server(2, name="target")
    # Source and spare both hold the feature; target starts empty.
    deployment.server("source").add_movie("feature")
    deployment.server("spare").add_movie("feature")
    checker = InvariantChecker(deployment).install()
    client = deployment.attach_client(3)
    client.request_movie("feature")

    rebalancer = Rebalancer(deployment)  # settle = 6 * sync = 3 s
    sim.call_at(
        6.0, lambda: rebalancer.migrate("feature", "source", "target")
    )
    victim = "target" if crash_target else "source"
    sim.call_at(6.0 + crash_delay, lambda: deployment.server(victim).crash())
    sim.run_until(22.0)
    checker.stop()

    assert checker.violations == []
    live = {server.name for server in deployment.live_servers()}
    assert catalog.full_replicas("feature") & live
    assert len(rebalancer.completed) + len(rebalancer.aborted) == 1
    assert client.displayed_total > 15 * 30  # playback survived
