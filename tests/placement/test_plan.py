"""PlacementPlan: the derived replica map and its analytic metrics."""

import pytest

from repro.errors import ServiceError
from repro.placement import (
    PlacementContext,
    PlacementPlan,
    ServerProfile,
    plan_availability,
    surviving_availability,
    title_availability,
)
from repro.placement.plan import build_zipf_catalog


def profiles(n=4, **kwargs):
    return [
        ServerProfile(name=f"server{i}", domain=f"rack{i // 2}", **kwargs)
        for i in range(n)
    ]


class TestPlanBasics:
    def test_place_and_replicas(self):
        plan = PlacementPlan()
        plan.place("a", "server1")
        plan.place("a", "server0")
        plan.place("a", "server2", prefix_s=30.0)
        assert plan.replicas("a") == ["server0", "server1"]
        assert plan.prefix_holders("a") == {"server2": 30.0}
        assert plan.replication_degree("a") == 2  # full copies only

    def test_prefix_upgrade_to_full(self):
        plan = PlacementPlan()
        plan.place("a", "server0", prefix_s=30.0)
        plan.place("a", "server0")  # upgrade
        assert plan.replicas("a") == ["server0"]
        assert plan.prefix_holders("a") == {}

    def test_movies_for_unknown_server_is_none(self):
        plan = PlacementPlan()
        plan.place("a", "server0")
        assert plan.movies_for("server0") == [("a", None)]
        assert plan.movies_for("stranger") is None

    def test_validate_requires_a_full_replica(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        plan = PlacementPlan()
        plan.place("title0001", "server0")
        plan.place("title0002", "server1", prefix_s=5.0)  # prefix only
        with pytest.raises(ServiceError):
            plan.validate(catalog)

    def test_apply_writes_the_catalog(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        plan = PlacementPlan()
        plan.place("title0001", "server0")
        plan.place("title0002", "server0")
        plan.place("title0002", "server1", prefix_s=4.0)
        plan.validate(catalog)
        plan.apply(catalog)
        assert catalog.full_replicas("title0002") == {"server0"}
        assert catalog.prefix_of("title0002", "server1") == 4.0

    def test_storage_copies(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        plan = PlacementPlan()
        for title in catalog.titles():
            plan.place(title, "server0")
            plan.place(title, "server1")
        assert plan.storage_copies(catalog) == pytest.approx(2.0)

    def test_prefix_counts_fractionally_toward_storage(self):
        catalog = build_zipf_catalog(1, duration_s=100.0)
        plan = PlacementPlan()
        plan.place("title0001", "server0")
        plan.place("title0001", "server1", prefix_s=50.0)
        assert plan.storage_copies(catalog) == pytest.approx(1.5)


class TestAvailability:
    def test_title_availability_is_one_minus_product(self):
        plan = PlacementPlan()
        plan.place("a", "server0")
        plan.place("a", "server1")
        pool = {
            p.name: p
            for p in profiles(2, fail_rate=1.0, repair_rate=1.0)  # a = 0.5
        }
        assert title_availability(plan, "a", pool) == pytest.approx(0.75)

    def test_plan_availability_weights_by_popularity(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        servers = profiles(2, fail_rate=1.0, repair_rate=1.0)
        ctx = PlacementContext(catalog=catalog, servers=servers, k=1)
        plan = PlacementPlan()
        plan.place("title0001", "server0")
        plan.place("title0001", "server1")  # hot title: a = 0.75
        plan.place("title0002", "server0")  # cold title: a = 0.5
        shares = ctx.shares()
        expected = shares["title0001"] * 0.75 + shares["title0002"] * 0.5
        assert plan_availability(plan, ctx) == pytest.approx(expected)

    def test_surviving_availability_under_correlated_crash(self):
        catalog = build_zipf_catalog(2, duration_s=10.0)
        servers = profiles(4)
        ctx = PlacementContext(catalog=catalog, servers=servers, k=2)
        plan = PlacementPlan()
        plan.place("title0001", "server0")
        plan.place("title0001", "server1")  # both replicas in rack0
        plan.place("title0002", "server0")
        plan.place("title0002", "server2")  # spread across racks
        shares = ctx.shares()
        survived = surviving_availability(plan, ctx, ["server0", "server1"])
        assert survived == pytest.approx(shares["title0002"])
        assert surviving_availability(plan, ctx, []) == pytest.approx(1.0)


class TestContext:
    def test_rejects_duplicate_servers(self):
        catalog = build_zipf_catalog(1, duration_s=10.0)
        twin = [ServerProfile(name="s"), ServerProfile(name="s")]
        with pytest.raises(ServiceError):
            PlacementContext(catalog=catalog, servers=twin)

    def test_shares_sum_to_one_and_decrease_with_rank(self):
        catalog = build_zipf_catalog(5, duration_s=10.0)
        ctx = PlacementContext(catalog=catalog, servers=profiles(2), k=1)
        shares = ctx.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        values = [shares[t] for t in catalog.titles()]
        assert values == sorted(values, reverse=True)
