"""Online rebalancer: copy-then-drop migrations over the live service."""

import pytest

from repro.errors import ServiceError
from repro.faulting.invariants import InvariantChecker
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.placement import Rebalancer
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_world(n_servers=3, n_clients=1, movie_s=60.0, seed=11):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_clients + 1)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, replicate_all=False)
    for i in range(n_servers):
        deployment.add_server(i, name=f"server{i}")
    # server0 and server1 hold the feature; server2 starts empty.
    deployment.server("server0").add_movie("feature")
    deployment.server("server1").add_movie("feature")
    clients = [
        deployment.attach_client(n_servers + i) for i in range(n_clients)
    ]
    for client in clients:
        client.request_movie("feature")
    return sim, deployment, clients


class TestMigrate:
    def test_live_migration_completes_without_violations(self):
        sim, deployment, (client,) = make_world()
        checker = InvariantChecker(deployment).install()
        rebalancer = Rebalancer(deployment)
        sim.call_at(
            8.0, lambda: rebalancer.migrate("feature", "server0", "server2")
        )
        sim.run_until(25.0)
        checker.stop()
        assert rebalancer.completed == [("feature", "server0", "server2")]
        assert rebalancer.aborted == []
        assert checker.violations == []
        catalog = deployment.catalog
        assert catalog.full_replicas("feature") == {"server1", "server2"}
        assert "feature" not in deployment.server("server0").movie_states
        assert client.displayed_total > 20 * 30

    def test_migration_emits_placement_spans(self):
        sim, deployment, _ = make_world()
        events, subscription = sim.telemetry.collect(
            prefixes=("placement.", "span.")
        )
        rebalancer = Rebalancer(deployment)
        sim.call_at(
            8.0, lambda: rebalancer.migrate("feature", "server0", "server2")
        )
        sim.run_until(15.0)
        subscription.close()
        kinds = [event.kind for event in events]
        assert "placement.migration.start" in kinds
        assert "placement.migration.complete" in kinds
        spans = [
            event
            for event in events
            if event.kind == "span.end"
            and event.fields.get("span") == "placement.migrate"
        ]
        assert len(spans) == 1
        assert spans[0].fields["outcome"] == "completed"
        histogram = sim.telemetry.metrics.histogram(
            "placement.migrate.latency_s"
        )
        assert histogram.count == 1

    def test_target_crash_aborts_and_source_keeps_replica(self):
        sim, deployment, _ = make_world()
        checker = InvariantChecker(deployment).install()
        rebalancer = Rebalancer(deployment)
        sim.call_at(
            8.0, lambda: rebalancer.migrate("feature", "server0", "server2")
        )
        sim.call_at(9.0, lambda: deployment.server("server2").crash())
        sim.run_until(20.0)
        checker.stop()
        assert rebalancer.aborted == [("feature", "server0", "server2")]
        assert rebalancer.completed == []
        assert checker.violations == []
        assert "feature" in deployment.server("server0").movie_states

    def test_rejects_bad_endpoints(self):
        sim, deployment, _ = make_world()
        sim.run_until(2.0)
        rebalancer = Rebalancer(deployment)
        with pytest.raises(ServiceError):
            rebalancer.migrate("feature", "server2", "server0")  # no replica
        deployment.server("server2").crash()
        with pytest.raises(ServiceError):
            rebalancer.migrate("feature", "server0", "server2")  # dead target


class TestHeal:
    def test_heal_restores_the_floor_after_a_crash(self):
        sim, deployment, _ = make_world()
        rebalancer = Rebalancer(deployment)
        sim.call_at(8.0, lambda: deployment.server("server1").crash())
        sim.run_until(10.0)
        additions = rebalancer.heal(k=2)
        sim.run_until(16.0)
        assert additions == [("feature", "server2")]
        live = {server.name for server in deployment.live_servers()}
        assert deployment.catalog.full_replicas("feature") & live == {
            "server0", "server2",
        }

    def test_heal_is_idempotent(self):
        sim, deployment, _ = make_world()
        sim.run_until(5.0)
        rebalancer = Rebalancer(deployment)
        assert rebalancer.heal(k=2) == []


class TestApplyPlan:
    def test_apply_plan_converges_the_replica_map(self):
        from repro.placement import PlacementPlan

        sim, deployment, _ = make_world()
        sim.run_until(3.0)
        desired = PlacementPlan(k=2)
        desired.place("feature", "server1")
        desired.place("feature", "server2")
        rebalancer = Rebalancer(deployment)
        stats = rebalancer.apply_plan(desired)
        sim.run_until(12.0)
        assert stats["migrations"] == 1
        assert deployment.catalog.full_replicas("feature") == {
            "server1", "server2",
        }
