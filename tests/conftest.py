"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def lan(sim):
    """A 6-host switched Ethernet."""
    return build_lan(sim, n_hosts=6)


@pytest.fixture(scope="session")
def short_movie() -> Movie:
    """A 30-second movie shared (read-only) across tests."""
    return Movie.synthetic("short", duration_s=30.0)
