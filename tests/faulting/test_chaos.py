"""Seeded chaos trials: random recoverable plans, zero violations."""

from repro.faulting.chaos import chaos_table, run_chaos_trial


def test_chaos_trial_holds_invariants():
    result = run_chaos_trial(seed=1000, duration_s=60.0)
    assert result.violations == [], "\n".join(str(v) for v in result.violations)
    assert result.ok
    assert result.displayed > 0
    assert result.samples > 100
    assert result.fired, "the plan must actually fire actions"


def test_chaos_trial_is_deterministic():
    a = run_chaos_trial(seed=1003, duration_s=60.0)
    b = run_chaos_trial(seed=1003, duration_s=60.0)
    assert a.plan == b.plan
    assert a.fired == b.fired
    assert a.displayed == b.displayed
    assert a.skipped == b.skipped
    assert a.stall_time_s == b.stall_time_s


def test_chaos_table_renders():
    results = [run_chaos_trial(seed=1001, duration_s=60.0)]
    text = chaos_table(results).render()
    assert "1001" in text
    assert "violations" in text
