"""The FaultPlan DSL: construction, validation, seeded generation."""

import pytest

from repro.errors import FaultError
from repro.faulting.plan import (
    CrashServing,
    FaultPlan,
    HealHost,
    IsolateHost,
    Partition,
    ServerUp,
)
from repro.net.link import LinkFault


class TestBuilder:
    def test_builder_orders_and_describes(self):
        plan = (
            FaultPlan(name="figure5")
            .crash_serving(at=47.0)
            .server_up(at=25.0, host=3)
        )
        assert len(plan) == 2
        ordered = plan.sorted_actions()
        assert isinstance(ordered[0], ServerUp) and ordered[0].at == 25.0
        assert isinstance(ordered[1], CrashServing) and ordered[1].at == 47.0
        assert plan.horizon == 47.0
        assert any("crash" in line for line in plan.describe())

    def test_builder_is_persistent(self):
        base = FaultPlan(name="base")
        extended = base.crash_serving(at=10.0)
        assert len(base) == 0
        assert len(extended) == 1

    def test_empty_plan_horizon_zero(self):
        assert FaultPlan().horizon == 0.0

    def test_full_dsl_surface(self):
        fault = LinkFault(drop_prob=0.1)
        plan = (
            FaultPlan(name="everything")
            .crash(1.0, "server0")
            .stop(2.0, "server1")
            .restart(3.0, "server0")
            .partition(4.0, [0, 1], [2, 3])
            .isolate(5.0, 2)
            .heal_host(6.0, 2)
            .heal_all(7.0)
            .impair_link(8.0, 0, 1, fault)
            .impair_host(9.0, 0, fault)
            .clear_impairments(10.0)
            .false_suspicion(11.0, 1, mute_for_s=0.4)
        )
        plan.validate()
        assert len(plan) == 11
        assert plan.horizon == 11.0


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().crash_serving(at=-1.0)

    def test_crash_needs_server_name(self):
        with pytest.raises(FaultError):
            FaultPlan().crash(5.0, "")

    def test_partition_needs_two_sides(self):
        with pytest.raises(FaultError):
            FaultPlan().partition(5.0, [], [1])

    def test_partition_sides_must_not_overlap(self):
        with pytest.raises(FaultError):
            FaultPlan().partition(5.0, [0, 1], [1, 2])

    def test_negative_mute_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().false_suspicion(5.0, 0, mute_for_s=-0.1)

    def test_bad_link_fault_rejected(self):
        with pytest.raises(Exception):
            FaultPlan().impair_host(5.0, 0, LinkFault(drop_prob=1.5))


class TestFromSchedule:
    def test_legacy_tuples_translate(self):
        plan = FaultPlan.from_schedule(
            ((38.0, "crash-serving"), (62.0, "server-up"))
        )
        assert len(plan) == 2
        assert isinstance(plan.sorted_actions()[0], CrashServing)
        assert isinstance(plan.sorted_actions()[1], ServerUp)

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_schedule(((1.0, "explode"),))


class TestRandomPlans:
    ARGS = dict(duration_s=120.0, server_hosts=[0, 1, 2], client_host=3)

    def test_same_seed_identical_plan(self):
        a = FaultPlan.random(seed=7, **self.ARGS)
        b = FaultPlan.random(seed=7, **self.ARGS)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan.random(seed=7, **self.ARGS)
        b = FaultPlan.random(seed=8, **self.ARGS)
        assert a != b

    def test_respects_settle_window(self):
        for seed in range(5):
            plan = FaultPlan.random(seed=seed, settle_s=20.0, **self.ARGS)
            assert plan.horizon <= 120.0 - 20.0
            assert all(action.at >= 20.0 for action in plan.actions)

    def test_isolations_always_heal(self):
        for seed in range(10):
            plan = FaultPlan.random(seed=seed, **self.ARGS)
            isolations = [
                a for a in plan.sorted_actions() if isinstance(a, IsolateHost)
            ]
            heals = [
                a for a in plan.sorted_actions() if isinstance(a, HealHost)
            ]
            assert len(isolations) == len(heals)
            for down, up in zip(isolations, heals):
                assert down.host == up.host
                assert up.at > down.at

    def test_too_short_duration_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.random(
                seed=1, duration_s=30.0, server_hosts=[0], client_host=1
            )
