"""Invariant violations reach the telemetry bus (and only when active).

The flight recorder treats ``invariant.violation`` as an incident
trigger, so the checker's ``_violation`` hook must emit onto the bus —
but only when someone is listening (the inactive-bus fast path costs
one attribute check, like every other instrumented site).
"""

from types import SimpleNamespace

from repro.faulting.invariants import InvariantChecker
from repro.telemetry.bus import Telemetry


def _checker():
    sim = SimpleNamespace(now=7.5)
    sim.telemetry = Telemetry(clock=lambda: sim.now)
    deployment = SimpleNamespace(
        sim=sim,
        network=None,
        server_config=SimpleNamespace(default_rate_fps=30.0),
    )
    return InvariantChecker(deployment)


def test_violation_emits_when_bus_is_active():
    checker = _checker()
    seen = []
    checker.sim.telemetry.subscribe(
        lambda e: seen.append(e), prefixes=("invariant.",)
    )
    checker._violation("exactly-one-adoption", "client3", "orphaned 9s")
    assert len(checker.violations) == 1
    assert len(seen) == 1
    event = seen[0]
    assert event.kind == "invariant.violation"
    assert event.time == 7.5
    assert event.fields == {
        "rule": "exactly-one-adoption",
        "client": "client3",
        "detail": "orphaned 9s",
    }


def test_violation_is_silent_on_inactive_bus():
    checker = _checker()
    assert not checker.sim.telemetry.active
    checker._violation("offset-continuity", None, "regressed")
    assert len(checker.violations) == 1  # recorded either way
