"""FaultInjector: plans fire against a live deployment, targets resolve
at fire time, host-slot bookkeeping follows the vacancy-refill policy."""

import pytest

from repro.faulting.injector import FaultInjector
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_service(k=2, seed=17, movie_s=60.0):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=k + 2)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, server_nodes=list(range(k)))
    client = deployment.attach_client(k)
    client.request_movie("m")
    return sim, deployment, client


def test_crash_serving_resolves_victim_at_fire_time():
    sim, deployment, client = make_service()
    plan = FaultPlan().crash_serving(at=15.0)
    injector = FaultInjector(deployment, plan, client=client).start()
    sim.run_until(25.0)
    assert injector.crash_times == [15.0]
    assert len(deployment.live_servers()) == 1
    assert any("crashed" in note for _t, note in injector.fired)
    # The survivor adopted the client.
    assert any(
        client.process in server.sessions
        for server in deployment.live_servers()
    )


def test_server_up_refills_vacated_host_by_default():
    sim, deployment, client = make_service()
    plan = FaultPlan().crash_serving(at=15.0).server_up(at=25.0)
    injector = FaultInjector(deployment, plan, client=client).start()

    sim.run_until(20.0)
    crashed = [s for s in deployment.servers.values() if not s.running]
    assert len(crashed) == 1
    vacated = deployment.topology.hosts.index(crashed[0].node_id)

    sim.run_until(30.0)
    assert injector.server_up_times == [25.0]
    newest = [
        s
        for s in deployment.live_servers()
        if s.node_id == deployment.topology.host(vacated)
    ]
    assert newest, "replacement server should reuse the vacated host"


def test_server_up_explicit_host_claims_fresh_slot():
    sim, deployment, client = make_service()
    plan = FaultPlan().crash_serving(at=15.0).server_up(at=25.0, host=3)
    FaultInjector(deployment, plan, client=client).start()
    sim.run_until(30.0)
    nodes = {s.node_id for s in deployment.live_servers()}
    assert deployment.topology.host(3) in nodes


def test_isolate_and_heal_change_reachability():
    sim, deployment, client = make_service()
    plan = FaultPlan().isolate(10.0, 0).heal_host(12.0, 0)
    FaultInjector(deployment, plan, client=client).start()
    network = deployment.network
    host0 = deployment.topology.host(0)
    host1 = deployment.topology.host(1)
    sim.run_until(11.0)
    assert not network.reachable(host0, host1)
    sim.run_until(13.0)
    assert network.reachable(host0, host1)


def test_partition_and_heal_all():
    """Partition cuts the direct links crossing between the two sides
    (here: a two-host point-to-point topology); HealAll restores them."""
    from types import SimpleNamespace

    from repro.net.link import LinkParams
    from repro.net.network import Network
    from repro.net.topologies import Topology

    sim = Simulator(seed=3)
    network = Network(sim)
    a = network.add_node("a").node_id
    b = network.add_node("b").node_id
    network.add_link(a, b, LinkParams(delay_s=0.001, bandwidth_bps=1e8))
    topology = Topology(network=network, hosts=[a, b])
    deployment = SimpleNamespace(sim=sim, topology=topology, network=network)

    plan = FaultPlan().partition(10.0, [0], [1]).heal_all(12.0)
    FaultInjector(deployment, plan).start()
    sim.run_until(11.0)
    assert not network.reachable(a, b)
    sim.run_until(13.0)
    assert network.reachable(a, b)


def test_start_is_idempotent():
    sim, deployment, client = make_service()
    plan = FaultPlan().crash_serving(at=15.0)
    injector = FaultInjector(deployment, plan, client=client)
    injector.start()
    injector.start()
    sim.run_until(20.0)
    assert len(injector.fired) == 1


def test_every_action_is_logged():
    sim, deployment, client = make_service()
    plan = (
        FaultPlan()
        .false_suspicion(10.0, 0)
        .crash_serving(at=15.0)
        .server_up(at=25.0)
    )
    injector = FaultInjector(deployment, plan, client=client).start()
    sim.run_until(30.0)
    assert len(injector.fired) == len(plan)
    times = [t for t, _note in injector.fired]
    assert times == sorted(times)


def test_crash_named_server_and_restart():
    sim, deployment, client = make_service()
    name = next(iter(deployment.servers))
    plan = FaultPlan().crash(15.0, name).restart(25.0, name)
    injector = FaultInjector(deployment, plan, client=client).start()
    sim.run_until(30.0)
    assert injector.crash_times == [15.0]
    assert injector.server_up_times == [25.0]
    old_node = deployment.server(name).node_id
    assert any(
        s.node_id == old_node and s.running
        for s in deployment.servers.values()
    )
