"""FaultPlan-driven scenarios reproduce the paper's measurement runs.

The acceptance bar: driving the Figure-5 crash/takeover scenario through
an explicit :class:`FaultPlan` is byte-for-byte deterministic and
identical to the legacy ``(time, action)`` schedule path.
"""

import dataclasses

from repro.experiments.scenarios import (
    WAN_SCENARIO,
    plan_for_spec,
    run_scenario,
)
from repro.faulting.plan import CrashServing, FaultPlan, ServerUp


def short_wan(**overrides):
    return dataclasses.replace(
        WAN_SCENARIO,
        movie_duration_s=45.0,
        run_duration_s=45.0,
        schedule=((10.0, "server-up"), (20.0, "crash-serving")),
        **overrides,
    )


def figure5_plan():
    """The Figure-5 fault sequence, written in the DSL directly."""
    return (
        FaultPlan(name="wan", seed=WAN_SCENARIO.seed)
        .server_up(at=10.0, host=2)
        .crash_serving(at=20.0)
    )


def test_plan_for_spec_translates_schedule():
    plan = plan_for_spec(short_wan())
    kinds = [type(a) for a in plan.sorted_actions()]
    assert kinds == [ServerUp, CrashServing]
    # Legacy semantics: new servers claim fresh host slots explicitly.
    assert plan.sorted_actions()[0].host == WAN_SCENARIO.n_initial_servers


def test_explicit_plan_overrides_schedule():
    spec = short_wan(plan=figure5_plan())
    assert plan_for_spec(spec) is spec.plan


def test_figure5_plan_byte_for_byte_deterministic():
    spec = short_wan(plan=figure5_plan())
    a = run_scenario(spec).export_dict()
    b = run_scenario(spec).export_dict()
    assert a == b


def test_figure5_plan_matches_legacy_schedule_path():
    via_schedule = run_scenario(short_wan())
    via_plan = run_scenario(short_wan(plan=figure5_plan()))
    assert via_plan.crash_times == via_schedule.crash_times
    assert via_plan.server_up_times == via_schedule.server_up_times
    a, b = via_plan.export_dict(), via_schedule.export_dict()
    # Everything measured must agree; only the plan/fired provenance
    # blocks may differ in naming.
    for key in ("events", "counters", "migrations", "series"):
        assert a[key] == b[key]


def test_export_records_plan_and_fire_log():
    result = run_scenario(short_wan())
    export = result.export_dict()
    assert export["plan"], "export must carry the plan description"
    assert len(export["fired"]) == 2
    assert export["fired"][0]["t"] == 10.0
