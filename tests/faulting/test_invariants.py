"""InvariantChecker: silent on healthy and recovering runs, loud on
synthetic contract breaches."""

from types import SimpleNamespace

from repro.faulting.injector import FaultInjector
from repro.faulting.invariants import InvariantChecker, _ClientTrack
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_checked_service(k=2, seed=23, movie_s=80.0):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=k + 2)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, server_nodes=list(range(k)))
    checker = InvariantChecker(deployment).install()
    client = deployment.attach_client(k)
    client.request_movie("m")
    return sim, deployment, client, checker


def test_healthy_run_is_silent():
    sim, _deployment, _client, checker = make_checked_service()
    sim.run_until(30.0)
    assert checker.final_check() == []
    assert checker.ok
    assert checker.samples > 100
    assert checker.report().startswith("OK")


def test_crash_takeover_is_clean_and_recorded():
    sim, deployment, client, checker = make_checked_service()
    plan = FaultPlan().crash_serving(at=20.0)
    FaultInjector(deployment, plan, client=client).start()
    sim.run_until(45.0)
    assert checker.final_check() == [], checker.report()
    assert len(checker.takeovers) >= 1
    _t, who, _server, offset = checker.takeovers[0]
    assert who == client.name
    assert offset > 0


def test_offset_bound_uses_emergency_inflated_rate():
    _sim, deployment, _client, checker = make_checked_service()
    rate = deployment.server_config.default_rate_fps
    assert checker.offset_bound_frames >= 1.4 * rate * 0.5


def test_takeover_offset_regression_detected():
    _sim, _deployment, client, checker = make_checked_service()
    track = _ClientTrack(down_offset=1000)
    record = SimpleNamespace(offset=1000 - checker.offset_bound_frames - 1)
    checker._check_takeover_offset(record, client, track)
    assert [v.rule for v in checker.violations] == ["takeover-offset-regression"]


def test_takeover_offset_skip_detected():
    _sim, _deployment, client, checker = make_checked_service()
    track = _ClientTrack(down_offset=1000)
    record = SimpleNamespace(offset=1000 + checker.offset_bound_frames + 1)
    checker._check_takeover_offset(record, client, track)
    assert [v.rule for v in checker.violations] == ["takeover-offset-skip"]


def test_takeover_offset_within_bound_accepted():
    _sim, _deployment, client, checker = make_checked_service()
    track = _ClientTrack(down_offset=1000)
    for offset in (
        1000,
        1000 - checker.offset_bound_frames,
        1000 + checker.offset_bound_frames,
    ):
        checker._check_takeover_offset(
            SimpleNamespace(offset=offset), client, track
        )
    assert checker.violations == []


def test_takeover_without_baseline_is_not_judged():
    _sim, _deployment, client, checker = make_checked_service()
    checker._check_takeover_offset(
        SimpleNamespace(offset=5000), client, _ClientTrack(down_offset=None)
    )
    checker._check_takeover_offset(
        SimpleNamespace(offset=5000), client, _ClientTrack(down_offset=0)
    )
    assert checker.violations == []


def test_install_is_idempotent():
    _sim, _deployment, _client, checker = make_checked_service()
    assert checker.install() is checker


def test_report_lists_violations():
    _sim, _deployment, _client, checker = make_checked_service()
    checker._violation("demo-rule", "c", "something broke")
    assert not checker.ok
    assert "demo-rule" in checker.report()
    assert "something broke" in str(checker.violations[0])
