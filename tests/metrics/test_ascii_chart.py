"""Tests for the terminal chart renderer."""

from repro.metrics.ascii_chart import render_chart, render_timeseries
from repro.telemetry.series import TimeSeries


def ramp(n=100):
    return [(float(t), float(t) * 2) for t in range(n)]


def test_contains_title_and_axis():
    text = render_chart(ramp(), title="My Chart")
    assert text.startswith("My Chart")
    assert "+" in text and "-" in text


def test_y_labels_show_extremes():
    text = render_chart(ramp(100))
    assert "198" in text  # max value
    assert "0" in text


def test_x_labels_show_time_span():
    text = render_chart(ramp(100))
    assert "0s" in text
    assert "99s" in text


def test_monotone_series_plots_monotone():
    text = render_chart(ramp(), width=20, height=5)
    rows = [line for line in text.splitlines() if "|" in line and "*" in line]
    # The first star appears on a later column for lower rows.
    first_cols = [row.index("*") for row in rows]
    assert first_cols == sorted(first_cols, reverse=True)


def test_flat_series_renders():
    text = render_chart([(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)])
    assert "*" in text


def test_too_few_points():
    assert "not enough data" in render_chart([(0.0, 1.0)], title="x")


def test_markers_rendered():
    text = render_chart(ramp(), markers=[(50.0, "crash")])
    assert "^" in text
    assert "^ t=50s crash" in text


def test_marker_outside_span_ignored():
    text = render_chart(ramp(), markers=[(1000.0, "nope")])
    assert "nope" not in text


def test_render_timeseries_uses_name_as_default_title():
    series = TimeSeries("occupancy")
    for t in range(50):
        series.record(float(t), float(t % 7))
    text = render_timeseries(series)
    assert text.startswith("occupancy")


def test_dimensions_respected():
    text = render_chart(ramp(), width=30, height=6, title="")
    plot_rows = [line for line in text.splitlines() if line.strip().startswith("|") or " |" in line]
    data_rows = [line for line in text.splitlines() if "|" in line and "+" not in line]
    assert len(data_rows) == 6
