"""Unit tests for counters, time series and probes."""

import pytest

from repro.telemetry.series import Counter, Probe, TimeSeries
from repro.sim.core import Simulator


class TestCounter:
    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)


class TestTimeSeries:
    def make(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 15.0), (3.0, 30.0)]:
            series.record(t, v)
        return series

    def test_len_and_points(self):
        series = self.make()
        assert len(series) == 4
        assert series.points()[0] == (0.0, 10.0)

    def test_out_of_order_rejected(self):
        series = self.make()
        with pytest.raises(ValueError):
            series.record(2.5, 1.0)

    def test_value_at_step_interpolation(self):
        series = self.make()
        assert series.value_at(1.5) == 20.0
        assert series.value_at(0.0) == 10.0
        assert series.value_at(99.0) == 30.0
        assert series.value_at(-1.0) is None

    def test_window(self):
        series = self.make()
        assert series.window(1.0, 2.0) == [(1.0, 20.0), (2.0, 15.0)]

    def test_min_max_mean_over_window(self):
        series = self.make()
        assert series.min(1.0, 3.0) == 15.0
        assert series.max(0.0, 2.0) == 20.0
        assert series.mean(0.0, 1.0) == 15.0

    def test_stats_over_empty_window(self):
        series = self.make()
        assert series.min(10.0, 20.0) is None
        assert series.mean(10.0, 20.0) is None

    def test_final(self):
        assert self.make().final() == 30.0
        assert TimeSeries("empty").final() is None

    def test_increase_over(self):
        series = self.make()
        assert series.increase_over(0.0, 3.0) == 20.0
        assert series.increase_over(-5.0, 0.5) == 10.0


class TestProbe:
    def test_samples_on_period(self):
        sim = Simulator()
        box = {"v": 0}
        probe = Probe(sim, period=0.5)
        series = probe.watch("v", lambda: box["v"])
        sim.call_at(0.9, lambda: box.update(v=7))
        sim.run_until(2.0)
        assert series.value_at(0.6) == 0
        assert series.value_at(1.2) == 7
        probe.stop()

    def test_stop_halts_sampling(self):
        sim = Simulator()
        probe = Probe(sim, period=0.5)
        series = probe.watch("v", lambda: 1)
        sim.run_until(1.0)
        probe.stop()
        count = len(series)
        sim.run_until(5.0)
        assert len(series) == count


def test_removed_shim_paths_stay_removed():
    """The PR-2 deprecation shims are gone; the canonical homes are
    repro.telemetry.series and repro.telemetry.trace."""
    with pytest.raises(ImportError):
        import repro.metrics.collector  # noqa: F401
    with pytest.raises(ImportError):
        import repro.sim.trace  # noqa: F401
