"""Unit tests for report formatting."""

import pytest

from repro.telemetry.series import TimeSeries
from repro.metrics.report import Table, format_series_summary


def test_table_renders_header_and_rows():
    table = Table("Title", ["a", "b"])
    table.add_row(1, "x")
    table.add_row(2.5, "yy")
    text = table.render()
    assert "Title" in text
    assert "a" in text and "b" in text
    assert "2.5" in text and "yy" in text


def test_table_wrong_arity_rejected():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_float_formatting_trims_zeros():
    table = Table("t", ["v"])
    table.add_row(1.5)
    table.add_row(2.0)
    lines = [line.strip() for line in table.render().splitlines()]
    assert "1.5" in lines
    assert "2" in lines  # 2.0 rendered without a trailing ".0"


def test_series_summary_samples():
    series = TimeSeries("s")
    for t in range(0, 101, 10):
        series.record(float(t), float(t * 2))
    text = format_series_summary(series, sample_every=50.0)
    assert "t=    0.0s" in text
    assert "200.0" in text


def test_series_summary_empty():
    assert "(empty)" in format_series_summary(TimeSeries("s"))
