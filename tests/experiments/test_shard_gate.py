"""Shard gate: check() verdict logic on synthetic benches.

The real sharded smoke runs in CI (the ``shard-gate`` job); here we
pin down the judging rules on synthetic sweep/baseline pairs.
"""

import copy
import json

import pytest

from repro.experiments.shard_gate import check

POINT = {
    "mode": "sharded",
    "n_clients": 20000,
    "n_shards": 4,
    "events": 400000,
    "frames_delivered": 4800000,
    "takeovers": 6668,
    "wall_s": 30.0,
    "max_failover_s": 0.59,
    "merge_deterministic": True,
    "violations": 0,
    "qoe": {"n": 20000, "mean": 99.67, "p10": 99.0, "p50": 100.0},
    "slo": {
        "glitch_free_fraction": {"ok": True, "value": 1.0},
        "failover_p99_s": {"ok": True, "value": 0.59},
    },
}

BASELINE = {
    "n_clients": 20000,
    "n_shards": 4,
    "events": 400000,
    "frames_delivered": 4800000,
    "takeovers": 6668,
    "qoe": {"p10": 99.0, "p50": 100.0},
    "tolerances": {
        "events_rel": 0.15,
        "frames_rel": 0.05,
        "wall_ceiling_s": 300.0,
        "failover_ceiling_s": 2.0,
    },
}


@pytest.fixture
def paths(tmp_path):
    def write(point, baseline=BASELINE):
        measured_path = tmp_path / "measured.json"
        baseline_path = tmp_path / "baseline.json"
        measured_path.write_text(json.dumps({"points": [point]}))
        baseline_path.write_text(json.dumps(baseline))
        return str(measured_path), str(baseline_path)

    return write


def test_clean_point_passes(paths):
    assert check(*paths(POINT)) == []


def test_missing_sharded_point_fails(paths):
    serial = dict(POINT, mode="flyweight")
    failures = check(*paths(serial))
    assert failures and "no sharded point" in failures[0]


def test_event_drift_fails(paths):
    drifted = dict(POINT, events=600000)
    assert any("events" in f for f in check(*paths(drifted)))


def test_takeover_count_is_exact(paths):
    off_by_one = dict(POINT, takeovers=6667)
    assert any("takeovers" in f for f in check(*paths(off_by_one)))


def test_merge_determinism_is_required(paths):
    unproven = dict(POINT)
    del unproven["merge_deterministic"]
    assert any("merge_deterministic" in f for f in check(*paths(unproven)))


def test_invariant_violations_fail(paths):
    violated = dict(POINT, violations=3)
    assert any("violations" in f for f in check(*paths(violated)))


def test_partial_qoe_population_fails(paths):
    partial = copy.deepcopy(POINT)
    partial["qoe"]["n"] = 15000
    assert any("qoe.n" in f for f in check(*paths(partial)))


def test_qoe_quantiles_are_exact(paths):
    shifted = copy.deepcopy(POINT)
    shifted["qoe"]["p10"] = 98.0
    assert any("qoe.p10" in f for f in check(*paths(shifted)))


def test_slo_breach_fails(paths):
    breached = copy.deepcopy(POINT)
    breached["slo"]["failover_p99_s"] = {"ok": False, "value": 2.5}
    assert any("slo.failover_p99_s" in f for f in check(*paths(breached)))


def test_wall_ceiling_is_generous_but_real(paths):
    slow = dict(POINT, wall_s=301.0)
    assert any("wall_s" in f for f in check(*paths(slow)))
