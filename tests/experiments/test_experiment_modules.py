"""Direct tests of the experiment measurement modules (small params)."""

import pytest

from repro.experiments.capacity import capacity_table, run_capacity_point
from repro.experiments.faults import (
    FaultTrial,
    fault_matrix_table,
    run_group_service_trial,
    run_single_server_trial,
    run_striped_trial,
)
from repro.experiments.gcs_latency import (
    gcs_latency_table,
    measure_group_size,
)
from repro.experiments.overheads import measure_sync_overhead
from repro.experiments.qos import qos_comparison_table, run_wan_trial


class TestOverheads:
    def test_sync_overhead_small(self):
        result = measure_sync_overhead(n_clients=2, duration_s=20.0)
        assert result.video_bytes > 1e6
        assert 0 < result.sync_fraction < 0.01
        assert result.sync_fraction < result.control_fraction
        assert "T-sync" in result.table().render()


class TestFaults:
    def test_single_server_trial_fails(self):
        trial = run_single_server_trial(duration_s=50.0)
        assert not trial.survived
        assert trial.system == "single server"

    def test_group_trial_with_one_kill_survives(self):
        trial = run_group_service_trial(k=2, kills=1, duration_s=50.0)
        assert trial.survived
        assert trial.displayed > 1000

    def test_striped_trial_reports(self):
        trial = run_striped_trial(n=3, kills=1, duration_s=40.0)
        assert trial.survived
        assert trial.kills == 1

    def test_matrix_table_renders(self):
        trials = [
            FaultTrial("x", 1, 1, 0.0, 0, 100),
            FaultTrial("y", 3, 2, 9.0, 500, 100),
        ]
        text = fault_matrix_table(trials).render()
        assert "yes" in text and "NO" in text


class TestCapacity:
    def test_underloaded_point_is_clean(self):
        point = run_capacity_point(4, n_servers=1, duration_s=15.0)
        assert point.clean
        assert point.offered_mbps == pytest.approx(4 * 1.4, rel=0.1)

    def test_table_renders(self):
        point = run_capacity_point(2, n_servers=1, duration_s=10.0)
        assert "E-capacity" in capacity_table([point]).render()


class TestQos:
    def test_reserved_trial_lossless(self):
        trial = run_wan_trial(True, duration_s=40.0, crash_at=20.0)
        assert trial.skipped == trial.overflow  # no network loss
        assert trial.reserved_bps > 1e6

    def test_best_effort_trial_lossy(self):
        trial = run_wan_trial(False, duration_s=40.0, crash_at=20.0)
        assert trial.skipped > trial.overflow

    def test_comparison_table(self):
        a = run_wan_trial(False, duration_s=30.0, crash_at=15.0)
        b = run_wan_trial(True, duration_s=30.0, crash_at=15.0)
        assert "E-qos" in qos_comparison_table(a, b).render()


class TestGcsLatency:
    def test_small_group_latencies(self):
        point = measure_group_size(3)
        assert 0.0 < point.join_latency_s < 0.5
        assert 0.3 < point.crash_latency_s < 1.5
        assert "T-gcs" in gcs_latency_table([point]).render()
