"""Smoke test for the population-scale experiment.

A 500-client run with a mid-run server crash must finish inside a
generous wall budget (the per-frame kernel could not), deliver a large
frame volume, and fail every victim over to a survivor.  Failover
latency is governed by failure-detection rounds, not population size, so
it must stay in the same band at 100 and 500 clients.
"""

import pytest

from repro.experiments.scale import run_scale_point

#: Generous for CI machines; the run takes ~20-30 s on a laptop.  The
#: pre-batching kernel needed minutes for the same population, so a blown
#: budget means the fast path has regressed badly.
WALL_BUDGET_S = 180.0


@pytest.fixture(scope="module")
def point_100():
    return run_scale_point(100, batch_window_s=1.0, duration_s=10.0,
                           crash_at=6.0)


@pytest.fixture(scope="module")
def point_500():
    return run_scale_point(500, batch_window_s=1.0, duration_s=10.0,
                           crash_at=6.0)


def test_500_clients_with_crash_inside_wall_budget(point_500):
    assert point_500.wall_s < WALL_BUDGET_S
    assert point_500.events > 100_000
    # ~500 clients x 30 fps x ~7.5 s of streaming, minus the failover gap.
    assert point_500.frames_delivered > 50_000


def test_crash_fails_every_victim_over(point_500):
    assert point_500.takeovers > 0
    # Every takeover produced a measured failover latency.
    assert len(point_500.failover_latencies) == point_500.takeovers
    assert all(lat > 0 for lat in point_500.failover_latencies)


def test_failover_latency_flat_in_population(point_100, point_500):
    """Detection rounds, not client count, set the failover clock."""
    assert point_100.takeovers > 0 and point_500.takeovers > 0
    # Both populations recover within the same failure-detection band;
    # a latency that grows with N would blow straight past this.
    assert point_100.max_failover_s < 3.0
    assert point_500.max_failover_s < 3.0
    assert point_500.max_failover_s <= 2.5 * point_100.max_failover_s


def test_batched_beats_per_frame_event_count(point_100):
    slow = run_scale_point(100, batch_window_s=0.0, duration_s=10.0,
                           crash_at=6.0)
    # The tentpole's whole premise: per-batch work replaces per-frame
    # work, collapsing the event volume for the same delivered stream.
    assert point_100.events < 0.75 * slow.events
    assert point_100.frames_delivered > 0.9 * slow.frames_delivered
