"""Placement matrix gate: check() verdict logic on synthetic benches.

The full matrix — four strategies through migrations, a rack crash and
a flash crowd — runs in CI (the ``placement-matrix`` job); here we pin
down the judging rules.
"""

import copy
import json

import pytest

from repro.experiments.placement_gate import check

STRATEGY = {
    "storage_copies": 2.0,
    "steady_availability": 0.9993,
    "outage_analytic": 0.7156,
    "outage_measured": 0.9139,
    "qoe_mean": 98.8,
    "stall_events": 1,
    "migrations_completed": 2,
    "migrations_aborted": 0,
    "prefix_handoffs": 0,
    "heal_additions": 15,
    "violations": 0,
}

BASELINE = {
    "strategies": {
        "static": dict(STRATEGY),
        "markov": dict(
            STRATEGY, outage_analytic=1.0, outage_measured=1.0
        ),
        "prefix": dict(
            STRATEGY, storage_copies=2.6, outage_analytic=0.65,
            prefix_handoffs=3,
        ),
    },
    "tolerances": {
        "storage_rel": 0.01,
        "availability_rel": 0.02,
        "qoe_floor": 90.0,
    },
}


@pytest.fixture
def paths(tmp_path):
    def write(measured, baseline=BASELINE):
        measured_path = tmp_path / "measured.json"
        baseline_path = tmp_path / "baseline.json"
        measured_path.write_text(json.dumps(measured))
        baseline_path.write_text(json.dumps(baseline))
        return str(measured_path), str(baseline_path)

    return write


def matching_run(**overrides):
    run = {"strategies": copy.deepcopy(BASELINE["strategies"])}
    for strategy, fields in overrides.items():
        run["strategies"][strategy].update(fields)
    return run


def test_identical_run_passes(paths):
    assert check(*paths(matching_run())) == []


def test_missing_strategy_fails(paths):
    run = matching_run()
    del run["strategies"]["markov"]
    failures = check(*paths(run))
    assert any("markov" in f and "missing" in f for f in failures)


def test_violations_always_fail(paths):
    failures = check(*paths(matching_run(static={"violations": 1})))
    assert any("violations" in f for f in failures)


def test_availability_drift_fails(paths):
    failures = check(
        *paths(matching_run(static={"outage_analytic": 0.60}))
    )
    assert any("outage_analytic" in f for f in failures)


def test_markov_must_strictly_beat_static(paths):
    failures = check(
        *paths(
            matching_run(
                markov={"outage_analytic": 0.7156, "outage_measured": 0.9139}
            )
        )
    )
    assert any("strictly beat" in f for f in failures)


def test_prefix_needs_a_handoff(paths):
    failures = check(*paths(matching_run(prefix={"prefix_handoffs": 0})))
    assert any("handoff" in f for f in failures)


def test_qoe_floor(paths):
    failures = check(*paths(matching_run(static={"qoe_mean": 42.0})))
    assert any("qoe_mean" in f for f in failures)


def test_aborted_migration_drift_fails(paths):
    failures = check(
        *paths(matching_run(static={"migrations_aborted": 1}))
    )
    assert any("migrations_aborted" in f for f in failures)


def test_committed_baseline_is_self_consistent():
    """The repository baseline must pass its own gate."""
    from pathlib import Path

    baseline = str(
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "BENCH_placement_baseline.json"
    )
    assert check(baseline, baseline) == []
