"""Property-based tests for the scenario-matrix determinism contract.

Three promises the DSL makes (see :mod:`repro.experiments.matrix`):

* :meth:`ScenarioMatrix.cells` enumerates **every axis combination
  exactly once**;
* cell identities and the cell list are **stable under axis
  reordering** — declaration order is presentation, not semantics;
* the same ``(matrix_seed, cell)`` always derives the same scenario
  seed, and through it the **identical fault plan and arrival
  schedule** — the property the seeded CI gate rests on.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.matrix import (
    Axis,
    Cell,
    ScenarioMatrix,
    default_matrix,
    spec_for_cell,
)
from repro.experiments.scenarios import WorkloadSpec, plan_for_spec

#: A pool of plausible axis names/values to draw matrices from.
AXIS_NAMES = ("topology", "workload", "faults", "clients", "codec", "region")
VALUE_POOL = tuple(f"v{i}" for i in range(6))


@st.composite
def matrices(draw):
    names = draw(
        st.lists(
            st.sampled_from(AXIS_NAMES), min_size=1, max_size=4, unique=True
        )
    )
    axes = tuple(
        Axis(
            name,
            tuple(
                draw(
                    st.lists(
                        st.sampled_from(VALUE_POOL),
                        min_size=1,
                        max_size=4,
                        unique=True,
                    )
                )
            ),
        )
        for name in names
    )
    return ScenarioMatrix(axes=axes)


@given(matrix=matrices())
@settings(max_examples=150, deadline=None)
def test_cells_cover_every_combination_exactly_once(matrix):
    cells = matrix.cells()
    assert len(cells) == len(matrix)
    # Every combination of the declared axis values appears once, as a
    # frozen coordinate set (order-insensitive comparison).
    expected = {
        frozenset(zip((a.name for a in matrix.axes), combo))
        for combo in product(*(a.values for a in matrix.axes))
    }
    got = [frozenset(cell.coords) for cell in cells]
    assert set(got) == expected
    assert len(set(got)) == len(got)  # no duplicates
    # Cell ids are unique too — they key the benchmark JSON.
    assert len({cell.cell_id for cell in cells}) == len(cells)


@given(matrix=matrices(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_cell_list_is_stable_under_axis_reordering(matrix, data):
    shuffled = ScenarioMatrix(
        axes=tuple(data.draw(st.permutations(matrix.axes)))
    )
    assert shuffled.cells() == matrix.cells()
    assert [c.cell_id for c in shuffled.cells()] == [
        c.cell_id for c in matrix.cells()
    ]


@given(
    coords=st.dictionaries(
        st.sampled_from(AXIS_NAMES),
        st.sampled_from(VALUE_POOL),
        min_size=1,
        max_size=4,
    ),
    matrix_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=200, deadline=None)
def test_cell_identity_and_seed_ignore_coordinate_order(coords, matrix_seed):
    forward = Cell(coords=tuple(coords.items()))
    backward = Cell(coords=tuple(reversed(list(coords.items()))))
    assert forward.cell_id == backward.cell_id
    assert forward.seed(matrix_seed) == backward.seed(matrix_seed)
    assert Cell.of(**coords) == Cell(coords=tuple(sorted(coords.items())))
    assert 0 <= forward.seed(matrix_seed) < 2**31


@given(
    matrix_seed=st.integers(min_value=0, max_value=2**31 - 1),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_same_seed_and_cell_give_identical_plan_and_arrivals(
    matrix_seed, data
):
    cell = data.draw(st.sampled_from(default_matrix().cells()))
    spec_a = spec_for_cell(cell, matrix_seed)
    spec_b = spec_for_cell(cell, matrix_seed)
    assert spec_a == spec_b
    assert spec_a.seed == cell.seed(matrix_seed)
    # The derived fault plan is step-for-step identical...
    assert plan_for_spec(spec_a).describe() == plan_for_spec(spec_b).describe()
    # ...and so is the population's arrival schedule (pure in the seed).
    if spec_a.workload is not None:
        assert spec_a.workload.arrival_times(spec_a.seed) == (
            spec_b.workload.arrival_times(spec_b.seed)
        )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    kind=st.sampled_from(("flash-crowd", "diurnal", "poisson")),
)
@settings(max_examples=100, deadline=None)
def test_arrival_schedules_are_pure_sorted_and_bounded(seed, kind):
    workload = WorkloadSpec(kind=kind, n_viewers=6)
    times = workload.arrival_times(seed)
    assert times == workload.arrival_times(seed)
    assert times == sorted(times)
    assert len(times) <= workload.n_viewers
    assert all(t >= workload.at_s or kind == "flash-crowd" for t in times)
