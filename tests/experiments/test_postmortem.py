"""The flight recorder end to end: scenarios, scale points, the
``postmortem`` experiment and its CI gate.

The non-perturbation contract is asserted at a sharded chaos point:
the same population under the same seed must produce byte-identical
merged outcomes with the recorder on or off (``N20K=1`` in the
environment runs the full 20 000-viewer version CI's postmortem-smoke
job uses; the default stays small so the tier-1 suite is fast on one
core).
"""

import json
import os

import pytest

from repro.experiments.api import ExperimentSpec, run
from repro.experiments.postmortem_gate import check
from repro.experiments.scale import run_scale_point, run_sharded_scale_point


def _signature(point):
    return json.dumps(
        {
            "events": point.events,
            "frames": point.frames_delivered,
            "takeovers": point.takeovers,
            "failover_latencies": point.failover_latencies,
        },
        sort_keys=True,
    )


#: The chaos point: every shard crashes its most-loaded server mid-run.
_N = 20_000 if os.environ.get("N20K") else 600
_POINT = dict(batch_window_s=1.0, duration_s=4.0, crash_at=2.0, seed=77)


def test_recorder_on_off_equivalence_at_sharded_chaos_point():
    off = run_sharded_scale_point(
        _N, n_shards=2, inline=True, **_POINT
    )
    on = run_sharded_scale_point(
        _N, n_shards=2, inline=True, flight=True, **_POINT
    )
    assert _signature(off) == _signature(on)
    assert on.merge_deterministic is True
    assert len(on.incidents) >= 1
    assert off.incidents == [] and off.flight is None


def test_sharded_incidents_merge_with_exact_breakdowns():
    point = run_sharded_scale_point(
        _N, n_shards=2, inline=True, flight=True, **_POINT
    )
    assert sorted((point.flight or {}).get("shards", {})) == [0, 1]
    breakdowns = 0
    for incident in point.incidents:
        for b in incident["breakdowns"]:
            breakdowns += 1
            assert abs(
                b["detect_s"] + b["agree_s"] + b["redistribute_s"]
                - b["total_s"]
            ) <= 1e-9
    assert breakdowns > 0
    shards = {
        s for i in point.incidents
        for s in str(i.get("shard", "")).split(",")
    }
    assert shards == {"0", "1"}


def test_flyweight_point_meters_within_budget():
    point = run_scale_point(_N, flyweight=True, flight=True, **_POINT)
    metering = point.flight
    assert metering["occupancy"] <= metering["ring_budget"]
    assert metering["capture_occupancy"] == 0
    assert metering["incidents"] == len(point.incidents) >= 1


def test_gate_passes_at_test_scale():
    assert check(n=_N, shards=2, duration_s=4.0) == []


def test_postmortem_experiment_scale_source(tmp_path):
    json_path = str(tmp_path / "incidents.json")
    result = run(ExperimentSpec(
        name="postmortem",
        params={"source": "scale", "n": _N, "duration": 4.0,
                "json": json_path},
    ))
    assert result.incidents
    rendered = result.render()
    assert "Failover critical path" in rendered
    assert "flight recorder:" in rendered
    with open(json_path) as fh:
        payload = json.load(fh)
    assert payload["incidents"] == result.incidents
    assert payload["metering"]["incidents"] == len(result.incidents)


def test_postmortem_experiment_export_replay(tmp_path):
    export = str(tmp_path / "run.jsonl.gz")
    run_scale_point(
        200, 1.0, duration_s=4.0, crash_at=2.0, seed=77,
        telemetry_path=export,
    )
    result = run(ExperimentSpec(
        name="postmortem", params={"export": export},
    ))
    assert result.incidents
    assert result.incidents[0]["trigger_kind"] == "server.crash"
    # Windowing past the crash leaves nothing to trigger on.
    quiet = run(ExperimentSpec(
        name="postmortem", params={"export": export, "since": 3.0},
    ))
    assert quiet.incidents == []
    assert "no incidents" in quiet.render()


def test_scenario_result_carries_incidents():
    from repro.experiments.scenarios import LAN_SCENARIO, run_scenario

    result = run_scenario(LAN_SCENARIO, flight=True)
    assert len(result.incidents) >= 1
    assert result.flight["incidents"] == len(result.incidents)
    for incident in result.incidents:
        for b in incident.breakdowns:
            assert abs(
                b["detect_s"] + b["agree_s"] + b["redistribute_s"]
                - b["total_s"]
            ) <= 1e-9


def test_runner_postmortem_cli(tmp_path, capsys):
    from repro.experiments.runner import main

    export = str(tmp_path / "run.jsonl")
    run_scale_point(
        200, 1.0, duration_s=4.0, crash_at=2.0, seed=77,
        telemetry_path=export,
    )
    assert main(["postmortem", "--from-export", export,
                 "--no-telemetry"]) == 0
    out = capsys.readouterr().out
    assert "incident#1" in out
    assert "server.crash" in out


@pytest.mark.parametrize("flag", ["--since", "--until"])
def test_runner_report_accepts_window_flags(tmp_path, capsys, flag):
    from repro.experiments.runner import main

    export = str(tmp_path / "run.jsonl")
    run_scale_point(
        200, 1.0, duration_s=4.0, crash_at=2.0, seed=77,
        telemetry_path=export,
    )
    assert main(["report", export, flag, "2.0"]) == 0
    assert "telemetry run" in capsys.readouterr().out
