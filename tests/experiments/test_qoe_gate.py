"""QoE regression gate: compare() verdict logic (measure() is a bench).

The full gate — two observed Figure 4 runs plus a chaos sweep — takes
minutes and lives in CI (the ``qoe-regression`` job); here we pin down
the judging rules on synthetic measurements.
"""

import copy

from repro.experiments.qoe_gate import JUDGED_METRICS, compare

BASE = {
    "metrics": {
        "failover_p50_s": 0.43,
        "failover_p99_s": 0.47,
        "glitch_total": 4,
        "stall_s_total": 2.0,
        "qoe_mean_score": 96.0,
    },
    "overhead_pct": 12.0,
    "overhead_ceiling_pct": 60.0,
}


def measurement(**metric_overrides):
    current = copy.deepcopy(BASE)
    current["metrics"].update(metric_overrides)
    return current


def test_identical_measurement_passes():
    lines, ok = compare(measurement(), BASE)
    assert ok
    assert all("FAIL" not in line for line in lines)
    # Every judged metric plus the overhead ceiling shows up.
    assert len(lines) == len(JUDGED_METRICS) + 1


def test_regression_beyond_tolerance_fails():
    lines, ok = compare(measurement(stall_s_total=3.0), BASE)
    assert not ok
    assert any("FAIL" in line and "stall_s_total" in line for line in lines)


def test_absolute_slack_absorbs_near_zero_jitter():
    # +0.01 s on a 0.43 s failover is within the 0.05 s slack even
    # though it exceeds 10% of nothing much.
    _, ok = compare(measurement(failover_p50_s=0.44), BASE, tolerance=0.0)
    assert ok
    _, ok = compare(measurement(failover_p50_s=0.55), BASE)
    assert not ok


def test_lower_is_worse_for_scores():
    _, ok = compare(measurement(qoe_mean_score=80.0), BASE)
    assert not ok
    # A score *improvement* never fails the gate.
    _, ok = compare(measurement(qoe_mean_score=99.5), BASE)
    assert ok


def test_overhead_judged_against_ceiling_not_baseline():
    current = measurement()
    current["overhead_pct"] = 59.0  # noisy but under the ceiling
    _, ok = compare(current, BASE)
    assert ok
    current["overhead_pct"] = 61.0
    lines, ok = compare(current, BASE)
    assert not ok
    assert any("overhead_pct" in line and "FAIL" in line for line in lines)


def test_missing_metric_is_reported_not_crashed():
    current = measurement()
    del current["metrics"]["glitch_total"]
    lines, ok = compare(current, BASE)
    assert any("? glitch_total" in line.strip() for line in lines)
    assert ok  # a missing metric is flagged, not failed
