"""Multi-seed shape robustness for the headline scenario.

The benchmark harness asserts the figure shapes on the default seed;
this locks the invariant facts (the ones that must hold *whatever* the
seed) across several seeds on shortened runs, so a regression that only
bites under unlucky timing still gets caught.  A second battery samples
random non-LAN cells of the scenario matrix (WAN and hierarchy
topologies, population workloads) so the fault-tolerance invariants are
exercised off the beaten LAN path too.
"""

import dataclasses
import random

import pytest

from repro.experiments.matrix import default_matrix, run_cell
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario

SEEDS = [211, 223, 227, 229]


@pytest.fixture(scope="module", params=SEEDS)
def lan_run(request):
    spec = dataclasses.replace(
        LAN_SCENARIO,
        movie_duration_s=100.0,
        run_duration_s=100.0,
        schedule=((35.0, "crash-serving"), (60.0, "server-up")),
        seed=request.param,
    )
    return run_scenario(spec)


def test_no_human_visible_stall(lan_run):
    assert lan_run.client.decoder.stats.stall_time_s <= 1.0


def test_no_i_frame_ever_discarded(lan_run):
    assert lan_run.client.stats.overflow_discarded_intra == 0


def test_duplicates_at_both_migrations(lan_run):
    late = lan_run.client.stats.late_cum
    crash, lb = lan_run.crash_times[0], lan_run.server_up_times[0]
    assert late.increase_over(crash - 1, crash + 12) > 0
    assert late.increase_over(lb - 1, lb + 12) > 0


def test_takeover_under_a_second(lan_run):
    crash = lan_run.crash_times[0]
    migration = next(
        t for t, _old, new in lan_run.client.stats.migrations
        if t >= crash and new is not None
    )
    assert migration - crash <= 1.0


def test_load_balance_moves_the_client(lan_run):
    new_server = lan_run.deployment.server("server2")
    assert new_server.n_clients == 1


def test_nearly_every_frame_displayed(lan_run):
    client = lan_run.client
    expected = 100 * 30
    assert client.displayed_total >= expected * 0.97


def test_bounded_skips(lan_run):
    assert lan_run.client.skipped_total <= 40


# ----------------------------------------------------------------------
# Sampled matrix cells: WAN / hierarchy coverage
# ----------------------------------------------------------------------
def sampled_matrix_cells(n=3, sample_seed=3):
    """``n`` deterministically-sampled non-LAN cells of the full matrix.

    The LAN single-client column is already covered above (and by the
    golden trace); this draws from the rest — WAN and hierarchy
    topologies, population workloads — with a fixed sampling seed so
    every run exercises the same cells.
    """
    cells = [
        cell for cell in default_matrix().cells()
        if cell.value("topology", "lan") != "lan"
    ]
    return random.Random(sample_seed).sample(cells, n)


@pytest.fixture(
    scope="module",
    params=sampled_matrix_cells(),
    ids=lambda cell: cell.cell_id,
)
def matrix_verdict(request):
    return run_cell(request.param, matrix_seed=17)


def test_matrix_cell_holds_the_invariants(matrix_verdict):
    assert matrix_verdict["violations"] == 0


def test_matrix_cell_plays_video(matrix_verdict):
    assert matrix_verdict["displayed"] > 0
    assert matrix_verdict["clients"] >= 1


def test_matrix_cell_verdict_is_reproducible(matrix_verdict):
    cell = next(
        cell for cell in default_matrix().cells()
        if cell.cell_id == matrix_verdict["cell"]
    )
    assert run_cell(cell, matrix_seed=17) == matrix_verdict
