"""The shared-nothing sharded scale point, end to end (small N).

These runs use ``inline=True`` — the same code path as the spawned
pool minus the processes (picklability is still enforced), so the
merge semantics are exercised deterministically on any box.  One test
runs the real spawned pool to pin inline == spawn on the merged point.
"""

from repro.experiments.scale import (
    _point_payload,
    run_scale_point,
    run_sharded_scale_point,
)


def _small_point(**overrides):
    params = dict(
        n_clients=60, batch_window_s=1.0, duration_s=4.0, crash_at=2.0,
        seed=77, n_shards=2, inline=True,
    )
    params.update(overrides)
    return run_sharded_scale_point(**params)


def test_sharded_point_merges_the_whole_population():
    point = _small_point()
    assert point.mode == "sharded"
    assert point.n_clients == 60
    assert point.n_shards == 2
    assert len(point.shard_walls) == 2
    assert point.qoe["n"] == 60
    # Each shard crashed its most-loaded server: failovers were
    # measured, merged sorted, and every takeover scored 99.
    assert point.takeovers == len(point.failover_latencies) > 0
    assert point.failover_latencies == sorted(point.failover_latencies)
    assert point.qoe["counts"].get("99") == point.takeovers
    assert point.merge_deterministic is True


def test_sharded_point_evaluates_the_papers_rules():
    point = _small_point()
    assert set(point.slo) == {
        "glitch_free_fraction", "failover_p99_s", "emergency_bandwidth_share",
    }
    # Clean links + sub-2s takeovers: the paper's service level holds.
    assert all(rule["ok"] for rule in point.slo.values())
    assert point.slo["failover_p99_s"]["value"] == point.failover_latencies[-1]


def test_sharded_point_counts_invariant_violations():
    point = _small_point(invariants=True)
    assert point.violations == 0


def test_sharded_events_sum_over_single_shard_runs():
    # Shared-nothing really is shared-nothing: the merged point is the
    # arithmetic sum of its shards, each reproducible standalone under
    # its derived seed.
    from repro.shard.plan import ShardPlan

    point = _small_point()
    tasks = ShardPlan(n_shards=2, seed=77).tasks(60)
    singles = [
        run_scale_point(
            task.n_viewers, 1.0, duration_s=4.0, crash_at=2.0,
            seed=task.seed, flyweight=True,
        )
        for task in tasks
    ]
    assert point.events == sum(single.events for single in singles)
    assert point.frames_delivered == sum(
        single.frames_delivered for single in singles
    )
    assert point.failover_latencies == sorted(
        latency
        for single in singles
        for latency in single.failover_latencies
    )


def test_spawned_shards_equal_inline():
    inline = _small_point(n_clients=40, duration_s=3.0)
    spawned = run_sharded_scale_point(
        n_clients=40, batch_window_s=1.0, duration_s=3.0, crash_at=2.0,
        seed=77, n_shards=2, workers=2,
    )
    for attribute in (
        "n_clients", "events", "frames_delivered", "failover_latencies",
        "takeovers", "violations", "qoe", "slo",
    ):
        assert getattr(spawned, attribute) == getattr(inline, attribute), (
            attribute
        )


def test_point_payload_carries_the_sharded_facts():
    point = _small_point()
    payload = _point_payload(point)
    assert payload["mode"] == "sharded"
    assert payload["n_shards"] == 2
    assert payload["merge_deterministic"] is True
    assert payload["qoe"]["n"] == 60
    assert set(payload["slo"]) == set(point.slo)
    assert len(payload["shard_walls"]) == 2
    # The serial flyweight payload keeps its historical shape.
    single = run_scale_point(
        20, 1.0, duration_s=3.0, crash_at=2.0, flyweight=True
    )
    serial_payload = _point_payload(single)
    assert serial_payload["mode"] == "flyweight"
    assert "n_shards" not in serial_payload
