"""Golden-trace regression for the figure 4 measurement run.

``tests/data`` holds the byte-exact telemetry stream and JSON export of
``run_figure4(seed=11)`` as produced at the time the data-plane fast
path landed.  Any change to event ordering, floating-point arithmetic,
telemetry content or export formatting shows up here as a byte diff —
the strongest cheap guard we have on end-to-end determinism.

Regenerating the goldens (only after deliberately changing observable
behaviour):

    PYTHONPATH=src python -c "
    import gzip, shutil
    from repro.experiments.figure4 import run_figure4
    fig = run_figure4(seed=11, telemetry_path='/tmp/f4.jsonl')
    fig.result.export_json('/tmp/f4.json')
    for src, dst in (('/tmp/f4.jsonl', 'tests/data/figure4_seed11_telemetry.jsonl.gz'),
                     ('/tmp/f4.json', 'tests/data/figure4_seed11_export.json.gz')):
        with open(src, 'rb') as fi, gzip.GzipFile(dst, 'wb', mtime=0) as fo:
            shutil.copyfileobj(fi, fo)
    "
"""

import dataclasses
import gzip
import pathlib

from repro.experiments.figure4 import run_figure4
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.server.server import ServerConfig

DATA = pathlib.Path(__file__).resolve().parent.parent / "data"


def golden_bytes(name: str) -> bytes:
    with gzip.open(DATA / name, "rb") as fh:
        return fh.read()


def test_figure4_telemetry_stream_matches_golden(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    run_figure4(seed=11, telemetry_path=str(path))
    assert path.read_bytes() == golden_bytes(
        "figure4_seed11_telemetry.jsonl.gz"
    )


def test_figure4_export_matches_golden(tmp_path):
    path = tmp_path / "export.json"
    run_figure4(seed=11).result.export_json(str(path))
    assert path.read_bytes() == golden_bytes("figure4_seed11_export.json.gz")


def test_batched_run_reproduces_golden_event_stream(tmp_path):
    """The fast path replays the golden (per-frame) run byte for byte.

    Only the closing summary line may differ: it counts firehose events
    (``events_emitted``), and the whole point of batching is to emit
    fewer of those.  Every actual event line must match exactly.
    """
    path = tmp_path / "telemetry.jsonl"
    spec = dataclasses.replace(
        LAN_SCENARIO, server_config=ServerConfig(batch_window_s=0.5)
    )
    run_scenario(spec, telemetry_path=str(path))

    def event_lines(data: bytes):
        return [
            line for line in data.splitlines()
            if b'"kind": "summary"' not in line
        ]

    golden = event_lines(golden_bytes("figure4_seed11_telemetry.jsonl.gz"))
    batched = event_lines(path.read_bytes())
    assert batched == golden
