"""Flyweight == full-object conformance, pinned against a golden trace.

The flyweight fast path replaces per-client sessions with columnar rows
whose playheads are closed-form arithmetic.  Its contract is *exact*
behavioural equivalence on clean links with the same seed: every viewer
starts on the same server at the same offset, every crash fails the same
viewers over to the same survivors with the same measured latencies, and
every final playhead matches to the frame.

The rig (`conformance_trace`) makes that equivalence checkable: one
sorted admission batch (window 0), a daemon set small enough to be
identical across modes, and flow control silenced by a deep prebuffer.
The traces are compared both mode-against-mode (equivalence today) and
against a committed golden (no silent drift of *both* modes at once).
"""

import json
import os

import pytest

from repro.experiments.scale import conformance_trace

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data",
    "flyweight_conformance_golden.json",
)


def canonical(trace):
    """JSON round-trip: tuples become lists, floats keep exact reprs."""
    return json.loads(json.dumps(trace))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def traces():
    return {
        ("full", "clean"): conformance_trace(mode="full"),
        ("flyweight", "clean"): conformance_trace(mode="flyweight"),
        ("full", "crash"): conformance_trace(mode="full", crash_at=4.0),
        ("flyweight", "crash"): conformance_trace(
            mode="flyweight", crash_at=4.0
        ),
    }


def test_clean_run_flyweight_equals_full(traces):
    assert traces[("flyweight", "clean")] == traces[("full", "clean")]


def test_crash_run_flyweight_equals_full(traces):
    """Takeover placement, resume offsets AND failover latencies match
    to the float — the cohort mirrors the full path's deterministic
    rules, not an approximation of them."""
    assert traces[("flyweight", "crash")] == traces[("full", "crash")]


@pytest.mark.parametrize("mode", ["full", "flyweight"])
def test_clean_run_matches_golden(traces, golden, mode):
    assert canonical(traces[(mode, "clean")]) == golden["clean"]


@pytest.mark.parametrize("mode", ["full", "flyweight"])
def test_crash_run_matches_golden(traces, golden, mode):
    assert canonical(traces[(mode, "crash")]) == golden["crash"]


def test_crash_trace_is_a_real_failover(traces):
    """Guard the guard: the pinned crash trace must actually exercise
    takeover, or golden equality would vacuously pass."""
    trace = traces[("flyweight", "crash")]
    assert len(trace["failover_latencies"]) > 0
    assert any(
        takeover for entries in trace["starts"].values()
        for _, _, takeover in entries
    )
    # Everyone kept streaming after the crash: final playheads advanced
    # beyond every recorded start offset.
    for name, entries in trace["starts"].items():
        assert trace["final"][name] >= max(offset for _, offset, _ in entries)
