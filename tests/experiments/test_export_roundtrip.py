"""Round-trip regression for ``ScenarioResult.export_json``.

An earlier version of ``export_dict`` cherry-picked a float-friendly
subset of the client's time series and stringified absent migration
endpoints as ``"None"``.  This file pins the fixed contract: every
``ClientStats`` series is exported, everything survives a JSON
round-trip, and a missing migration endpoint is ``null``.
"""

import dataclasses
import json

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario

#: Every ClientStats time series the export must carry.
SERIES_KEYS = (
    "sw_occupancy",
    "hw_occupancy_bytes",
    "combined_occupancy",
    "skipped_cum",
    "late_cum",
    "overflow_cum",
    "received_bytes_cum",
    "displayed_cum",
)

SHORT_LAN = dataclasses.replace(
    LAN_SCENARIO,
    name="export-roundtrip",
    movie_duration_s=80.0,
    run_duration_s=80.0,
    schedule=((30.0, "crash-serving"), (50.0, "server-up")),
)


def roundtripped(tmp_path):
    result = run_scenario(SHORT_LAN)
    path = tmp_path / "export.json"
    result.export_json(str(path))
    with open(path) as fh:
        return result, json.load(fh)


def test_export_carries_every_client_series(tmp_path):
    result, loaded = roundtripped(tmp_path)
    assert sorted(loaded["series"]) == sorted(SERIES_KEYS)
    stats = result.client.stats
    for key in SERIES_KEYS:
        ts = getattr(stats, key if key != "displayed_cum" else "displayed_cum")
        assert loaded["series"][key]["t"] == list(ts.times)
        assert loaded["series"][key]["v"] == list(ts.values)
        # A run that crashed and migrated has real samples to lose —
        # make sure these series are not silently empty.
        assert len(loaded["series"][key]["t"]) == len(
            loaded["series"][key]["v"]
        )
    assert len(loaded["series"]["displayed_cum"]["t"]) > 0
    assert len(loaded["series"]["received_bytes_cum"]["t"]) > 0


def test_export_round_trips_exactly(tmp_path):
    result, loaded = roundtripped(tmp_path)
    # json.dump . json.load is the identity on the export dict.
    assert loaded == json.loads(json.dumps(result.export_dict()))
    assert loaded["spec"]["name"] == "export-roundtrip"
    assert loaded["counters"]["displayed"] == result.client.displayed_total


def test_startup_adoption_exports_null_from_server(tmp_path):
    _, loaded = roundtripped(tmp_path)
    migrations = loaded["migrations"]
    # Startup adoption + crash failover + load-balance rebalance.
    assert len(migrations) >= 2
    assert migrations[0]["from"] is None  # not the string "None"
    assert isinstance(migrations[0]["to"], str)
    # Rebalance records a detach step with a null destination; whatever
    # side is absent must be null, never the string "None".
    for m in migrations:
        for side in ("from", "to"):
            assert m[side] is None or (
                isinstance(m[side], str) and m[side] != "None"
            )
