"""``repro-vod profile``: cProfile any registered experiment."""

import pstats

import pytest

from repro.experiments import runner


def test_profile_writes_pstats_and_prints_hot_functions(tmp_path, capsys):
    out = tmp_path / "figure2.pstats"
    code = runner.main(
        ["profile", "figure2", "--top", "5", "--out", str(out)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "cProfile: top 5 by cumulative" in printed
    assert "read shares, not seconds" in printed
    assert f"[pstats dump written to {out}]" in printed
    # The dump is a loadable pstats artifact, not just a file.
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0


def test_profile_forwards_experiment_params(tmp_path, capsys):
    out = tmp_path / "sync.pstats"
    code = runner.main(
        ["profile", "sync-overhead", "--sort", "tottime", "--top", "3",
         "--out", str(out), "--arg", "clients=2"]
    )
    assert code == 0
    assert out.exists()
    assert "by tottime" in capsys.readouterr().out


def test_profile_rejects_unknown_targets():
    with pytest.raises(SystemExit):
        runner.main(["profile", "not-an-experiment"])


def test_profile_rejects_malformed_args():
    with pytest.raises(SystemExit):
        runner.main(["profile", "figure2", "--arg", "novalue"])
