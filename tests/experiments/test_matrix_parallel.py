"""The parallel scenario matrix must be invisible in the results.

``run_matrix(workers=N)`` fans the cells out over spawned processes;
every cell is an independent seeded simulation, so the sweep must
return byte-identical verdicts in the same deterministic cell order as
the historical serial path — that equality is what lets the CI gate
switch to the parallel runner without re-baselining."""

import json
import pickle

from repro.experiments.matrix import (
    Axis,
    Cell,
    ScenarioMatrix,
    _run_cell_task,
    run_matrix,
)

#: Two cells only — the equality claim, not the sweep, is under test.
TINY_MATRIX = ScenarioMatrix(
    axes=(
        Axis("topology", ("lan",)),
        Axis("workload", ("single",)),
        Axis("faults", ("crash-recover", "none")),
        Axis("clients", ("hardware",)),
    )
)


def test_parallel_matrix_equals_serial_byte_for_byte():
    serial = run_matrix(TINY_MATRIX, matrix_seed=11)
    parallel = run_matrix(TINY_MATRIX, matrix_seed=11, workers=2)
    assert len(serial) == len(TINY_MATRIX) == 2
    # Byte-identical, not merely equal: the gate compares serialized
    # artifacts against a committed serial baseline.
    assert (
        json.dumps(parallel, sort_keys=True)
        == json.dumps(serial, sort_keys=True)
    )
    # Cell order is the matrix's deterministic enumeration, not worker
    # completion order.
    assert [row["cell"] for row in parallel] == [
        cell.cell_id for cell in TINY_MATRIX.cells()
    ]


def test_cell_tasks_are_picklable_work_orders():
    # Spawned workers receive (cell, matrix_seed) by pickle and import
    # _run_cell_task by module path; both halves must survive that.
    cell = Cell.of(
        topology="lan", workload="single", faults="none", clients="hardware"
    )
    task = (cell, 11)
    assert pickle.loads(pickle.dumps(task)) == task
    restored = pickle.loads(pickle.dumps(_run_cell_task))
    assert restored is _run_cell_task
