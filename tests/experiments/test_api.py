"""The unified experiment entry point: run(spec) -> ExperimentResult."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentResult, ExperimentSpec, experiment_names, run
from repro.experiments.api import REGISTRY


def test_registry_covers_every_cli_experiment():
    names = experiment_names()
    for expected in (
        "figure2", "figure4", "figure5", "capacity", "qos", "sync-overhead",
        "emergency", "takeover", "overheads", "gcs", "faults", "chaos",
        "ablations",
    ):
        assert expected in names
    assert names == sorted(names)


def test_unknown_experiment_raises_repro_error():
    with pytest.raises(ReproError, match="unknown experiment"):
        run(ExperimentSpec(name="no-such-experiment"))


def test_spec_is_frozen():
    spec = ExperimentSpec(name="figure2")
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.name = "figure4"


def test_run_figure2_renders_blocks():
    result = run(ExperimentSpec(name="figure2"))
    assert isinstance(result, ExperimentResult)
    assert result.spec.name == "figure2"
    assert result.blocks
    text = result.render()
    assert "f_urgent" in text and "f_normal" in text


def test_default_params_are_merged_and_overridable():
    module, defaults = REGISTRY["sync-overhead"]
    assert defaults == {"measure": "sync"}
    result = run(ExperimentSpec(name="sync-overhead", params={"clients": 2}))
    # The dispatched spec carried both the registry default and the
    # caller's override.
    assert result.spec.params["measure"] == "sync"
    assert result.spec.params["clients"] == 2
    assert result.data is not None


def test_capacity_run_honours_populations_param():
    result = run(
        ExperimentSpec(name="capacity", params={"populations": [2]})
    )
    points = result.data
    assert [point.n_clients for point in points] == [2, 2]
    assert points[-1].n_servers == 2  # sweep appends the two-server point
