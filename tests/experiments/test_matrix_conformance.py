"""Conformance: the matrix's all-default cell IS the legacy LAN run.

The population/admission fields on :class:`ScenarioSpec` are additive
and default-off, and ``spec_for_cell`` promises that the all-default
cell (lan / single / crash-recover / hardware) reproduces
:data:`LAN_SCENARIO` exactly, modulo name and seed.  This file pins
both levels of that promise:

* **spec level** — field-for-field dataclass equality;
* **trace level** — running the default cell at LAN_SCENARIO's seed
  produces a byte-for-byte identical telemetry JSONL stream (only the
  meta line's ``scenario`` name differs, by construction).
"""

import dataclasses
import json

from repro.experiments.matrix import Cell, default_matrix, spec_for_cell
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario

DEFAULT_CELL = Cell.of(
    topology="lan",
    workload="single",
    faults="crash-recover",
    clients="hardware",
)


def test_default_cell_is_in_the_default_matrix():
    assert DEFAULT_CELL in default_matrix().cells()


def test_default_cell_spec_equals_lan_scenario_modulo_identity():
    spec = spec_for_cell(DEFAULT_CELL)
    relabelled = dataclasses.replace(
        LAN_SCENARIO, name=spec.name, seed=spec.seed
    )
    assert spec == relabelled


def strip_scenario_name(path):
    """The JSONL lines with the meta line's scenario name normalized
    (it is the one legitimate difference between the two runs)."""
    lines = []
    with open(path) as fh:
        for raw in fh:
            record = json.loads(raw)
            if record.get("kind") == "meta":
                record.get("fields", record).pop("scenario", None)
                record.pop("scenario", None)
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def test_default_cell_trace_is_byte_identical_to_lan_scenario(tmp_path):
    cell_spec = dataclasses.replace(
        spec_for_cell(DEFAULT_CELL), seed=LAN_SCENARIO.seed
    )
    cell_path = tmp_path / "cell.jsonl"
    lan_path = tmp_path / "lan.jsonl"
    run_scenario(cell_spec, telemetry_path=str(cell_path))
    run_scenario(LAN_SCENARIO, telemetry_path=str(lan_path))
    cell_lines = strip_scenario_name(cell_path)
    lan_lines = strip_scenario_name(lan_path)
    assert len(cell_lines) == len(lan_lines)
    assert cell_lines == lan_lines
