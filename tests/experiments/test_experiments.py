"""Smoke and shape tests for the experiment harness.

Heavyweight full-length runs live in benchmarks/; here short variants
verify the harness machinery (scenario scheduling, series extraction,
table rendering, CLI) and the key shape facts on reduced durations.
"""

import dataclasses

import pytest

from repro.experiments.figure2 import generate_policy_rows, render_figure2
from repro.experiments.scenarios import (
    LAN_SCENARIO,
    WAN_SCENARIO,
    run_scenario,
)


@pytest.fixture(scope="module")
def short_lan_result():
    spec = dataclasses.replace(
        LAN_SCENARIO,
        movie_duration_s=90.0,
        run_duration_s=90.0,
        schedule=((30.0, "crash-serving"), (50.0, "server-up")),
    )
    return run_scenario(spec)


class TestScenarioHarness:
    def test_events_fire_and_are_recorded(self, short_lan_result):
        assert short_lan_result.crash_times == [30.0]
        assert short_lan_result.server_up_times == [50.0]

    def test_crash_hits_the_serving_server(self, short_lan_result):
        deployment = short_lan_result.deployment
        crashed = [s for s in deployment.servers.values() if not s.running]
        assert len(crashed) == 1
        migrations = short_lan_result.client.stats.migrations
        first_server = migrations[0][2]
        assert crashed[0].process == first_server

    def test_client_survives_both_events(self, short_lan_result):
        client = short_lan_result.client
        assert client.decoder.stats.stall_time_s <= 1.0
        assert client.displayed_total > 80 * 30 * 0.95

    def test_load_balance_migrates_to_new_server(self, short_lan_result):
        deployment = short_lan_result.deployment
        assert deployment.server("server2").n_clients == 1

    def test_traffic_accounting(self, short_lan_result):
        assert short_lan_result.total_video_bytes() > 1e7
        assert short_lan_result.total_control_bytes() > 0
        assert short_lan_result.total_video_frames() > 2000

    def test_seed_override_changes_stochastic_run(self):
        # A lossless LAN run is legitimately seed-invariant at the
        # client; the WAN's random loss must differ across seeds.
        spec = dataclasses.replace(
            WAN_SCENARIO, movie_duration_s=20.0, run_duration_s=20.0,
            schedule=(),
        )
        a = run_scenario(spec, seed=1)
        b = run_scenario(spec, seed=2)
        # Different frames get lost under different seeds (the counts
        # can coincide; the byte totals expose the difference).
        assert (
            a.client.stats.received_bytes != b.client.stats.received_bytes
            or a.client.stats.received != b.client.stats.received
        )

    def test_same_seed_reproduces_exactly(self):
        spec = dataclasses.replace(
            WAN_SCENARIO, movie_duration_s=20.0, run_duration_s=20.0,
            schedule=(),
        )
        a = run_scenario(spec, seed=9)
        b = run_scenario(spec, seed=9)
        assert a.client.stats.received == b.client.stats.received
        assert a.client.stats.received_bytes == b.client.stats.received_bytes
        assert a.client.skipped_total == b.client.skipped_total

    def test_unknown_action_rejected(self):
        spec = dataclasses.replace(
            LAN_SCENARIO, run_duration_s=5.0, schedule=((1.0, "explode"),)
        )
        with pytest.raises(ValueError):
            run_scenario(spec)

    def test_wan_spec_runs(self):
        spec = dataclasses.replace(
            WAN_SCENARIO,
            movie_duration_s=40.0,
            run_duration_s=40.0,
            schedule=((10.0, "server-up"), (20.0, "crash-serving")),
        )
        result = run_scenario(spec)
        assert result.client.displayed_total > 30 * 30 * 0.9


class TestFigure2:
    def test_rows_cover_all_bands(self):
        rows = generate_policy_rows()
        requests = [row.request for row in rows]
        assert "emergency (level 2)" in requests
        assert "emergency (level 1)" in requests
        assert requests.count("increase") == 2
        assert requests.count("decrease") == 2
        assert "(none)" in requests

    def test_frequencies_match_figure(self):
        rows = generate_policy_rows()
        by_band = {row.band: row.frequency for row in rows}
        urgent = [f for band, f in by_band.items() if "critical" in band]
        assert all(f == "f_urgent" for f in urgent)
        normal = [row for row in rows if row.condition != "-"]
        assert all(row.frequency == "f_normal" for row in normal)

    def test_render_is_a_table(self):
        text = render_figure2()
        assert "Figure 2" in text
        assert "f_urgent" in text


class TestRunnerCli:
    def test_figure2_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["figure2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_parser_rejects_unknown(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["no-such-experiment"])


class TestExport:
    def test_export_dict_is_json_serializable(self, short_lan_result):
        import json

        blob = json.dumps(short_lan_result.export_dict())
        parsed = json.loads(blob)
        assert parsed["counters"]["displayed"] > 0
        assert parsed["events"]["crash"] == [30.0]
        assert len(parsed["series"]["sw_occupancy"]["t"]) > 100
        assert parsed["migrations"][0]["to"].startswith("server")

    def test_export_json_roundtrip(self, short_lan_result, tmp_path):
        import json

        path = tmp_path / "run.json"
        short_lan_result.export_json(str(path))
        parsed = json.loads(path.read_text())
        assert parsed["spec"]["network"] == "lan"
