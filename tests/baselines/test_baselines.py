"""Tests for the fault-tolerance baselines."""

import pytest

from repro.baselines.single_server import run_single_server_crash
from repro.baselines.striped import StripedCluster, run_striped_crash
from repro.errors import ServiceError
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


class TestStripedPlacement:
    def make(self):
        sim = Simulator(seed=1)
        topo = build_lan(sim, n_hosts=4)
        movie = Movie.synthetic("m", duration_s=10.0)
        cluster = StripedCluster(
            sim, topo.network, movie, [topo.host(i) for i in range(3)],
            stripe_frames=10,
        )
        return cluster

    def test_stripes_rotate_across_servers(self):
        cluster = self.make()
        assert cluster.primary_of(1) == 0
        assert cluster.primary_of(11) == 1
        assert cluster.primary_of(21) == 2
        assert cluster.primary_of(31) == 0

    def test_mirror_is_next_server(self):
        cluster = self.make()
        assert cluster.mirror_of(1) == 1
        assert cluster.mirror_of(21) == 0

    def test_owner_falls_back_to_mirror(self):
        cluster = self.make()
        cluster.crash_server(0)
        owner = cluster.owner_of(1)
        assert owner is not None
        assert owner.index == 1

    def test_block_lost_when_primary_and_mirror_dead(self):
        cluster = self.make()
        cluster.crash_server(0)
        cluster.crash_server(1)
        assert cluster.owner_of(1) is None  # primary 0, mirror 1: both dead
        assert cluster.owner_of(21) is not None  # primary 2 alive

    def test_needs_two_servers(self):
        sim = Simulator(seed=1)
        topo = build_lan(sim, n_hosts=2)
        with pytest.raises(ServiceError):
            StripedCluster(
                sim, topo.network, Movie.synthetic("m", duration_s=1.0),
                [topo.host(0)],
            )


class TestStripedFaultEnvelope:
    def test_healthy_cluster_plays_cleanly(self):
        client, cluster = run_striped_crash(kills=0, duration_s=40.0)
        assert client.stall_time_s < 1.0
        assert client.skipped_total < 20

    def test_one_failure_survived(self):
        """Tiger's claim: one failure is masked by the mirrors."""
        client, cluster = run_striped_crash(kills=1, duration_s=60.0)
        assert client.stall_time_s < 1.0
        assert cluster.lost_blocks == 0

    def test_two_failures_lose_video(self):
        """The paper's point: two failures break striping even when
        they are not concurrent."""
        client, cluster = run_striped_crash(kills=2, duration_s=60.0)
        assert cluster.lost_blocks > 0
        assert client.skipped_total > 100


class TestSingleServer:
    def test_crash_kills_the_stream(self):
        client, _deployment = run_single_server_crash(
            crash_at=20.0, duration_s=60.0
        )
        assert client.decoder.stats.stall_time_s > 20.0


class TestDeclustering:
    """Tiger's declustering factor: a failed cub's load fans out."""

    def make(self, decluster):
        sim = Simulator(seed=1)
        topo = build_lan(sim, n_hosts=6)
        movie = Movie.synthetic("m", duration_s=60.0)
        return StripedCluster(
            sim, topo.network, movie,
            [topo.host(i) for i in range(5)],
            stripe_frames=10, decluster=decluster,
        )

    def test_d1_dumps_everything_on_one_neighbour(self):
        cluster = self.make(decluster=1)
        shares = cluster.secondary_load_shares()
        assert shares[1] == pytest.approx(1.0)
        assert sum(shares[2:]) == 0.0

    def test_d3_spreads_the_load(self):
        cluster = self.make(decluster=3)
        shares = cluster.secondary_load_shares()
        for neighbour in (1, 2, 3):
            assert shares[neighbour] == pytest.approx(1 / 3, abs=0.05)

    def test_declustered_failover_still_serves_all_blocks(self):
        cluster = self.make(decluster=3)
        cluster.crash_server(0)
        movie = cluster.movie
        for frame in range(1, len(movie) + 1, cluster.stripe_frames):
            assert cluster.owner_of(frame) is not None

    def test_two_adjacent_failures_still_lose_blocks(self):
        """Declustering spreads load but cannot survive two failures
        that cover a block's primary and its mirror — the paper's
        point stands regardless of d."""
        cluster = self.make(decluster=2)
        cluster.crash_server(0)
        cluster.crash_server(1)
        lost = [
            frame
            for frame in range(1, len(cluster.movie) + 1,
                               cluster.stripe_frames)
            if cluster.owner_of(frame) is None
        ]
        assert lost

    def test_decluster_validation(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            self.make(decluster=0)
        with pytest.raises(ServiceError):
            self.make(decluster=5)
