"""Sanity of the exception hierarchy and the public exports."""

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_subsystem_error_taxonomy():
    assert issubclass(errors.AddressInUseError, errors.NetworkError)
    assert issubclass(errors.SocketClosedError, errors.NetworkError)
    assert issubclass(errors.NotMemberError, errors.GroupError)
    assert issubclass(errors.UnknownMovieError, errors.MediaError)
    assert issubclass(errors.NoServerAvailableError, errors.ServiceError)
    assert issubclass(errors.SessionError, errors.ServiceError)


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.sim", "repro.net", "repro.gcs", "repro.media",
        "repro.client", "repro.server", "repro.service", "repro.metrics",
        "repro.baselines", "repro.experiments", "repro.workloads",
    ],
)
def test_package_all_resolves(module_name):
    import importlib

    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_public_api_has_docstrings():
    """Every re-exported public symbol carries a docstring."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
