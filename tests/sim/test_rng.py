"""Unit tests for named random streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_deterministic_in_master_seed():
    a = RngRegistry(42).stream("net.loss")
    b = RngRegistry(42).stream("net.loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(10)]
    b = [registry.stream("b").random() for _ in range(10)]
    assert a != b


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_stream_independent_of_creation_order():
    forward = RngRegistry(9)
    forward.stream("first").random()  # draw before creating "second"
    value_forward = forward.stream("second").random()

    backward = RngRegistry(9)
    value_backward = backward.stream("second").random()
    assert value_forward == value_backward


def test_names_listing_sorted():
    registry = RngRegistry(1)
    registry.stream("zeta")
    registry.stream("alpha")
    assert registry.names() == ["alpha", "zeta"]


def test_simulator_exposes_rng(sim):
    stream = sim.rng("anything")
    assert 0.0 <= stream.random() < 1.0
