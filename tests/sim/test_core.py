"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator


def test_starts_at_time_zero():
    assert Simulator().now == 0.0


def test_call_after_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_after(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    seen = []
    sim.call_after(3.0, seen.append, "c")
    sim.call_after(1.0, seen.append, "a")
    sim.call_after(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in "abcde":
        sim.call_at(1.0, seen.append, label)
    sim.run()
    assert seen == list("abcde")


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().call_after(-0.1, lambda: None)


def test_nan_time_raises():
    with pytest.raises(SimulationError):
        Simulator().call_at(float("nan"), lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    seen = []
    handle = sim.call_after(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert not handle.active


def test_run_until_executes_only_due_events():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "early")
    sim.call_at(10.0, seen.append, "late")
    sim.run_until(5.0)
    assert seen == ["early"]
    assert sim.now == 5.0


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, seen.append, "edge")
    sim.run_until(5.0)
    assert seen == ["edge"]


def test_run_until_advances_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_run_until_backwards_raises():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_run_until_early_exit_clock_reflects_last_event():
    # Regression: the clock used to be pinned to the target time even
    # when the max_events budget stopped dispatch early, letting callers
    # observe a "now" with due events still pending before it.
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_at(t, seen.append, t)
    ran = sim.run_until(10.0, max_events=2)
    assert ran == 2
    assert seen == [1.0, 2.0]
    assert sim.now == 2.0  # not 10.0
    assert sim.next_event_time() == 3.0


def test_run_until_early_exit_resumes_without_compensation():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0):
        sim.call_at(t, seen.append, t)
    total = 0
    while sim.now < 10.0:
        total += sim.run_until(10.0, max_events=1)
    assert seen == [1.0, 2.0, 3.0]
    assert total == 3
    assert sim.now == 10.0


def test_run_until_exact_budget_keeps_clock_at_last_event():
    # Budget == number of due events: still an early exit (the loop
    # never got to look past the last event), so the clock stays put
    # and the next call finishes the slice.
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, 1.0)
    ran = sim.run_until(5.0, max_events=1)
    assert ran == 1 and sim.now == 1.0
    assert sim.run_until(5.0) == 0
    assert sim.now == 5.0


def test_run_until_complete_slice_still_advances_clock():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    ran = sim.run_until(5.0, max_events=100)
    assert ran == 1
    assert sim.now == 5.0


def test_run_until_stop_keeps_clock_at_last_event():
    sim = Simulator()
    sim.call_at(1.0, sim.stop)
    sim.call_at(2.0, lambda: None)
    ran = sim.run_until(5.0)
    assert ran == 1
    assert sim.now == 1.0


def test_consecutive_run_until_calls_continue():
    sim = Simulator()
    seen = []
    for t in (1.0, 11.0, 21.0):
        sim.call_at(t, seen.append, t)
    sim.run_until(10.0)
    sim.run_until(20.0)
    sim.run_until(30.0)
    assert seen == [1.0, 11.0, 21.0]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        sim.call_after(1.0, seen.append, "second")

    sim.call_at(1.0, first)
    sim.run()
    assert seen == ["second"]
    assert sim.now == 2.0


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "a")
    sim.call_at(2.0, sim.stop)
    sim.call_at(3.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    # A later run resumes the remaining events.
    sim.run()
    assert seen == ["a", "b"]


def test_run_returns_event_count():
    sim = Simulator()
    for t in range(5):
        sim.call_at(float(t), lambda: None)
    assert sim.run() == 5


def test_max_events_limit():
    sim = Simulator()
    for t in range(10):
        sim.call_at(float(t), lambda: None)
    assert sim.run(max_events=3) == 3
    assert sim.pending_count() == 7


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.call_after(1.0, lambda: None)
    drop = sim.call_after(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    del keep


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    first = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    first.cancel()
    assert sim.next_event_time() == 2.0


def test_next_event_time_empty_queue():
    assert Simulator().next_event_time() is None


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.call_soon(lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.call_soon(lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


def test_tracer_records_when_enabled():
    sim = Simulator(trace=True)
    sim.call_after(1.0, lambda: None)
    sim.run()
    assert len(sim.tracer.records) == 1
    assert sim.tracer.records[0].time == 1.0


def test_tracer_disabled_by_default():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    assert sim.tracer.records == []
