"""Unit tests for generator processes and periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.process import Process, Timer


class TestProcess:
    def test_runs_segments_at_yielded_delays(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append(("start", sim.now))
            yield 2.0
            seen.append(("mid", sim.now))
            yield 3.0
            seen.append(("end", sim.now))

        process = Process(sim, script())
        sim.run()
        assert seen == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]
        assert process.finished

    def test_zero_delay_allowed(self):
        sim = Simulator()
        seen = []

        def script():
            yield 0.0
            seen.append(sim.now)

        Process(sim, script())
        sim.run()
        assert seen == [0.0]

    def test_cancel_stops_future_segments(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append("a")
            yield 1.0
            seen.append("b")

        process = Process(sim, script())
        sim.run_until(0.5)
        process.cancel()
        sim.run()
        assert seen == ["a"]
        assert process.cancelled

    def test_cancel_after_finish_is_noop(self):
        sim = Simulator()

        def script():
            yield 0.5

        process = Process(sim, script())
        sim.run()
        process.cancel()
        assert process.finished
        assert not process.cancelled

    def test_non_numeric_yield_raises(self):
        sim = Simulator()

        def script():
            yield "nonsense"

        Process(sim, script())
        with pytest.raises(SimulationError):
            sim.run()


class TestTimer:
    def test_fires_periodically(self):
        sim = Simulator()
        times = []
        Timer(sim, 1.0, lambda: times.append(sim.now))
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_start_delay_overrides_first_interval(self):
        sim = Simulator()
        times = []
        Timer(sim, 1.0, lambda: times.append(sim.now), start_delay=0.25)
        sim.run_until(2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        timer = Timer(sim, 1.0, lambda: times.append(sim.now))
        sim.run_until(2.5)
        timer.cancel()
        sim.run_until(10.0)
        assert times == [1.0, 2.0]
        assert not timer.active

    def test_callback_args(self):
        sim = Simulator()
        seen = []
        Timer(sim, 1.0, seen.append, "tick")
        sim.run_until(2.0)
        assert seen == ["tick", "tick"]

    def test_callback_can_cancel_its_own_timer(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 1.0, lambda: (fired.append(sim.now), timer.cancel()))
        sim.run_until(5.0)
        assert fired == [1.0]

    def test_fired_count(self):
        sim = Simulator()
        timer = Timer(sim, 0.5, lambda: None)
        sim.run_until(2.0)
        assert timer.fired_count == 4

    def test_invalid_interval_raises(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), 0.0, lambda: None)

    def test_invalid_jitter_raises(self):
        with pytest.raises(SimulationError):
            Timer(Simulator(), 1.0, lambda: None, jitter=1.0)

    def test_jitter_bounds_respected(self):
        sim = Simulator(seed=5)
        times = []
        Timer(sim, 1.0, lambda: times.append(sim.now), jitter=0.2)
        sim.run_until(20.0)
        assert len(times) >= 15
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(0.6 <= gap <= 1.4 for gap in gaps)

    def test_jitter_is_deterministic_per_seed(self):
        def collect(seed):
            sim = Simulator(seed=seed)
            times = []
            Timer(sim, 1.0, lambda: times.append(sim.now), jitter=0.3)
            sim.run_until(10.0)
            return times

        assert collect(7) == collect(7)
        assert collect(7) != collect(8)
