"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=100,
    )
)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call_after(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1, max_size=60,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for i, delay in enumerate(delays):
        handles.append(sim.call_after(delay, fired.append, i))
    cancelled = set()
    for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(i)
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@given(
    same_time_count=st.integers(min_value=2, max_value=50),
    at=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_simultaneous_events_fire_in_scheduling_order(same_time_count, at):
    sim = Simulator()
    fired = []
    for i in range(same_time_count):
        sim.call_at(at, fired.append, i)
    sim.run()
    assert fired == list(range(same_time_count))


@given(
    cut=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=50,
    ),
)
@settings(max_examples=100, deadline=None)
def test_run_until_partitions_events_exactly(cut, delays):
    sim = Simulator()
    early, late = [], []
    for delay in delays:
        sim.call_after(
            delay,
            lambda d=delay: (early if d <= cut else late).append(d),
        )
    sim.run_until(cut)
    assert len(early) == sum(1 for d in delays if d <= cut)
    assert late == []
    sim.run()
    assert len(late) == sum(1 for d in delays if d > cut)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_named_streams_disjoint_from_each_other(seed):
    sim = Simulator(seed=seed)
    a = [sim.rng("alpha").random() for _ in range(5)]
    b = [sim.rng("beta").random() for _ in range(5)]
    assert a != b  # astronomically unlikely to collide


# ----------------------------------------------------------------------
# Batch-window tick arithmetic (the data-plane fast path)
# ----------------------------------------------------------------------

@given(
    start=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    rate=st.floats(min_value=0.1, max_value=240.0, allow_nan=False),
    count=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=200, deadline=None)
def test_batch_ticks_match_timer_chain_bit_for_bit(start, rate, count):
    """Every precomputed tick equals the float the slow path's
    back-to-back ``call_after(1/rate)`` chain produces — the conformance
    guarantee rests on this."""
    from repro.server.streamer import batch_ticks

    ticks = batch_ticks(start, rate, count)
    assert len(ticks) == count
    assert ticks[0] == start
    delta = 1.0 / rate
    t = start
    for tick in ticks:
        assert tick == t  # bit-identical, not approximately equal
        t = t + delta


@given(
    start=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    rate=st.floats(min_value=0.1, max_value=240.0, allow_nan=False),
    count=st.integers(min_value=2, max_value=200),
)
@settings(max_examples=200, deadline=None)
def test_batch_ticks_strictly_increasing_and_in_window(start, rate, count):
    """Ticks never run backwards (frames stay in order) and never land
    before the window opened (no past-due sends)."""
    from repro.server.streamer import batch_ticks

    ticks = batch_ticks(start, rate, count)
    assert all(b > a for a, b in zip(ticks, ticks[1:]))
    assert all(t >= start for t in ticks)


@given(
    start=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    rate_a=st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
    rate_b=st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
    count_a=st.integers(min_value=1, max_value=50),
    count_b=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_batch_ticks_never_cross_a_rate_change(
    start, rate_a, rate_b, count_a, count_b
):
    """A window recomputed at a rate change continues the old chain
    exactly: the first tick of the new window is one old-rate delta past
    the last old tick, and no new tick lands inside the old window."""
    from repro.server.streamer import batch_ticks

    first = batch_ticks(start, rate_a, count_a)
    boundary = first[-1] + 1.0 / rate_a
    second = batch_ticks(boundary, rate_b, count_b)
    assert second[0] == boundary
    assert all(t > first[-1] for t in second)


# ----------------------------------------------------------------------
# pending_count: O(1) incremental counter vs O(n) reference scan
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["schedule", "cancel", "run_some", "reschedule"]),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=1, max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_pending_count_agrees_with_scan_under_churn(ops):
    """The incrementally maintained count matches the reference scan
    after any interleaving of scheduling, cancellation (including double
    cancels), partial runs and handle recycling."""
    sim = Simulator()
    handles = []
    fired = []

    def fire(i):
        fired.append(i)

    for i, (op, value) in enumerate(ops):
        if op == "schedule":
            handles.append(sim.call_after(value, fire, i))
        elif op == "cancel" and handles:
            handle = handles[i % len(handles)]
            handle.cancel()
            handle.cancel()  # idempotent
        elif op == "run_some":
            sim.run(max_events=3)
        elif op == "reschedule" and handles:
            handle = handles[i % len(handles)]
            # Only recycle handles that are out of the queue: fired
            # (popped before their callback ran) or cancelled-and-popped.
            if handle.cancelled and handle not in sim._queue:
                sim.reschedule(handle, sim.now + value)
        assert sim.pending_count() == sim._pending_count_scan()
    sim.run()
    assert sim.pending_count() == sim._pending_count_scan() == 0
