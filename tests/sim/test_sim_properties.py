"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=100,
    )
)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call_after(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1, max_size=60,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for i, delay in enumerate(delays):
        handles.append(sim.call_after(delay, fired.append, i))
    cancelled = set()
    for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(i)
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@given(
    same_time_count=st.integers(min_value=2, max_value=50),
    at=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_simultaneous_events_fire_in_scheduling_order(same_time_count, at):
    sim = Simulator()
    fired = []
    for i in range(same_time_count):
        sim.call_at(at, fired.append, i)
    sim.run()
    assert fired == list(range(same_time_count))


@given(
    cut=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=50,
    ),
)
@settings(max_examples=100, deadline=None)
def test_run_until_partitions_events_exactly(cut, delays):
    sim = Simulator()
    early, late = [], []
    for delay in delays:
        sim.call_after(
            delay,
            lambda d=delay: (early if d <= cut else late).append(d),
        )
    sim.run_until(cut)
    assert len(early) == sum(1 for d in delays if d <= cut)
    assert late == []
    sim.run()
    assert len(late) == sum(1 for d in delays if d > cut)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_named_streams_disjoint_from_each_other(seed):
    sim = Simulator(seed=seed)
    a = [sim.rng("alpha").random() for _ in range(5)]
    b = [sim.rng("beta").random() for _ in range(5)]
    assert a != b  # astronomically unlikely to collide
