"""Client self-repair and emergency-pacing behaviour."""

import pytest

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def make_service(seed=8, movie_s=90.0):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=4)
    catalog = MovieCatalog([Movie.synthetic("m", duration_s=movie_s)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)
    return sim, deployment, client


class TestReconnectFallback:
    def test_reconnect_counter_stays_zero_in_healthy_run(self):
        sim, deployment, client = make_service()
        client.request_movie("m")
        sim.run_until(30.0)
        assert client.stats.reconnects == 0

    def test_client_reconnects_after_total_service_loss_and_return(self):
        sim, deployment, client = make_service()
        client.request_movie("m")
        sim.run_until(10.0)
        # Kill every server: frames stop entirely.
        for server in deployment.live_servers():
            server.crash()
        sim.run_until(25.0)
        assert client.stats.reconnects >= 1
        # Bring a fresh server up; the reconnect path re-admits the
        # client even though its old records have been tombstoned.
        deployment.add_server(3, "rescue")
        sim.run_until(45.0)
        assert client.serving_server is not None
        assert client.stats.received > 0

    def test_paused_client_does_not_reconnect(self):
        sim, deployment, client = make_service()
        client.request_movie("m")
        sim.run_until(10.0)
        client.pause()
        sim.run_until(40.0)  # long silence, but intentional
        assert client.stats.reconnects == 0


class TestEmergencyPacing:
    def test_server_accepts_few_emergencies_despite_client_spam(self):
        sim, deployment, client = make_service()
        client.request_movie("m")
        sim.run_until(20.0)
        # The client keeps requesting at the urgent cadence while below
        # the critical line (paper behaviour), but the server only
        # *accepts* an emergency when no quota is active, so the actual
        # refills stay few.
        assert client.stats.emergencies_sent >= 1
        session = next(
            s for server in deployment.servers.values()
            for s in server.sessions.values()
        )
        assert 1 <= session.rate.emergencies_started <= 4

    def test_crash_triggers_fresh_emergency(self):
        sim, deployment, client = make_service()
        client.request_movie("m")
        sim.run_until(30.0)
        before = client.stats.emergencies_sent
        for server in deployment.live_servers():
            if server.process == client.serving_server:
                server.crash()
        sim.run_until(40.0)
        assert client.stats.emergencies_sent > before


class TestStatsConsistency:
    def test_received_equals_displayed_plus_losses(self):
        sim, deployment, client = make_service(movie_s=30.0)
        client.request_movie("m")
        sim.run_until(45.0)
        assert client.finished
        # Every received frame was displayed, dropped late, or evicted.
        accounted = (
            client.displayed_total
            + client.late_total
            + client.stats.overflow_discards
        )
        assert accounted == client.stats.received

    def test_skipped_equals_overflow_on_lossless_lan(self):
        sim, deployment, client = make_service(movie_s=30.0)
        client.request_movie("m")
        sim.run_until(45.0)
        # On a lossless LAN, the only undisplayed frames are the ones
        # the client itself evicted.
        assert client.skipped_total == client.stats.overflow_discards


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_clean_playback_across_seeds(seed):
    """No seed-specific pathologies: a healthy run never stalls."""
    sim, deployment, client = make_service(seed=seed, movie_s=40.0)
    client.request_movie("m")
    sim.run_until(55.0)
    assert client.finished
    # Sub-frame-period startup hiccups are possible while the very first
    # frames trickle in; nothing approaching the 1 s noticeability bar.
    assert client.decoder.stats.stall_time_s <= 0.3
    assert all(t < 3.0 for t in client.decoder.stats.stall_starts)
    assert client.skipped_total <= 15


class TestSoftwareDecoderClient:
    def make(self, max_decode_fps=12, seed=12):
        from repro.client.player import ClientConfig

        sim, deployment, _ = make_service(seed=seed, movie_s=60.0)
        config = ClientConfig.software_decoder(max_decode_fps=max_decode_fps)
        client = deployment.attach_client(3, "soft", config=config)
        client.request_movie("m")
        return sim, deployment, client

    def test_requests_quality_with_i_frame_headroom(self):
        sim, deployment, client = self.make(max_decode_fps=12)
        sim.run_until(10.0)
        session = next(
            s for server in deployment.servers.values()
            for s in server.sessions.values()
            if s.client == client.process
        )
        # 80% of the decode limit: the server adds every I frame on top.
        assert session.quality_fps == 9

    def test_decode_rate_capped(self):
        sim, deployment, client = self.make(max_decode_fps=10)
        sim.run_until(31.0)
        # Displayed at most ~10 fps plus the burst allowance.
        assert client.displayed_total <= 10 * 30 + 20

    def test_playback_progresses_in_real_time(self):
        sim, deployment, client = self.make(max_decode_fps=10)
        sim.run_until(31.0)
        # Positions covered keep up with the wall clock even though few
        # frames are decoded (the server thins, the playhead paces).
        assert client.decoder.stats.last_displayed_index > 25 * 30

    def test_explicit_quality_overrides_preset(self):
        from repro.client.player import ClientConfig

        sim, deployment, _ = make_service(seed=12, movie_s=60.0)
        config = ClientConfig.software_decoder(max_decode_fps=15)
        client = deployment.attach_client(3, "soft", config=config)
        client.request_movie("m", quality_fps=5)
        sim.run_until(10.0)
        assert client.quality_fps == 5
