"""Unit-level tests of the client player's reception pipeline.

A deployment provides the plumbing, but these tests craft frame packets
directly at the UDP layer to pin down late/duplicate/overflow/epoch
accounting without depending on server behaviour.
"""

import pytest

from repro.client.player import ClientConfig, VoDClient
from repro.gcs.domain import GcsDomain
from repro.gcs.view import ProcessId
from repro.media.frames import Frame, FrameType
from repro.net.address import VIDEO_PORT, Endpoint
from repro.net.topologies import build_lan
from repro.net.udp import UdpSocket
from repro.service.protocol import EndOfStream, FramePacket
from repro.sim.core import Simulator


@pytest.fixture
def rig():
    sim = Simulator(seed=4)
    topo = build_lan(sim, n_hosts=2)
    domain = GcsDomain(sim, topo.network)
    client = VoDClient(domain, topo.host(0), "client0", ClientConfig())
    feeder = UdpSocket(topo.network.node(topo.host(1)), VIDEO_PORT)
    server_pid = ProcessId(topo.host(1), "feeder")

    def send(index, ftype=FrameType.P, size=5000, epoch=0):
        frame = Frame("m", index, ftype, size)
        feeder.sendto(
            Endpoint(client.node_id, VIDEO_PORT),
            FramePacket(frame, epoch, server_pid, sim.now),
            size,
        )

    return sim, client, send


def test_frames_counted_and_buffered(rig):
    sim, client, send = rig
    for index in (1, 2, 3):
        send(index)
    sim.run_until(0.01)
    assert client.stats.received == 3
    assert client.combined_occupancy == 3


def test_playback_starts_on_first_frame(rig):
    sim, client, send = rig
    assert not client.playback_started
    send(1)
    sim.run_until(0.1)
    assert client.playback_started
    assert client.displayed_total >= 1


def test_out_of_order_frames_reordered(rig):
    sim, client, send = rig
    for index in (2, 1, 4, 3):
        send(index)
    sim.run_until(0.5)
    assert client.displayed_total == 4
    assert client.skipped_total == 0


def test_frame_behind_decoder_is_late(rig):
    sim, client, send = rig
    for index in (1, 2, 3):
        send(index)
    sim.run_until(0.2)  # all pushed into hardware by now
    send(2)  # duplicate arrives after it was consumed
    sim.run_until(0.3)
    assert client.stats.late_frames == 1


def test_duplicate_in_buffer_counted_late(rig):
    sim, client, send = rig
    send(1)
    for index in (100, 100):
        send(index)
    sim.run_until(0.01)
    assert client.stats.duplicates == 1
    assert client.stats.late_frames == 1


def test_wrong_epoch_dropped(rig):
    sim, client, send = rig
    send(1, epoch=5)
    sim.run_until(0.1)
    assert client.stats.stale_epoch == 1
    assert client.stats.received == 0
    assert not client.playback_started


def test_overflow_discards_prefer_incremental(rig):
    sim, client, send = rig
    # Flood enough frames to fill both buffers (hardware ~48 at 5 KB
    # plus software 37) and force overflow discards.
    gop = [FrameType.I, FrameType.B, FrameType.B, FrameType.P]
    for index in range(2, 120):
        send(index, gop[index % 4], size=5000)
    sim.run_until(0.08)
    assert client.stats.overflow_discards >= 1
    assert client.stats.overflow_discarded_intra == 0


def test_skip_accounting_for_never_arrived_frames(rig):
    sim, client, send = rig
    send(1)
    send(5)  # 2..4 lost in the network
    sim.run_until(0.5)
    assert client.skipped_total == 3


def test_end_of_stream_finishes_after_drain(rig):
    from repro.net.packet import Datagram

    sim, client, send = rig
    for index in (1, 2, 3, 4):
        send(index)
    sim.run_until(0.1)
    eos = Datagram(
        Endpoint(1, VIDEO_PORT),
        Endpoint(client.node_id, VIDEO_PORT),
        EndOfStream("m", 0),
        16,
    )
    client.video_socket.handle_datagram(eos)
    sim.run_until(1.0)
    assert client.finished
    assert client.displayed_total == 4


def test_end_of_stream_with_stale_epoch_ignored(rig):
    from repro.net.packet import Datagram

    sim, client, send = rig
    send(1)
    sim.run_until(0.05)
    eos = Datagram(
        Endpoint(1, VIDEO_PORT),
        Endpoint(client.node_id, VIDEO_PORT),
        EndOfStream("m", 3),  # wrong epoch
        16,
    )
    client.video_socket.handle_datagram(eos)
    sim.run_until(0.5)
    assert not client.eos_received
    assert not client.finished


def test_received_bytes_tracked(rig):
    sim, client, send = rig
    send(1, size=7000)
    send(2, size=3000)
    sim.run_until(0.01)
    assert client.stats.received_bytes == 10_000
