"""Unit tests for the client software buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.buffers import InsertOutcome, SoftwareBuffer
from repro.errors import MediaError
from repro.media.frames import Frame, FrameType


def frame(index, ftype=FrameType.P, size=1000):
    return Frame("m", index, ftype, size)


def test_insert_and_pop_in_display_order():
    buffer = SoftwareBuffer(10)
    for index in (3, 1, 2):
        buffer.insert(frame(index))
    assert [buffer.pop_next().index for _ in range(3)] == [1, 2, 3]


def test_duplicate_detection():
    buffer = SoftwareBuffer(10)
    buffer.insert(frame(1))
    assert buffer.insert(frame(1)).outcome == InsertOutcome.DUPLICATE
    assert buffer.occupancy == 1


def test_overflow_evicts_highest_non_intra():
    buffer = SoftwareBuffer(3)
    buffer.insert(frame(1, FrameType.I))
    buffer.insert(frame(2, FrameType.B))
    buffer.insert(frame(3, FrameType.B))
    eviction = buffer.insert(frame(4, FrameType.B))
    assert eviction.outcome == InsertOutcome.STORED_EVICTED
    assert eviction.victim.index == 3  # the highest incremental frame
    assert 4 in buffer
    assert 1 in buffer  # the I frame survives


def test_overflow_spares_i_frames():
    buffer = SoftwareBuffer(3)
    buffer.insert(frame(1, FrameType.I))
    buffer.insert(frame(2, FrameType.I))
    buffer.insert(frame(3, FrameType.B))
    eviction = buffer.insert(frame(4, FrameType.P))
    assert not eviction.victim.is_intra


def test_overflow_with_all_i_frames_evicts_highest():
    buffer = SoftwareBuffer(2)
    buffer.insert(frame(1, FrameType.I))
    buffer.insert(frame(2, FrameType.I))
    eviction = buffer.insert(frame(3, FrameType.I))
    assert eviction.victim.index == 2
    assert 3 in buffer


def test_peek_does_not_remove():
    buffer = SoftwareBuffer(5)
    buffer.insert(frame(7))
    assert buffer.peek_next().index == 7
    assert buffer.occupancy == 1


def test_peek_empty_returns_none():
    assert SoftwareBuffer(5).peek_next() is None


def test_pop_empty_raises():
    with pytest.raises(MediaError):
        SoftwareBuffer(5).pop_next()


def test_clear():
    buffer = SoftwareBuffer(5)
    buffer.insert(frame(1))
    buffer.insert(frame(2))
    assert buffer.clear() == 2
    assert buffer.occupancy == 0


def test_is_full():
    buffer = SoftwareBuffer(2)
    buffer.insert(frame(1))
    assert not buffer.is_full
    buffer.insert(frame(2))
    assert buffer.is_full


def test_capacity_validation():
    with pytest.raises(MediaError):
        SoftwareBuffer(0)


def test_indices_sorted():
    buffer = SoftwareBuffer(5)
    for index in (9, 2, 5):
        buffer.insert(frame(index))
    assert buffer.indices() == [2, 5, 9]


@given(
    indices=st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=60
    ),
    capacity=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_never_exceeds_capacity_and_stays_sorted(indices, capacity):
    buffer = SoftwareBuffer(capacity)
    gop = [FrameType.I, FrameType.B, FrameType.B, FrameType.P]
    for index in indices:
        buffer.insert(frame(index, gop[index % 4]))
        assert buffer.occupancy <= capacity
    drained = []
    while buffer.peek_next() is not None:
        drained.append(buffer.pop_next().index)
    assert drained == sorted(set(drained))
