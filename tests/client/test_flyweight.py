"""Unit and property tests for the flyweight viewer pool.

A flyweight viewer is one row across the pool's columns; its playhead is
closed-form arithmetic inside the serving server's cohort.  These tests
pin the life cycle — admit, stream, fail over, promote to a full
client, demote back — and the invariants the fast path must keep: exact
frame-rate advancement, conservative takeover offsets, and playhead
monotonicity through promote/demote round trips.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.flyweight import FlyweightPool
from repro.client.player import ClientConfig
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.errors import ServiceError, SessionError
from repro.sim.core import Simulator
from repro.experiments.scale import build_edge_lan


def build_rig(n_viewers=8, movie_s=30.0, seed=77, n_servers=2):
    sim = Simulator(seed=seed)
    topology = build_edge_lan(sim, n_servers, 1)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=movie_s)])
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers)),
        server_config=ServerConfig(session_mux=True, batch_window_s=1.0),
        client_config=ClientConfig(session_mux=True, prebuffer_frames=330),
    )
    pool = deployment.attach_flyweight("feature")
    for _ in range(n_viewers):
        pool.add_viewer(n_servers)
    pool.connect_all(0.0)
    return sim, deployment, pool


def test_pool_requires_session_mux():
    sim = Simulator(seed=1)
    topology = build_edge_lan(sim, 2, 1)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=10.0)])
    deployment = Deployment(
        topology, catalog, server_nodes=[0, 1],
        server_config=ServerConfig(session_mux=True),
    )
    with pytest.raises(ServiceError):
        FlyweightPool(
            deployment, "feature",
            client_config=ClientConfig(session_mux=False),
        )


def test_viewers_stream_balanced():
    sim, deployment, pool = build_rig()
    sim.run_until(5.0)
    counts = pool.serving_counts()
    assert sum(counts.values()) == 8
    assert max(counts.values()) - min(counts.values()) <= 1
    assert all(pool.started)
    assert pool.frames_served() > 0


def test_rows_advance_at_exactly_the_frame_rate():
    """The closed form must tick like the live timer chain: +fps frames
    per second on a clean link, for every row."""
    sim, deployment, pool = build_rig()
    sim.run_until(4.0)
    first = pool.positions()
    sim.run_until(6.0)
    second = pool.positions()
    for name in first:
        assert second[name] - first[name] == 2 * 30


def test_every_viewer_finishes_a_short_movie():
    sim, deployment, pool = build_rig(movie_s=4.0)
    sim.run_until(12.0)
    assert all(pool.finished)
    assert sum(pool.serving_counts().values()) == 0
    movie_frames = 4 * 30
    assert pool.frames_served() == 8 * movie_frames
    assert all(off == movie_frames + 1 for off in pool.last_offsets)


def test_crash_fails_rows_over_with_conservative_resume():
    sim, deployment, pool = build_rig()
    sim.run_until(5.0)
    before = pool.positions()
    victim = max(deployment.live_servers(), key=lambda s: s.n_clients)
    survivor = next(
        s for s in deployment.live_servers() if s is not victim
    )
    victim_rows = set(victim._cohorts["feature"].rows)
    assert victim_rows
    victim.crash()
    sim.run_until(8.0)
    counts = pool.serving_counts()
    assert counts == {survivor.name: 8}
    cohort = survivor._cohorts["feature"]
    for client in victim_rows:
        name = client.name
        # Takeover resumed from the last *shared* offset: at or behind
        # the true playhead (never ahead — no skipped frames), within
        # one sync interval of it, and still advancing afterwards.
        resumed_base = cohort.rows[client][0]
        assert resumed_base <= before[name] + 1
        assert before[name] - resumed_base <= 30  # <= one 0.5s share + slack
        assert pool.positions()[name] > before[name]


def test_promote_to_full_client_continues_playback():
    sim, deployment, pool = build_rig()
    sim.run_until(5.0)
    before = pool.positions()["client0"]
    client = pool.promote("client0")
    sim.run_until(7.0)
    assert sum(pool.serving_counts().values()) == 7
    assert client.serving_server is not None
    assert client.displayed_total > 0
    assert client.combined_occupancy > 0
    # The promoted session picked up at the row's playhead, not at the
    # start of the movie.
    server = next(
        s for s in deployment.live_servers()
        if s.process == client.serving_server
    )
    assert server.sessions[client.process].position >= before


def test_promote_then_demote_returns_the_row():
    sim, deployment, pool = build_rig()
    sim.run_until(5.0)
    before = pool.positions()["client0"]
    client = pool.promote("client0")
    sim.run_until(6.5)
    client.pause()
    sim.run_until(7.0)
    client.resume()
    sim.run_until(7.5)
    client.seek(20.0)
    sim.run_until(8.5)
    pool.demote(client)
    sim.run_until(9.0)
    counts = pool.serving_counts()
    assert sum(counts.values()) == 8
    index = pool.row_of(client.process)
    assert index not in pool._promoted
    # The seek bumped the epoch; the demoted row carries it along with
    # the repositioned playhead.
    assert pool.epochs[index] >= 1
    assert pool.positions()["client0"] >= 20 * 30
    assert pool.positions()["client0"] >= before


def test_promotion_errors():
    sim, deployment, pool = build_rig()
    sim.run_until(5.0)
    with pytest.raises(SessionError):
        pool.promote("nobody")
    client = pool.promote("client1")
    with pytest.raises(SessionError):
        pool.promote("client1")
    sim.run_until(6.0)
    pool.demote(client)
    with pytest.raises(SessionError):
        pool.demote(client)


@given(
    row=st.integers(min_value=0, max_value=3),
    promote_tick=st.integers(min_value=0, max_value=10),
    dwell_ticks=st.integers(min_value=1, max_value=10),
    cycles=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_promote_demote_round_trip_properties(
    row, promote_tick, dwell_ticks, cycles
):
    """Whenever a viewer is promoted and demoted, and however often:
    the pool never loses or double-serves a viewer, and the viewer's
    server-side playhead never moves backwards."""
    sim, deployment, pool = build_rig(n_viewers=4, movie_s=120.0)
    sim.run_until(4.0)
    name = pool.names[row]
    watermark = pool.positions()[name]
    for _ in range(cycles):
        sim.run_until(sim.now + promote_tick * 0.1)
        client = pool.promote(name)
        assert sum(pool.serving_counts().values()) == 3
        sim.run_until(sim.now + dwell_ticks * 0.2)
        pool.demote(client)
        assert sum(pool.serving_counts().values()) == 4
        position = pool.positions()[name]
        assert position >= watermark
        watermark = position
    sim.run_until(sim.now + 2.0)
    # Still streaming as a row afterwards.
    assert pool.positions()[name] > watermark
    assert not pool.finished[row]
