"""Unit tests for the Figure 2 flow-control policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.flow_control import FlowControlConfig, FlowControlPolicy
from repro.errors import ServiceError
from repro.service.protocol import EmergencyLevel, FlowKind

CAPACITY = 79  # combined frames: 37 software + ~42 hardware
SW_CAPACITY = 37


@pytest.fixture
def policy():
    return FlowControlPolicy(
        FlowControlConfig(), CAPACITY, sw_capacity_frames=SW_CAPACITY
    )


class TestThresholds:
    def test_water_marks_computed_from_combined_capacity(self, policy):
        assert policy.low_water == round(0.73 * CAPACITY)
        assert policy.high_water == round(0.88 * CAPACITY)

    def test_critical_thresholds_from_software_capacity(self, policy):
        assert policy.critical_mild == pytest.approx(0.30 * SW_CAPACITY)
        assert policy.critical_severe == pytest.approx(0.15 * SW_CAPACITY)


class TestDecisions:
    def test_severe_emergency_below_15_percent(self, policy):
        message = policy.decide(40, sw_occupancy=0)
        assert message.kind == FlowKind.EMERGENCY
        assert message.level == EmergencyLevel.SEVERE

    def test_mild_emergency_between_15_and_30_percent(self, policy):
        message = policy.decide(48, sw_occupancy=8)  # 8/37 = 21.6%
        assert message.kind == FlowKind.EMERGENCY
        assert message.level == EmergencyLevel.MILD

    def test_boundary_16_percent_is_mild(self, policy):
        # 6/37 = 16.2%: above the 15% severe line.
        message = policy.decide(48, sw_occupancy=6)
        assert message.level == EmergencyLevel.MILD

    def test_below_low_water_requests_increase(self, policy):
        message = policy.decide(policy.low_water - 1, sw_occupancy=20)
        assert message.kind == FlowKind.INCREASE

    def test_at_or_above_high_water_requests_decrease(self, policy):
        assert policy.decide(policy.high_water, 30).kind == FlowKind.DECREASE
        assert policy.decide(CAPACITY, 37).kind == FlowKind.DECREASE

    def test_mid_band_falling_occupancy_requests_increase(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        policy.previous_occupancy = mid + 4
        assert policy.decide(mid, 25).kind == FlowKind.INCREASE

    def test_mid_band_rising_occupancy_requests_decrease(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        policy.previous_occupancy = mid - 4
        assert policy.decide(mid, 25).kind == FlowKind.DECREASE

    def test_mid_band_stable_occupancy_stays_quiet(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        policy.previous_occupancy = mid
        assert policy.decide(mid, 25) is None

    def test_mid_band_without_history_stays_quiet(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        assert policy.decide(mid, 25) is None

    def test_sw_occupancy_defaults_to_combined(self, policy):
        # Callers without split buffers use combined for both checks.
        message = policy.decide(3)
        assert message.kind == FlowKind.EMERGENCY


class TestCadence:
    def test_normal_band_sends_every_8th_frame(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        policy.previous_occupancy = mid + 2
        sent = [
            policy.on_frame_received(mid, 25) is not None for _ in range(16)
        ]
        # Frame 8 sends (occupancy fell vs previous); that send records
        # the occupancy, so the frame-16 window sees no trend and stays
        # quiet — exactly Figure 2's "occ == previous" row.
        assert sent.count(True) == 1
        assert sent[7]

    def test_urgent_band_sends_every_4th_frame(self, policy):
        sent = [
            policy.on_frame_received(30, 10) is not None for _ in range(8)
        ]
        assert sent.count(True) == 2
        assert sent[3] and sent[7]

    def test_quiet_decision_still_resets_counter(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        for _ in range(8):
            result = policy.on_frame_received(mid, 25)
        assert result is None  # no history: quiet
        # Counter restarted: next message only after 8 more frames.
        for _ in range(7):
            assert policy.on_frame_received(mid - 1, 25) is None

    def test_reset_cadence(self, policy):
        policy.previous_occupancy = 60
        policy.on_frame_received(60, 25)
        policy.reset_cadence()
        assert policy.previous_occupancy is None

    def test_sent_total_counts(self, policy):
        for _ in range(16):
            policy.on_frame_received(30, 10)
        assert policy.sent_total == 4

    def test_critical_sw_buffer_uses_urgent_cadence_in_normal_band(self, policy):
        """Regression: a critically drained software buffer must report
        at the urgent 4-frame cadence even while the *combined*
        occupancy sits between the water marks (where the cadence used
        to be keyed off combined occupancy alone)."""
        mid = (policy.low_water + policy.high_water) // 2
        sent = [
            policy.on_frame_received(mid, 0) is not None for _ in range(8)
        ]
        assert sent.count(True) == 2
        assert sent[3] and sent[7]
        # And those messages are the emergencies the cadence exists for.
        policy2 = FlowControlPolicy(
            FlowControlConfig(), CAPACITY, sw_capacity_frames=SW_CAPACITY
        )
        for _ in range(3):
            assert policy2.on_frame_received(mid, 0) is None
        message = policy2.on_frame_received(mid, 0)
        assert message is not None and message.kind == FlowKind.EMERGENCY

    def test_healthy_sw_buffer_keeps_normal_cadence_in_normal_band(self, policy):
        mid = (policy.low_water + policy.high_water) // 2
        policy.previous_occupancy = mid + 2
        sent = [
            policy.on_frame_received(mid, 25) is not None for _ in range(8)
        ]
        assert sent.count(True) == 1 and sent[7]


class TestValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ServiceError):
            FlowControlConfig(
                critical_severe_frac=0.5, critical_mild_frac=0.3
            ).validate()

    def test_water_mark_ordering_enforced(self):
        with pytest.raises(ServiceError):
            FlowControlConfig(
                low_water_frac=0.9, high_water_frac=0.8
            ).validate()

    def test_frequencies_positive(self):
        with pytest.raises(ServiceError):
            FlowControlConfig(normal_every_frames=0).validate()

    def test_capacity_minimum(self):
        with pytest.raises(ServiceError):
            FlowControlPolicy(FlowControlConfig(), 2)


class TestProperties:
    @given(
        occupancy=st.integers(min_value=0, max_value=CAPACITY),
        sw=st.integers(min_value=0, max_value=SW_CAPACITY),
        previous=st.one_of(
            st.none(), st.integers(min_value=0, max_value=CAPACITY)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_decide_is_total_and_deterministic(self, occupancy, sw, previous):
        policy = FlowControlPolicy(
            FlowControlConfig(), CAPACITY, sw_capacity_frames=SW_CAPACITY
        )
        policy.previous_occupancy = previous
        first = policy.decide(occupancy, sw)
        second = policy.decide(occupancy, sw)
        assert first == second
        if first is not None:
            assert first.kind in (
                FlowKind.INCREASE, FlowKind.DECREASE, FlowKind.EMERGENCY
            )

    @given(sw=st.integers(min_value=0, max_value=SW_CAPACITY))
    @settings(max_examples=100, deadline=None)
    def test_emergency_iff_below_mild_critical(self, sw):
        policy = FlowControlPolicy(
            FlowControlConfig(), CAPACITY, sw_capacity_frames=SW_CAPACITY
        )
        message = policy.decide(40, sw)
        if sw < policy.critical_mild:
            assert message.kind == FlowKind.EMERGENCY
        else:
            assert message is None or message.kind != FlowKind.EMERGENCY
