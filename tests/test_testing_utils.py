"""Tests for the fault-injection toolkit."""

from repro.gcs import GcsDomain, GroupListener
from repro.gcs.messages import Multicast, ViewCommit
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.address import Endpoint
from repro.net.topologies import build_lan
from repro.net.udp import UdpSocket
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.testing import (
    MessageDropper,
    crash_serving_server,
    flap_link,
    payload_type_is,
)


class TestMessageDropper:
    def test_drops_exactly_n(self, sim, lan):
        net = lan.network
        got = []
        UdpSocket(net.node(lan.host(1)), 9, on_receive=lambda d: got.append(d))
        sock = UdpSocket(net.node(lan.host(0)), 9)
        dropper = MessageDropper(
            net, lan.host(0), lan.infrastructure[0], max_drops=2
        ).install()
        for i in range(5):
            sock.sendto(Endpoint(lan.host(1), 9), i, 64)
        sim.run()
        assert len(dropper.dropped) == 2
        assert [d.payload for d in got] == [2, 3, 4]

    def test_predicate_filters(self, sim, lan):
        net = lan.network
        domain = GcsDomain(sim, net)
        a = domain.create_endpoint(lan.host(0))
        b = domain.create_endpoint(lan.host(1))
        got = []
        a.join("g", "a", GroupListener())
        b.join("g", "b", GroupListener(on_message=lambda s, p: got.append(p)))
        sim.run_until(2.0)
        dropper = MessageDropper(
            net, lan.host(0), lan.infrastructure[0],
            predicate=payload_type_is(Multicast), max_drops=1,
        ).install()
        a._members["g"].multicast("lost-once", 16)
        sim.run_until(4.0)
        # Dropped once but recovered by the GCS reliability machinery.
        assert len(dropper.dropped) == 1
        assert isinstance(dropper.dropped[0].payload, Multicast)
        assert "lost-once" in got

    def test_remove_restores(self, sim, lan):
        net = lan.network
        got = []
        UdpSocket(net.node(lan.host(1)), 9, on_receive=lambda d: got.append(d))
        sock = UdpSocket(net.node(lan.host(0)), 9)
        dropper = MessageDropper(
            net, lan.host(0), lan.infrastructure[0], max_drops=None
        ).install()
        sock.sendto(Endpoint(lan.host(1), 9), "lost", 64)
        dropper.remove()
        sock.sendto(Endpoint(lan.host(1), 9), "kept", 64)
        sim.run()
        assert [d.payload for d in got] == ["kept"]

    def test_commit_drop_scenario(self, sim, lan):
        """The toolkit reproduces the lost-ViewCommit regression in
        three lines."""
        net = lan.network
        domain = GcsDomain(sim, net)
        a = domain.create_endpoint(lan.host(0))
        a.join("g", "a", GroupListener())
        sim.run_until(1.0)
        dropper = MessageDropper(
            net, lan.host(0), lan.infrastructure[0],
            predicate=payload_type_is(ViewCommit), max_drops=1,
        ).install()
        views = []
        b = domain.create_endpoint(lan.host(1))
        b.join("g", "b", GroupListener(on_view=views.append))
        sim.run_until(5.0)
        assert len(dropper.dropped) == 1
        assert views and len(views[-1].members) == 2  # recovered


class TestFlapAndCrashHelpers:
    def test_flap_link_schedules_cycles(self, sim, lan):
        net = lan.network
        flap_link(sim, net, lan.host(0), lan.infrastructure[0],
                  start_s=1.0, flaps=2, period_s=0.5)
        sim.run_until(1.2)
        assert not net.link(lan.host(0), lan.infrastructure[0]).up
        sim.run_until(1.7)
        assert net.link(lan.host(0), lan.infrastructure[0]).up
        sim.run_until(2.2)
        assert not net.link(lan.host(0), lan.infrastructure[0]).up
        sim.run_until(3.0)
        assert net.link(lan.host(0), lan.infrastructure[0]).up

    def test_crash_serving_server(self):
        sim = Simulator(seed=3)
        topology = build_lan(sim, n_hosts=3)
        catalog = MovieCatalog([Movie.synthetic("m", duration_s=30)])
        deployment = Deployment(topology, catalog, server_nodes=[0, 1])
        client = deployment.attach_client(2)
        client.request_movie("m")
        sim.run_until(10.0)
        serving_before = client.serving_server
        crashed = crash_serving_server(deployment, client)
        assert crashed is not None
        assert not crashed.running
        assert crashed.process == serving_before

    def test_crash_serving_server_none_when_unserved(self):
        sim = Simulator(seed=3)
        topology = build_lan(sim, n_hosts=3)
        catalog = MovieCatalog([Movie.synthetic("m", duration_s=30)])
        deployment = Deployment(topology, catalog, server_nodes=[0])
        client = deployment.attach_client(2)
        assert crash_serving_server(deployment, client) is None
