"""The conservative windowed mode, pinned against goldens.

Three equalities, in increasing strength:

1. *Windowing perturbs nothing*: a shard advanced window-by-window
   under the barrier protocol finishes bit-identical to the same shard
   run flat-out (the kernel's chunked ``run_until`` contract).
2. *The shard decomposition is exact*: the union of per-shard traces
   equals the single-process run of the combined deployment — and both
   equal the committed golden (``tests/data/golden_shard_sync.json``).
3. *Process isolation changes nothing*: spawned workers produce the
   same results and digests as the inline protocol.
"""

import json
import pathlib
from types import SimpleNamespace

import pytest

from repro.shard.plan import ShardPlan
from repro.shard.runner import ShardError
from repro.shard.sync import (
    merge_boundary,
    min_boundary_lookahead,
    run_windowed,
    window_targets,
)
from repro.shard.worker import (
    build_golden_shard,
    merge_traces,
    run_disjoint_single,
    run_shard_straight,
)

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "data" / "golden_shard_sync.json"
)


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


def _tasks(config):
    plan = ShardPlan(n_shards=config["n_shards"], seed=config["seed"])
    return plan.tasks(config["n_shards"] * config["viewers_per_shard"])


# ----------------------------------------------------------------------
# The lookahead and barrier-grid math
# ----------------------------------------------------------------------
def test_min_boundary_lookahead_is_the_fastest_link():
    links = [SimpleNamespace(delay_s=0.5), SimpleNamespace(delay_s=0.02)]
    assert min_boundary_lookahead(*links) == 0.02


def test_min_boundary_lookahead_rejects_degenerate_boundaries():
    with pytest.raises(ShardError):
        min_boundary_lookahead()
    with pytest.raises(ShardError):
        min_boundary_lookahead(SimpleNamespace(delay_s=0.0))


def test_window_targets_cover_the_duration_exactly():
    targets = window_targets(10.0, 0.5)
    assert len(targets) == 20
    assert targets[0] == 0.5
    assert targets[-1] == 10.0
    # A duration that is not a multiple of the lookahead ends on a
    # short final window, never past the end.
    assert window_targets(1.2, 0.5) == [0.5, 1.0, 1.2]
    with pytest.raises(ShardError):
        window_targets(10.0, 0.0)
    with pytest.raises(ShardError):
        window_targets(0.0, 0.5)


def test_merge_boundary_is_order_independent():
    reports = [
        {"shard": 0, "events": 10, "frames": 100},
        {"shard": 1, "events": 7, "frames": 50},
    ]
    forward = merge_boundary(3, 2.0, reports)
    backward = merge_boundary(3, 2.0, list(reversed(reports)))
    assert forward == backward
    assert forward["events"] == 17
    assert forward["frames"] == 150
    assert forward["shards"][0]["events"] == 10


# ----------------------------------------------------------------------
# Golden equivalences
# ----------------------------------------------------------------------
def test_windowed_equals_straight_and_single_process_golden():
    golden = _golden()
    config = golden["config"]
    tasks = _tasks(config)

    results, digests = run_windowed(
        tasks,
        build_golden_shard,
        lookahead_s=config["lookahead_s"],
        duration_s=config["duration_s"],
        inline=True,
    )

    # (1) The barrier grid did not perturb any shard: windowed ==
    # straight, field for field (only the window count may differ —
    # the straight run never sees a digest).
    for task, windowed in zip(tasks, results):
        straight = run_shard_straight(task, config["duration_s"])
        # Conservative lag: the digest from window k arrives with the
        # window k+1 go-ahead, so the last window's digest is never
        # absorbed — shards see exactly len(digests) - 1 of them.
        assert windowed["windows"] == len(digests) - 1
        for key in ("shard", "events", "starts", "final"):
            assert windowed[key] == straight[key], key

    # (2) The union of shard traces is the combined run — both equal
    # the committed golden.
    merged = merge_traces(results)
    assert merged["starts"] == golden["combined"]["starts"]
    assert merged["final"] == golden["combined"]["final"]

    single = run_disjoint_single(
        n_shards=config["n_shards"],
        duration_s=config["duration_s"],
        viewers_per_shard=config["viewers_per_shard"],
        seed=config["seed"],
    )
    assert single["events"] == golden["combined"]["events"]
    assert single["starts"] == golden["combined"]["starts"]
    assert single["final"] == golden["combined"]["final"]

    # The digest stream is the coupling surface: one entry per window,
    # event totals monotone, final totals equal the shard sums.
    assert len(digests) == len(
        window_targets(config["duration_s"], config["lookahead_s"])
    )
    totals = [digest["events"] for digest in digests]
    assert totals == sorted(totals)
    assert digests[-1]["events"] == sum(r["events"] for r in results)
    assert sorted(digests[-1]["shards"]) == [0, 1]


def test_every_viewer_is_traced_exactly_once():
    golden = _golden()
    config = golden["config"]
    names = set(golden["combined"]["final"])
    assert len(names) == config["n_shards"] * config["viewers_per_shard"]
    # Every client started exactly one session on its group's server.
    for name, sessions in golden["combined"]["starts"].items():
        group = name[1]  # "s<group>c<index>"
        assert [entry[0] for entry in sessions] == [f"server{group}"]


def test_spawned_windowed_run_equals_inline():
    golden = _golden()
    config = dict(golden["config"], duration_s=4.0)
    tasks = _tasks(config)
    inline_results, inline_digests = run_windowed(
        tasks, build_golden_shard,
        lookahead_s=config["lookahead_s"], duration_s=config["duration_s"],
        inline=True,
    )
    spawn_results, spawn_digests = run_windowed(
        tasks, build_golden_shard,
        lookahead_s=config["lookahead_s"], duration_s=config["duration_s"],
        inline=False,
    )
    assert spawn_results == inline_results
    assert spawn_digests == inline_digests


def test_windowed_rejects_unpicklable_builders():
    with pytest.raises(ShardError):
        run_windowed(
            [1], lambda task: task, lookahead_s=0.5, duration_s=1.0,
            inline=True,
        )


def test_builder_resolves_module_path_strings():
    golden = _golden()
    config = golden["config"]
    tasks = _tasks(config)[:1]
    results, _ = run_windowed(
        tasks,
        "repro.shard.worker:build_golden_shard",
        lookahead_s=0.5,
        duration_s=2.0,
        inline=True,
    )
    assert results[0]["shard"] == 0
