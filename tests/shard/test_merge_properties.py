"""The merge layer's two contracts, tested property-first.

Order independence: every merge in :mod:`repro.shard.merge` must give
the same answer for any permutation of its shard inputs — worker
completion order cannot leak into results.

Single-process equivalence: merging the per-shard views of a *disjoint*
client population equals one accumulator/monitor/registry fed the
combined event stream.  The equivalence runs through the real telemetry
classes (:class:`QoEAccumulator`, :class:`SloMonitor`,
:class:`MetricRegistry`) — the merge layer is judged against what one
process would actually have computed, not against a reimplementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.merge import (
    MergeError,
    ScoreHistogram,
    merge_failovers,
    merge_metric_snapshots,
    merge_score_histograms,
    merge_scorecards,
    merge_slo_windows,
    sharded_slo_summary,
    slo_summary_from_windows,
)
from repro.telemetry.bus import Telemetry, TelemetryEvent
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.qoe import QoEAccumulator
from repro.telemetry.slo import SloMonitor, WindowSnapshot


# ----------------------------------------------------------------------
# Order independence (property-based)
# ----------------------------------------------------------------------
@st.composite
def shard_score_lists(draw):
    """Integer-valued scores split across shards (exact float sums)."""
    n_shards = draw(st.integers(min_value=1, max_value=5))
    return [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=100),
                min_size=0,
                max_size=30,
            )
        )
        for _ in range(n_shards)
    ]


@given(shards=shard_score_lists())
def test_score_histogram_merge_is_order_independent(shards):
    def hist_of(scores):
        histogram = ScoreHistogram()
        for score in scores:
            histogram.add(float(score))
        return histogram

    forward = merge_score_histograms(hist_of(s) for s in shards)
    backward = merge_score_histograms(hist_of(s) for s in reversed(shards))
    assert forward.as_dict() == backward.as_dict()

    # And equals one histogram over the concatenated population.
    combined = hist_of([score for shard in shards for score in shard])
    assert forward.counts == combined.counts
    assert forward.n == combined.n
    assert forward.total == combined.total
    assert forward.quantile(0.5) == combined.quantile(0.5)


@given(shards=shard_score_lists())
def test_score_histogram_roundtrips_as_dict(shards):
    histogram = ScoreHistogram()
    for shard in shards:
        for score in shard:
            histogram.add(float(score))
    restored = ScoreHistogram.from_dict(
        dict(histogram.as_dict(), total=histogram.total)
    )
    assert restored.counts == histogram.counts
    assert restored.n == histogram.n
    assert restored.total == histogram.total


@given(
    latencies=st.lists(
        st.lists(st.floats(0.0, 5.0, allow_nan=False), max_size=10),
        min_size=1,
        max_size=5,
    )
)
def test_merge_failovers_is_order_independent(latencies):
    assert merge_failovers(latencies) == merge_failovers(reversed(latencies))
    assert merge_failovers(latencies) == sorted(
        value for shard in latencies for value in shard
    )


def test_merge_scorecards_unions_and_rejects_duplicates():
    merged = merge_scorecards([{"a": 1, "b": 2}, {"c": 3}])
    assert merged == {"a": 1, "b": 2, "c": 3}
    assert merge_scorecards([{"c": 3}, {"a": 1, "b": 2}]) == merged
    with pytest.raises(MergeError):
        merge_scorecards([{"a": 1}, {"a": 2}])


def _window(start, end, clients, stalled, failovers, wf, extra, base, rej=0):
    return WindowSnapshot(
        start=start, end=end, clients=clients, stalled=stalled,
        failover_durations=list(failovers), window_failovers=wf,
        extra_frames=extra, base_frames=base, rejects=rej,
    )


@st.composite
def shard_window_lists(draw):
    """Per-shard window sequences on one shared 10-second grid.

    Shards may go quiet early (shorter lists) — the merge forward-fills
    their cumulative state.  Failovers accumulate (the snapshot's list
    is cumulative over the run, mirroring SloMonitor).
    """
    n_windows = draw(st.integers(min_value=1, max_value=4))
    n_shards = draw(st.integers(min_value=1, max_value=4))
    shards = []
    for _ in range(n_shards):
        length = draw(st.integers(min_value=1, max_value=n_windows))
        cumulative = []
        windows = []
        for index in range(length):
            new = draw(
                st.lists(st.integers(1, 40), min_size=0, max_size=3)
            )
            cumulative = cumulative + [value / 8.0 for value in new]
            windows.append(
                _window(
                    start=index * 10.0,
                    end=(index + 1) * 10.0,
                    clients=draw(st.integers(0, 50)),
                    stalled=draw(st.integers(0, 5)),
                    failovers=cumulative,
                    wf=len(new),
                    extra=float(draw(st.integers(0, 100))),
                    base=float(draw(st.integers(0, 1000))),
                    rej=draw(st.integers(0, 3)),
                )
            )
        shards.append(windows)
    return shards


@given(shards=shard_window_lists())
@settings(max_examples=50)
def test_merge_slo_windows_is_order_independent(shards):
    forward = merge_slo_windows(shards)
    backward = merge_slo_windows(list(reversed(shards)))
    assert forward == backward
    assert slo_summary_from_windows(forward) == slo_summary_from_windows(
        backward
    )


def test_merge_slo_windows_rejects_misaligned_grids():
    aligned = [_window(0.0, 10.0, 4, 0, [], 0, 0.0, 100.0)]
    skewed = [_window(0.0, 12.0, 4, 0, [], 0, 0.0, 100.0)]
    with pytest.raises(MergeError):
        merge_slo_windows([aligned, skewed])


def test_merge_slo_windows_forward_fills_quiet_shards():
    busy = [
        _window(0.0, 10.0, 3, 0, [0.5], 1, 0.0, 100.0),
        _window(10.0, 20.0, 3, 1, [0.5, 0.75], 1, 0.0, 100.0),
    ]
    quiet = [_window(0.0, 10.0, 2, 0, [0.25], 1, 0.0, 50.0)]
    merged = merge_slo_windows([busy, quiet])
    assert merged[0].clients == 5
    assert merged[0].failover_durations == [0.25, 0.5]
    # Window 2: the quiet shard still *has* its cumulative clients and
    # failovers — it just contributed nothing new.
    assert merged[1].clients == 5
    assert merged[1].stalled == 1
    assert merged[1].failover_durations == [0.25, 0.5, 0.75]
    assert merged[1].window_failovers == 1
    assert merged[1].base_frames == 100.0


# ----------------------------------------------------------------------
# Single-process equivalence through the real telemetry classes
# ----------------------------------------------------------------------
#: A disjoint 2-shard population: shard 0 owns a*, shard 1 owns b*.
SHARD_CLIENTS = (("a0", "a1"), ("b0", "b1"))
END_T = 20.0


def _qoe_events():
    """A combined timeline touching every scorecard dimension.

    Times and rates are picked to be exactly representable so float
    accumulation order cannot blur the equality.
    """
    events = []
    for shard in SHARD_CLIENTS:
        for offset, name in enumerate(shard):
            t0 = 0.5 + offset
            events += [
                (t0, "span.begin",
                 {"span": "client.session", "key": name, "movie": "m"}),
                (t0 + 0.5, "client.playback.start", {"client": name}),
                (3.0 + offset, "client.stall.begin", {"client": name}),
                (4.0 + offset, "client.stall.end", {"client": name}),
                (6.0, "client.migrate",
                 {"client": name, "from_server": "server0",
                  "to_server": "server1"}),
                (8.0, "server.rate",
                 {"client": name, "rate_fps": 40.0, "base_fps": 30.0,
                  "emergency": 1}),
                (10.0, "server.rate",
                 {"client": name, "rate_fps": 30.0, "base_fps": 30.0,
                  "emergency": 0}),
                (18.0, "span.end",
                 {"span": "client.session", "key": name,
                  "displayed": 480, "late": 2, "skipped": 4}),
            ]
    return sorted(events, key=lambda item: item[0])


def _owner_shard(fields):
    name = str(
        fields.get("client") or fields.get("key") or "?"
    ).split("@", 1)[0]
    return 0 if name.startswith("a") else 1


def test_qoe_scorecard_merge_equals_single_process():
    combined = QoEAccumulator()
    shard_accs = [QoEAccumulator(), QoEAccumulator()]
    for t, kind, fields in _qoe_events():
        combined.feed(t, kind, fields)
        shard_accs[_owner_shard(fields)].feed(t, kind, fields)

    # The shared end_t matters: finish() settles open episodes at
    # max(end_t, last event seen), and shards see different last events.
    combined_cards = combined.finish(END_T)
    merged = merge_scorecards(
        accumulator.finish(END_T) for accumulator in shard_accs
    )
    assert sorted(merged) == sorted(combined_cards)
    for name, card in combined_cards.items():
        assert merged[name].as_dict() == card.as_dict()
    # Sanity: the timeline actually exercised the dimensions.
    assert all(card.stall_count == 1 for card in combined_cards.values())
    assert all(card.migrations == 1 for card in combined_cards.values())
    assert all(
        card.emergency_extra_frames > 0 for card in combined_cards.values()
    )


def _slo_events(shard):
    """One shard's stream: activity in every 5-second window."""
    events = []
    for index, name in enumerate(SHARD_CLIENTS[shard]):
        for window in range(4):
            events.append(
                (window * 5.0 + 1.0 + index * 0.5,
                 "client.playback.start", {"client": name})
            )
        events += [
            (7.0 + index, "client.stall.begin", {"client": name}),
            (8.0 + index, "client.stall.end", {"client": name}),
            (11.0 + shard + index, "span.end",
             {"span": "takeover", "duration_s": 0.25 * (shard + index + 1)}),
            (12.0, "server.rate",
             {"client": name, "rate_fps": 40.0, "base_fps": 30.0,
              "emergency": 1}),
            (14.0, "server.rate",
             {"client": name, "rate_fps": 30.0, "base_fps": 30.0,
              "emergency": 0}),
        ]
    return events


def test_slo_window_merge_equals_single_process():
    window_s = 5.0
    combined_monitor = SloMonitor(
        Telemetry(), window_s=window_s, record_windows=True
    )
    shard_monitors = [
        SloMonitor(Telemetry(), window_s=window_s, record_windows=True)
        for _ in SHARD_CLIENTS
    ]
    per_shard = [_slo_events(0), _slo_events(1)]
    for t, kind, fields in sorted(
        (event for shard in per_shard for event in shard),
        key=lambda item: item[0],
    ):
        combined_monitor._on_event(TelemetryEvent(t, kind, fields))
    for monitor, events in zip(shard_monitors, per_shard):
        for t, kind, fields in sorted(events, key=lambda item: item[0]):
            monitor._on_event(TelemetryEvent(t, kind, fields))

    combined_summary = combined_monitor.finish(END_T)
    for monitor in shard_monitors:
        monitor.finish(END_T)
    merged_windows = merge_slo_windows(
        [monitor.windows for monitor in shard_monitors]
    )

    # Window for window, the merge equals what the combined monitor saw
    # (failover lists compare as multisets: the combined monitor keeps
    # event order, the merge keeps sorted order — the rules sort anyway).
    assert len(merged_windows) == len(combined_monitor.windows)
    for merged, single in zip(merged_windows, combined_monitor.windows):
        assert (merged.start, merged.end) == (single.start, single.end)
        assert merged.clients == single.clients
        assert merged.stalled == single.stalled
        assert merged.window_failovers == single.window_failovers
        assert merged.failover_durations == sorted(single.failover_durations)
        assert merged.extra_frames == single.extra_frames
        assert merged.base_frames == single.base_frames

    assert slo_summary_from_windows(merged_windows) == combined_summary


def test_metric_snapshot_merge_equals_single_process():
    combined = MetricRegistry()
    shard_a, shard_b = MetricRegistry(), MetricRegistry()
    for registry in (combined, shard_a):
        registry.counter("net.frames").inc(100)
        registry.histogram("takeover.latency_s").observe(0.25)
        registry.histogram("takeover.latency_s").observe(0.5)
    for registry in (combined, shard_b):
        registry.counter("net.frames").inc(50)
        registry.counter("gcs.views").inc(3)
        registry.histogram("takeover.latency_s").observe(1.0)
    merged = merge_metric_snapshots(
        [shard_a.snapshot(), shard_b.snapshot()]
    )
    assert merged == combined.snapshot()
    assert merged == merge_metric_snapshots(
        [shard_b.snapshot(), shard_a.snapshot()]
    )


def test_metric_snapshot_merge_guards():
    with pytest.raises(MergeError):
        merge_metric_snapshots([{"x": 1}, {"x": {"count": 1, "total": 1.0,
                                                "mean": 1.0, "buckets": [1],
                                                "counts": [1, 0]}}])
    histogram_a = {"count": 1, "total": 1.0, "mean": 1.0,
                   "buckets": [1.0], "counts": [1, 0]}
    histogram_b = {"count": 1, "total": 1.0, "mean": 1.0,
                   "buckets": [2.0], "counts": [1, 0]}
    with pytest.raises(MergeError):
        merge_metric_snapshots([{"h": histogram_a}, {"h": histogram_b}])
    # Gauges keep the max (no global last-writer across processes).
    assert merge_metric_snapshots([{"g": 1.5}, {"g": 0.5}])["g"] == 1.5
    assert merge_metric_snapshots([{"g": None}, {"g": 0.5}])["g"] == 0.5


def test_sharded_slo_summary_uses_the_real_rules():
    summary = sharded_slo_summary(
        n_clients=1000, duration_s=8.0,
        failover_latencies=[0.2, 0.3, 0.4],
    )
    assert summary["glitch_free_fraction"]["ok"] is True
    assert summary["failover_p99_s"]["ok"] is True
    assert summary["failover_p99_s"]["value"] == 0.4
    # A latency past the paper's 2-second bound must breach.
    breached = sharded_slo_summary(
        n_clients=10, duration_s=8.0, failover_latencies=[3.0],
    )
    assert breached["failover_p99_s"]["ok"] is False
    assert breached["failover_p99_s"]["breaches"] == 1
