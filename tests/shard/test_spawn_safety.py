"""Fork/spawn footguns must fail loudly, before any process starts.

Workers and task payloads are test-pickled up front; a lambda or a
live-object payload raises :class:`ShardError` with guidance instead of
a mid-pool ``PicklingError``.  The real-spawn tests prove the pool uses
the spawn start method (fresh interpreters, not forked copies) and that
each worker sees exactly the content-addressed seed from its task.

Workers live at module top level: spawned children re-import the worker
by qualified name, and the spawn preparation data carries the parent's
``sys.path``, so test modules are importable in the child.
"""

import os
import threading

import pytest

from repro.shard.plan import ShardPlan, shard_seed
from repro.shard.runner import (
    ShardError,
    default_workers,
    map_tasks,
    run_shards,
    spawn_context,
)


def _echo_worker(task):
    """Top-level, importable — what a legal spawn worker looks like."""
    return {
        "shard_id": task.shard_id,
        "seed": task.seed,
        "n_viewers": task.n_viewers,
        "pid": os.getpid(),
    }


def _double(value):
    return value * 2


def test_spawn_context_is_explicit():
    assert spawn_context().get_start_method() == "spawn"
    assert default_workers() >= 1


def test_lambda_worker_fails_fast_with_guidance():
    with pytest.raises(ShardError) as excinfo:
        map_tasks(lambda task: task, [1, 2], inline=True)
    message = str(excinfo.value)
    assert "spawn" in message
    assert "top-level callables" in message


def test_live_object_payload_fails_fast():
    # A lock stands in for any live simulation object (observer,
    # deployment, telemetry bus) smuggled into a task payload.
    with pytest.raises(ShardError) as excinfo:
        map_tasks(_double, [threading.Lock()], inline=True)
    assert "task 0" in str(excinfo.value)
    assert "never live objects" in str(excinfo.value)


def test_inline_mode_still_validates_picklability():
    # inline=True never pickles for real — but it must enforce the same
    # contract so an inline-tested config cannot fail only under spawn.
    def nested(value):
        return value

    with pytest.raises(ShardError):
        map_tasks(nested, [1], inline=True)
    assert map_tasks(_double, [1, 2, 3], inline=True) == [2, 4, 6]


def test_spawned_workers_get_content_addressed_seeds():
    plan = ShardPlan(n_shards=3, seed=42)
    tasks = plan.tasks(30)
    results = run_shards(tasks, _echo_worker, workers=2)
    # Task order, not completion order.
    assert [r["shard_id"] for r in results] == [0, 1, 2]
    assert [r["seed"] for r in results] == [
        shard_seed(42, 0), shard_seed(42, 1), shard_seed(42, 2),
    ]
    assert [r["n_viewers"] for r in results] == [10, 10, 10]
    # Real processes, not this one (spawn, not inline fallback).
    assert all(r["pid"] != os.getpid() for r in results)


def test_inline_equals_spawn_for_pure_workers():
    tasks = ShardPlan(n_shards=2, seed=7).tasks(5)
    inline = run_shards(tasks, _echo_worker, inline=True)
    spawned = run_shards(tasks, _echo_worker, workers=2)

    def strip(rows):
        return [
            {k: v for k, v in row.items() if k != "pid"} for row in rows
        ]

    assert strip(inline) == strip(spawned)


def _failing_worker(task):
    raise ValueError(f"shard {task} exploded")


def test_worker_failure_surfaces_as_shard_error():
    with pytest.raises(ShardError, match="sharded worker failed"):
        map_tasks(_failing_worker, [0, 1], workers=2)
