"""Shard plans: seed derivation, balanced splits, picklable tasks."""

import pickle
import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.shard.plan import ShardPlan, ShardTask, shard_seed


def test_shard_seed_is_the_matrix_cell_convention():
    # Content-addressed: crc32 over "seed:shard_id", masked to 31 bits —
    # the same rule Cell.seed uses, never Python's randomized hash.
    assert shard_seed(77, 0) == zlib.crc32(b"77:0") & 0x7FFFFFFF
    assert shard_seed(77, 3) == zlib.crc32(b"77:3") & 0x7FFFFFFF
    assert shard_seed(77, 0) != shard_seed(77, 1)
    assert shard_seed(77, 0) != shard_seed(78, 0)


def test_plan_rejects_empty():
    with pytest.raises(ReproError):
        ShardPlan(n_shards=0, seed=77)


def test_plan_shard_seed_bounds():
    plan = ShardPlan(n_shards=2, seed=77)
    with pytest.raises(ReproError):
        plan.shard_seed(2)
    with pytest.raises(ReproError):
        plan.shard_seed(-1)


@given(
    total=st.integers(min_value=0, max_value=2_000_000),
    n_shards=st.integers(min_value=1, max_value=64),
)
def test_split_is_balanced_and_complete(total, n_shards):
    shares = ShardPlan(n_shards=n_shards, seed=1).split(total)
    assert sum(shares) == total
    assert len(shares) == n_shards
    assert max(shares) - min(shares) <= 1
    # Deterministic: depends on (total, n_shards) only.
    assert shares == ShardPlan(n_shards=n_shards, seed=999).split(total)


def test_tasks_are_plain_picklable_work_orders():
    plan = ShardPlan(n_shards=3, seed=42)
    tasks = plan.tasks(10, params={"duration_s": 4.0})
    assert [task.n_viewers for task in tasks] == [4, 3, 3]
    for shard_id, task in enumerate(tasks):
        assert task.shard_id == shard_id
        assert task.n_shards == 3
        assert task.seed == shard_seed(42, shard_id)
        assert task.params == {"duration_s": 4.0}
        restored = pickle.loads(pickle.dumps(task))
        assert restored == task


def test_tasks_copy_params_per_shard():
    plan = ShardPlan(n_shards=2, seed=1)
    shared = {"x": 1}
    first, second = plan.tasks(0, params=shared)
    assert first.params is not shared
    assert first.params is not second.params


def test_shard_task_defaults():
    task = ShardTask(shard_id=0, n_shards=1, seed=5)
    assert task.n_viewers == 0
    assert task.params == {}
