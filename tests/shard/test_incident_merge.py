"""Cross-shard incident merging: order independence and grouping.

``merge_incidents`` must give byte-identical output for any permutation
of its shard inputs (worker completion order cannot leak into the
postmortem), fold co-triggered windows across shards into one incident,
and keep causally separate windows apart.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.merge import merge_incidents
from repro.telemetry.flight import Incident


def _incident(trigger_t, window_s=10.0, kind="server.crash", detail="",
              n=1):
    return {
        "id": f"incident#{n}",
        "trigger_kind": kind,
        "trigger_t": trigger_t,
        "trigger_detail": detail,
        "window_start": trigger_t - 5.0,
        "window_end": trigger_t - 5.0 + window_s,
        "triggers": [{"t": trigger_t, "kind": kind, "detail": detail}],
        "n_triggers": 1,
        "pre_records": 3,
        "captured_records": 7,
        "truncated_records": 0,
        "breakdowns": [
            {"cause": f"fault#{n}", "client": f"c{n}", "crash_t": trigger_t,
             "detect_s": 0.4, "agree_s": 0.1, "redistribute_s": 0.5,
             "total_s": 1.0, "resume_s": 0.1, "abandoned": False}
        ],
        "n_breakdowns": 1,
        "chains": [{"cause": f"fault#{n}", "events": 4,
                    "start": trigger_t, "end": trigger_t + 1.0, "path": []}],
        "n_chains": 1,
        "qoe": {"clients_hit": 1,
                "totals": {"stalls": 1, "stall_s": 0.5, "migrations": 1,
                           "resumes": 1, "rejects": 0},
                "top": [{"client": f"c{n}", "penalty": 3.0, "stalls": 1,
                         "stall_s": 0.5, "migrations": 1, "resumes": 1,
                         "rejects": 0}]},
        "excerpt": [{"t": trigger_t, "kind": kind}],
    }


@st.composite
def shard_incident_sets(draw):
    n_shards = draw(st.integers(min_value=1, max_value=4))
    shards = []
    for shard_id in range(n_shards):
        count = draw(st.integers(min_value=0, max_value=4))
        t = 0.0
        incidents = []
        for n in range(count):
            t += draw(st.floats(min_value=0.5, max_value=40.0,
                                allow_nan=False, allow_infinity=False))
            incidents.append(_incident(t, n=n + 1))
        shards.append((shard_id, incidents))
    return shards


@given(shards=shard_incident_sets(), seed=st.randoms(use_true_random=False))
@settings(max_examples=50)
def test_merge_is_order_independent(shards, seed):
    merged = [i.as_dict() for i in merge_incidents(shards)]
    shuffled = list(shards)
    seed.shuffle(shuffled)
    assert [i.as_dict() for i in merge_incidents(shuffled)] == merged
    assert [
        i.as_dict() for i in merge_incidents(list(reversed(shards)))
    ] == merged


def test_reversed_shard_order_yields_identical_incidents():
    shards = [
        (0, [_incident(5.0, n=1), _incident(40.0, n=2)]),
        (1, [_incident(5.0, n=1)]),
        (2, []),
        (3, [_incident(41.0, n=1)]),
    ]
    forward = [i.as_dict() for i in merge_incidents(shards)]
    backward = [
        i.as_dict() for i in merge_incidents(list(reversed(shards)))
    ]
    assert forward == backward


def test_co_triggered_windows_fold_into_one_incident():
    shards = [(s, [_incident(5.0, n=1)]) for s in range(4)]
    merged = merge_incidents(shards)
    assert len(merged) == 1
    incident = merged[0]
    assert incident.shard == "0,1,2,3"
    assert incident.n_triggers == 4
    assert incident.n_breakdowns == 4
    assert incident.qoe["totals"]["migrations"] == 4
    assert incident.qoe["clients_hit"] == 4


def test_separate_windows_stay_separate():
    shards = [
        (0, [_incident(5.0, n=1)]),
        (1, [_incident(100.0, n=1)]),
    ]
    merged = merge_incidents(shards)
    assert len(merged) == 2
    assert [i.trigger_t for i in merged] == [5.0, 100.0]
    assert [i.shard for i in merged] == ["0", "1"]
    # Re-identified deterministically in merged order.
    assert [i.id for i in merged] == ["incident#1", "incident#2"]


def test_pre_trigger_overlap_does_not_chain_incidents():
    # The second incident's 5s lookback overlaps the first incident's
    # window, but its *trigger* fires after the first window closed —
    # they are separate stories and must stay separate.
    first = _incident(10.0, window_s=10.0, n=1)     # window [5, 15]
    second = _incident(18.0, window_s=10.0, n=2)    # window [13, 23]
    merged = merge_incidents([(0, [first, second])])
    assert len(merged) == 2


def test_accepts_incident_objects_and_dicts():
    as_dict = _incident(5.0, n=1)
    as_object = Incident.from_dict(_incident(5.0, n=1))
    merged = merge_incidents([(0, [as_dict]), (1, [as_object])])
    assert len(merged) == 1
    assert merged[0].shard == "0,1"
