"""E-qos — what the planned ATM reservations would have bought (§8)."""

from conftest import show

from repro.experiments.qos import qos_comparison_table, run_wan_trial


def test_qos_reservation_eliminates_network_loss(benchmark):
    best_effort, reserved = benchmark.pedantic(
        lambda: (run_wan_trial(False), run_wan_trial(True)),
        rounds=1, iterations=1,
    )
    show(qos_comparison_table(best_effort, reserved).render())

    loss_skips_be = best_effort.skipped - best_effort.overflow
    loss_skips_qos = reserved.skipped - reserved.overflow
    # Best effort loses frames steadily; the reservation loses none.
    assert loss_skips_be > 10
    assert loss_skips_qos == 0
    # Neither run shows a human-visible stall (the crash failover is
    # still covered by the buffers either way).
    assert best_effort.stall_s <= 1.0
    assert reserved.stall_s <= 1.0
    # The reservation also kills reordering-induced lateness.
    assert reserved.late <= best_effort.late
