"""A-1..A-4 — ablations over the Section 4.2 tuning knobs."""

from conftest import show

from repro.experiments.ablations import (
    ablate_buffer_size,
    ablate_emergency,
    ablate_fd_timeout,
    ablate_sync_interval,
    ablation_table,
)


def test_a1_buffer_size(benchmark):
    """Smaller buffers cover a shorter irregularity period."""
    rows = benchmark.pedantic(
        lambda: ablate_buffer_size((10, 37, 74)), rounds=1, iterations=1
    )
    show(ablation_table(rows, "A-1 — software buffer size").render())
    by_value = {row.value: row for row in rows}
    # The paper-sized buffer keeps the viewer unaware of both events.
    assert by_value["37"].stall_s <= 0.5
    # A tiny buffer degrades (more skips or visible stalls).
    tiny, paper = by_value["10"], by_value["37"]
    assert (
        tiny.stall_s > paper.stall_s
        or tiny.skipped + tiny.overflow > paper.skipped + paper.overflow
    )
    # An oversized buffer is no worse for continuity.
    assert by_value["74"].stall_s <= by_value["37"].stall_s + 0.5


def test_a2_emergency_quota(benchmark):
    """Without the decaying refill, buffers recover too slowly and a
    second irregularity would hit them empty."""
    rows = benchmark.pedantic(
        lambda: ablate_emergency(), rounds=1, iterations=1
    )
    show(ablation_table(rows, "A-2 — emergency refill quota").render())
    by_value = {row.value: row for row in rows}
    none, paper = by_value["no refill"], by_value["paper (q=12/6)"]
    aggressive = by_value["aggressive (q=24/12)"]
    # The paper config keeps playback smooth.
    assert paper.stall_s <= 0.5
    # No refill is never better on continuity and lacks the overflow
    # signature; an aggressive refill overflows more.
    assert none.overflow <= paper.overflow
    assert aggressive.overflow >= paper.overflow


def test_a3_sync_interval(benchmark):
    """Tighter sync shrinks duplicate transmission at migrations but
    costs proportionally more control traffic."""
    rows = benchmark.pedantic(
        lambda: ablate_sync_interval((0.25, 0.5, 2.0)), rounds=1, iterations=1
    )
    show(ablation_table(rows, "A-3 — state sync interval").render())
    by_value = {row.value: row for row in rows}
    # Duplicates (late frames) grow with the sync interval: the takeover
    # offset is up to one interval stale.
    assert by_value["0.25"].late <= by_value["2.0"].late
    # Control overhead shrinks as the interval grows.
    assert (
        by_value["0.25"].control_fraction
        > by_value["2.0"].control_fraction
    )


def test_a5_double_emergency(benchmark):
    """Section 4.2: the paper-sized buffer covers a *single* emergency;
    a second failure arriving before the refill completes causes
    noticeable frame loss unless the buffer is enlarged."""
    from repro.experiments.ablations import ablate_double_emergency

    rows = benchmark.pedantic(
        lambda: ablate_double_emergency((37, 74)), rounds=1, iterations=1
    )
    show(ablation_table(
        rows, "A-5 — back-to-back failures (1 s apart) vs buffer size"
    ).render())
    by_value = {row.value: row for row in rows}
    paper_sized, doubled = by_value["37"], by_value["74"]
    # The standard buffer degrades visibly (a burst of skipped frames);
    # the enlarged buffer rides out both failures cleanly.
    assert paper_sized.skipped > 10
    assert doubled.skipped == 0
    assert doubled.stall_s == 0.0


def test_a4_fd_timeout(benchmark):
    """Failure detection dominates the irregularity period: too long a
    timeout drains the buffers into a visible stall."""
    rows = benchmark.pedantic(
        lambda: ablate_fd_timeout((0.45, 2.0)), rounds=1, iterations=1
    )
    show(ablation_table(rows, "A-4 — failure detection timeout").render())
    by_value = {row.value: row for row in rows}
    fast, slow = by_value["0.45"], by_value["2.0"]
    # The paper's ~0.5 s detection keeps the stall invisible.
    assert fast.stall_s <= 0.5
    # A 2 s detector exceeds what the buffers cover.
    assert slow.stall_s > fast.stall_s
