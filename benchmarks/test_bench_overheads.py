"""The paper's quantitative claims: T-sync, T-emergency, T-buffer."""

import pytest
from conftest import show

from repro.experiments.overheads import (
    measure_emergency,
    measure_sync_overhead,
    measure_takeover,
)
from repro.server.rate_controller import EmergencyConfig



def test_sync_overhead(benchmark):
    """"the overhead for synchronization consumes less than one
    thousandth of the total communication bandwidth" (Section 1)."""
    result = benchmark.pedantic(
        lambda: measure_sync_overhead(n_clients=4, duration_s=60.0),
        rounds=1, iterations=1,
    )
    show(result.table().render())
    assert result.sync_fraction < 1.0 / 1000.0
    assert result.video_bytes > 1e7


def test_sync_overhead_scales_with_clients(benchmark):
    """Per-client state is 'a few dozens of bytes': the sync fraction
    stays under 1/1000 as the client count grows."""
    result = benchmark.pedantic(
        lambda: measure_sync_overhead(n_clients=8, duration_s=45.0),
        rounds=1, iterations=1,
    )
    show(result.table().render())
    assert result.sync_fraction < 1.0 / 1000.0


def test_emergency_sequences(benchmark):
    """q=12/f=0.8 delivers exactly 43 extra frames; q=6 about 15."""
    result = benchmark.pedantic(measure_emergency, rounds=1, iterations=1)
    show(result.table().render())
    assert sum(result.severe_sequence) == 43
    assert sum(result.mild_sequence) in (15, 16)
    config = EmergencyConfig()
    # "increase the bandwidth consumption at emergency periods by no
    # more than 40% of the mean bandwidth": instantaneous rate bound.
    assert config.base_severe / 30 <= 0.4
    # Measured end-to-end peak (includes duplicate replay at takeover).
    assert result.peak_rate_fraction < 1.6


def test_takeover_time(benchmark):
    """"the take over time was half a second on the average" and the
    low-water-mark buffer covers the full irregularity period."""
    result = benchmark.pedantic(
        lambda: measure_takeover(n_trials=5), rounds=1, iterations=1
    )
    show(result.table().render())
    assert len(result.takeover_times) == 5
    assert 0.2 <= result.mean_takeover <= 1.0
    # Worst irregularity within what the LWM buffer (~1.7 s) covers.
    assert max(result.irregularity_gaps) <= 1.7


def test_buffer_budget_matches_paper(benchmark):
    """Static check of Section 4.2's arithmetic on our defaults."""
    from repro.client.player import ClientConfig

    config = ClientConfig()
    combined = benchmark(config.combined_capacity_frames)
    seconds_of_video = combined / config.fps
    # "approximately 2.4 seconds of video"
    assert seconds_of_video == pytest.approx(2.4, abs=0.4)
    # LWM at 73% covers ~1.7 s of irregularity.
    covered = 0.73 * seconds_of_video
    assert covered == pytest.approx(1.7, abs=0.3)
