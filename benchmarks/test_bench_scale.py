"""Scale behaviour: the deployment the paper's introduction motivates.

"In such an environment, scalability and fault tolerance will be key
issues" — these benchmarks load one service with a growing client
population and verify the control plane stays negligible and failover
stays client-count-independent.
"""

import json
import os

from conftest import show

from repro.experiments.scale import run_scale_point
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator

FLYWEIGHT_BASELINE = os.path.join(
    os.path.dirname(__file__), "BENCH_scale_flyweight.json"
)


def run_scaled(n_clients, n_servers=3, duration_s=40.0, seed=77,
               crash_at=None):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_clients + 1)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=duration_s + 20)]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers))
    )
    clients = []
    for index in range(n_clients):
        client = deployment.attach_client(n_servers + index)
        client.request_movie("feature")
        clients.append(client)
    if crash_at is not None:
        def crash_most_loaded() -> None:
            victim = max(deployment.live_servers(), key=lambda s: s.n_clients)
            victim.crash()
        sim.call_at(crash_at, crash_most_loaded)
    sim.run_until(duration_s)
    return sim, deployment, clients


def test_scale_16_clients(benchmark):
    """16 concurrent viewers on 3 servers: all smooth, load balanced."""
    sim, deployment, clients = benchmark.pedantic(
        lambda: run_scaled(16), rounds=1, iterations=1
    )
    table = Table(
        "Scale — 16 clients, 3 servers, 40 s",
        ["metric", "value"],
    )
    total_stall = sum(c.decoder.stats.stall_time_s for c in clients)
    loads = sorted(s.n_clients for s in deployment.live_servers())
    video = sum(s.video_bytes_sent for s in deployment.servers.values())
    control = sum(
        s.endpoint.control_bytes_sent for s in deployment.servers.values()
    ) + sum(c.endpoint.control_bytes_sent for c in clients)
    table.add_row("clients served", sum(loads))
    table.add_row("load spread", str(loads))
    table.add_row("total stall (s)", f"{total_stall:.2f}")
    table.add_row("control/video bytes", f"{control / video:.5f}")
    show(table.render())

    assert sum(loads) == 16
    assert max(loads) - min(loads) <= 2
    assert total_stall <= 1.0
    assert control / video < 0.02


def test_failover_under_load(benchmark):
    """Crashing the most-loaded server migrates its whole client share
    transparently; takeover effort does not scale with client count."""
    sim, deployment, clients = benchmark.pedantic(
        lambda: run_scaled(12, crash_at=20.0), rounds=1, iterations=1
    )
    survivors = deployment.live_servers()
    loads = sorted(s.n_clients for s in survivors)
    stalls = [c.decoder.stats.stall_time_s for c in clients]
    table = Table(
        "Scale — failover with 12 clients",
        ["metric", "value"],
    )
    table.add_row("surviving servers", len(survivors))
    table.add_row("load spread after crash", str(loads))
    table.add_row("max client stall (s)", f"{max(stalls):.2f}")
    table.add_row(
        "clients with any stall", sum(1 for s in stalls if s > 0.05)
    )
    show(table.render())

    assert len(survivors) == 2
    assert sum(loads) == 12
    assert max(stalls) <= 1.0  # nobody saw a human-visible freeze


def test_flyweight_20k_smoke(benchmark):
    """20 000 columnar viewers with a mid-run crash: the population the
    per-object control plane could never admit.  Measurements must match
    the committed reference — the run is seed-deterministic, so event-
    count drift means behaviour changed, not the machine."""
    point = benchmark.pedantic(
        lambda: run_scale_point(20000, batch_window_s=1.0, duration_s=10.0,
                                flyweight=True),
        rounds=1, iterations=1,
    )
    with open(FLYWEIGHT_BASELINE) as fh:
        baseline = json.load(fh)
    table = Table("Scale — 20k flyweight viewers, 3 servers, 10 s",
                  ["metric", "value", "reference"])
    table.add_row("events", point.events, baseline["events"])
    table.add_row("frames served", point.frames_delivered,
                  baseline["frames_delivered"])
    table.add_row("takeovers", point.takeovers, baseline["takeovers"])
    table.add_row("wall (s)", f"{point.wall_s:.2f}",
                  f"< {baseline['tolerances']['wall_ceiling_s']}")
    show(table.render())

    tol = baseline["tolerances"]
    assert abs(point.events - baseline["events"]) <= (
        tol["events_rel"] * baseline["events"]
    )
    assert point.takeovers == baseline["takeovers"]
    assert point.wall_s < tol["wall_ceiling_s"]
    assert max(point.failover_latencies) < tol["failover_ceiling_s"]
