"""Scale behaviour: the deployment the paper's introduction motivates.

"In such an environment, scalability and fault tolerance will be key
issues" — these benchmarks load one service with a growing client
population and verify the control plane stays negligible and failover
stays client-count-independent.
"""

from conftest import show

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


def run_scaled(n_clients, n_servers=3, duration_s=40.0, seed=77,
               crash_at=None):
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_clients + 1)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=duration_s + 20)]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers))
    )
    clients = []
    for index in range(n_clients):
        client = deployment.attach_client(n_servers + index)
        client.request_movie("feature")
        clients.append(client)
    if crash_at is not None:
        def crash_most_loaded() -> None:
            victim = max(deployment.live_servers(), key=lambda s: s.n_clients)
            victim.crash()
        sim.call_at(crash_at, crash_most_loaded)
    sim.run_until(duration_s)
    return sim, deployment, clients


def test_scale_16_clients(benchmark):
    """16 concurrent viewers on 3 servers: all smooth, load balanced."""
    sim, deployment, clients = benchmark.pedantic(
        lambda: run_scaled(16), rounds=1, iterations=1
    )
    table = Table(
        "Scale — 16 clients, 3 servers, 40 s",
        ["metric", "value"],
    )
    total_stall = sum(c.decoder.stats.stall_time_s for c in clients)
    loads = sorted(s.n_clients for s in deployment.live_servers())
    video = sum(s.video_bytes_sent for s in deployment.servers.values())
    control = sum(
        s.endpoint.control_bytes_sent for s in deployment.servers.values()
    ) + sum(c.endpoint.control_bytes_sent for c in clients)
    table.add_row("clients served", sum(loads))
    table.add_row("load spread", str(loads))
    table.add_row("total stall (s)", f"{total_stall:.2f}")
    table.add_row("control/video bytes", f"{control / video:.5f}")
    show(table.render())

    assert sum(loads) == 16
    assert max(loads) - min(loads) <= 2
    assert total_stall <= 1.0
    assert control / video < 0.02


def test_failover_under_load(benchmark):
    """Crashing the most-loaded server migrates its whole client share
    transparently; takeover effort does not scale with client count."""
    sim, deployment, clients = benchmark.pedantic(
        lambda: run_scaled(12, crash_at=20.0), rounds=1, iterations=1
    )
    survivors = deployment.live_servers()
    loads = sorted(s.n_clients for s in survivors)
    stalls = [c.decoder.stats.stall_time_s for c in clients]
    table = Table(
        "Scale — failover with 12 clients",
        ["metric", "value"],
    )
    table.add_row("surviving servers", len(survivors))
    table.add_row("load spread after crash", str(loads))
    table.add_row("max client stall (s)", f"{max(stalls):.2f}")
    table.add_row(
        "clients with any stall", sum(1 for s in stalls if s > 0.05)
    )
    show(table.render())

    assert len(survivors) == 2
    assert sum(loads) == 12
    assert max(stalls) <= 1.0  # nobody saw a human-visible freeze
