"""T-gcs — the substrate's view-agreement latency and its scaling."""

from conftest import show

from repro.experiments.gcs_latency import gcs_latency_table, measure_scaling


def test_view_agreement_latency_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: measure_scaling((2, 4, 8, 16)), rounds=1, iterations=1
    )
    show(gcs_latency_table(points).render())

    by_size = {p.group_size: p for p in points}
    # Joins are fast: milliseconds on a LAN (no detection timeout).
    for point in points:
        assert point.join_latency_s < 0.2
    # Crash recovery is dominated by the ~0.45 s failure-detection
    # timeout — the paper's "take over time was half a second".
    for point in points:
        assert 0.4 <= point.crash_latency_s <= 1.0
    # And it is essentially flat in group size (loose coupling): going
    # from 2 to 16 members costs little.
    assert (
        by_size[16].crash_latency_s - by_size[2].crash_latency_s < 0.25
    )
