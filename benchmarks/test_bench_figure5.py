"""Figure 5 — skipped frames in a small-scale WAN.

Load balance at ~25 s, crash of the transmitting server ~22 s later,
over a seven-hop lossy Internet path without QoS reservation.
"""

from conftest import show


def test_fig5a_skipped_frames(benchmark, figure5):
    samples = benchmark(figure5.series_samples)
    show(figure5.summary_table().render())
    show("Figure 5(a) cumulative skipped frames:\n" + "\n".join(
        f"  t={t:6.1f}s  {v:8.0f}" for t, v in samples["5a_skipped"]
    ))
    # "when running on the Internet without reservation mechanisms, a
    # certain percentage of the messages are lost" — steady growth.
    assert figure5.steady_skip_rate() > 0.05
    # "the quality of displayed video is inferior to ... a LAN": a small
    # but nonzero fraction of frames never displayed.
    assert 0.001 < figure5.loss_fraction() < 0.10
    # The curve keeps growing across the run (not a one-off step).
    early = figure5.skipped.value_at(30.0)
    late = figure5.skipped.final()
    assert late > early > 0


def test_fig5b_overflow_discards(benchmark, figure5):
    samples = benchmark(figure5.series_samples)
    show("Figure 5(b) frames discarded due to buffer overflow:\n" + "\n".join(
        f"  t={t:6.1f}s  {v:8.0f}" for t, v in samples["5b_overflow_discards"]
    ))
    # "At irregularity periods additional frames are skipped due to
    # buffer overflow": all overflow lands in the emergency windows
    # (startup / load balance / crash), the curve is flat elsewhere.
    total = figure5.overflow_total()
    assert total > 0
    in_windows = (
        figure5.overflow.increase_over(0.0, 20.0)
        + figure5.overflow.increase_over(
            figure5.lb_time - 1, figure5.lb_time + 12
        )
        + figure5.overflow.increase_over(
            figure5.crash_time - 1, figure5.crash_time + 12
        )
    )
    assert in_windows >= 0.9 * total
    # Overflow is a small correction, not a second loss channel.
    assert total < 60
