"""Figure 2 — the client flow-control policy table.

Regenerates the paper's table from the implemented policy and checks
every row matches the published one.
"""

from conftest import show

from repro.experiments.figure2 import generate_policy_rows, render_figure2


def test_figure2_policy_table(benchmark):
    rows = benchmark(generate_policy_rows)
    show(render_figure2())

    requests = [row.request for row in rows]
    frequencies = [row.frequency for row in rows]
    # Row order in the paper: emergency, increase, inc/dec/none mid-band,
    # decrease — with urgent frequency everywhere outside the water
    # marks and normal frequency between them.
    assert requests == [
        "emergency (level 2)",
        "emergency (level 1)",
        "increase",
        "increase",
        "decrease",
        "(none)",
        "decrease",
    ]
    assert frequencies == [
        "f_urgent", "f_urgent", "f_urgent",
        "f_normal", "f_normal", "f_normal",
        "f_urgent",
    ]
