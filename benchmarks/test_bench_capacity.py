"""E-capacity — the load-balancing payoff the paper motivates."""

from conftest import show

from repro.experiments.capacity import capacity_table, run_capacity_sweep


def test_capacity_knee_and_scale_out(benchmark):
    points = benchmark.pedantic(
        lambda: run_capacity_sweep((10, 30, 50, 70)),
        rounds=1, iterations=1,
    )
    show(capacity_table(points).render())
    single = {p.n_clients: p for p in points if p.n_servers == 1}
    doubled = next(p for p in points if p.n_servers == 2)

    # Under the uplink capacity everything is clean.
    assert single[10].clean
    assert single[30].clean
    assert single[50].clean
    # Past it, the transmit queue collapses playback.
    assert not single[70].clean
    assert single[70].worst_stall_s > 5.0
    # Bringing up a second server (the paper's remedy) restores the
    # same population to clean playback.
    assert doubled.clean
