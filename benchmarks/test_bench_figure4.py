"""Figure 4 — overcoming the irregularity of video transmission (LAN).

One benchmark per panel plus one timing the whole 240-second scenario.
Shape assertions mirror the paper's reported facts; absolute numbers are
not expected to match the 1999 testbed.
"""

import dataclasses

from conftest import show

from repro.experiments.figure4 import run_figure4
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario


def test_figure4_scenario_runtime(benchmark):
    """Times the full LAN scenario (the substrate's headline cost)."""
    spec = dataclasses.replace(
        LAN_SCENARIO, movie_duration_s=60.0, run_duration_s=60.0,
        schedule=((30.0, "crash-serving"),),
    )
    result = benchmark.pedantic(
        lambda: run_scenario(spec), rounds=2, iterations=1
    )
    assert result.client.displayed_total > 1500


def test_fig4a_skipped_frames(benchmark, figure4):
    samples = benchmark(figure4.series_samples)
    show(figure4.summary_table().render())
    show("Figure 4(a) cumulative skipped frames:\n" + "\n".join(
        f"  t={t:6.1f}s  {v:8.0f}" for t, v in samples["4a_skipped"]
    ))
    # "no more than six frames were skipped following each emergency
    # period (at startup, failure, and migration due to load balancing)"
    # — small single digits; we allow a little seed-level slack.
    assert figure4.skipped_at_startup() <= 10
    assert figure4.skipped_at_crash() <= 10
    assert figure4.skipped_at_lb() <= 10
    # "none of the skipped frames was an I frame" — and therefore the
    # image degradation each loss causes stays under one GOP (<1 s):
    # "this degradation was not noticeable to a human observer".
    assert figure4.intra_frames_discarded() == 0
    decoder_stats = figure4.result.client.decoder.stats
    if decoder_stats.degradation_episodes:
        mean_burst = (
            decoder_stats.degraded_frames / decoder_stats.degradation_episodes
        )
        assert mean_burst <= 30  # < 1 s of damaged picture per episode
    # Nothing skipped outside the emergency windows (lossless LAN).
    total = figure4.skipped.final()
    at_events = (
        figure4.skipped_at_startup()
        + figure4.skipped_at_crash()
        + figure4.skipped_at_lb()
    )
    assert total == at_events


def test_fig4b_late_frames(benchmark, figure4):
    samples = benchmark(figure4.series_samples)
    show("Figure 4(b) cumulative late frames:\n" + "\n".join(
        f"  t={t:6.1f}s  {v:8.0f}" for t, v in samples["4b_late"]
    ))
    # Duplicate transmissions appear at both migrations ("certain frames
    # may be transmitted by both servers").
    assert figure4.late_at_crash() > 0
    assert figure4.late_at_lb() > 0
    # On a LAN nothing else arrives late.
    total = figure4.late.final()
    assert total == figure4.late_at_crash() + figure4.late_at_lb()
    # The conservative overlap is bounded by one sync period of frames.
    assert figure4.late_at_crash() <= 0.5 * 30 + 5
    assert figure4.late_at_lb() <= 0.5 * 30 + 5


def test_fig4c_software_buffer(benchmark, figure4):
    samples = benchmark(figure4.series_samples)
    show("Figure 4(c) software buffer occupancy (frames):\n" + "\n".join(
        f"  t={t:6.1f}s  {v:8.0f}" for t, v in samples["4c_software_frames"]
    ))
    # "the software buffers reach their mean occupancy (around 23
    # frames)" and oscillate between the water marks.
    assert 15 <= figure4.sw_mean_steady() <= 30
    # "drops to zero when the client is migrated due to a failure"
    assert figure4.sw_min_after_crash() <= 2
    # The load-balance dip is shallower than the crash dip (no failure
    # detection delay) but clearly below the steady mean.
    capacity = figure4.result.client.config.sw_capacity_frames
    assert figure4.sw_min_after_lb() <= 0.6 * capacity
    assert figure4.sw_min_after_lb() < figure4.sw_mean_steady()
    assert figure4.sw_min_after_lb() > figure4.sw_min_after_crash()
    # Mean reached within tens of seconds of startup (paper: ~14 s).
    assert figure4.sw_fill_time() < 30.0


def test_fig4d_hardware_buffer(benchmark, figure4):
    samples = benchmark(figure4.series_samples)
    show("Figure 4(d) hardware buffer occupancy (bytes):\n" + "\n".join(
        f"  t={t:6.1f}s  {v:10.0f}" for t, v in samples["4d_hardware_bytes"]
    ))
    # "the hardware buffers fill up approximately 10 seconds after the
    # first frame of the movie arrives"
    assert figure4.hw_fill_time() < 15.0
    # The hardware buffer dips after the crash but never empties
    # (paper: drops to ~3/4 of capacity).
    assert 0.4 <= figure4.hw_min_fraction_after_crash() < 1.0
    # The viewer never noticed: no human-visible stall (>1 s) across
    # both events; with the default seed there is none at all.
    assert figure4.result.client.decoder.stats.stall_time_s <= 0.5
