"""W-1 — a day-in-the-life workload: Zipf demand, Poisson arrivals,
human viewers with VCR habits, and a server failure at peak.

The population-scale version of the paper's single-client evaluation:
whatever the viewers do and whichever server dies, nobody sees a freeze.
"""

from conftest import show

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.driver import WorkloadDriver
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import ViewerProfile

N_HOSTS = 12
N_SERVERS = 3
RUN_S = 90.0


def run_day_in_the_life():
    sim = Simulator(seed=61)
    topology = build_lan(sim, n_hosts=N_SERVERS + N_HOSTS)
    titles = [f"movie{i}" for i in range(5)]
    catalog = MovieCatalog(
        [Movie.synthetic(title, duration_s=150.0) for title in titles]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(N_SERVERS))
    )
    driver = WorkloadDriver(
        deployment,
        client_hosts=list(range(N_SERVERS, N_SERVERS + N_HOSTS)),
        sampler=ZipfCatalogSampler(titles, alpha=0.9),
        profile=ViewerProfile(
            pause_prob=0.2, seek_prob=0.15, abandon_prob=0.08
        ),
    )
    arrivals = poisson_arrivals(
        sim.rng("w1.arrivals"), rate_per_s=0.25, duration_s=50.0, start_s=1.0
    )
    driver.schedule_arrivals(arrivals)
    # Peak-time failure: kill the most loaded server mid-run.
    sim.call_at(
        45.0,
        lambda: max(
            deployment.live_servers(), key=lambda s: s.n_clients
        ).crash(),
    )
    sim.run_until(RUN_S)
    return sim, deployment, driver


def test_w1_day_in_the_life(benchmark):
    sim, deployment, driver = benchmark.pedantic(
        run_day_in_the_life, rounds=1, iterations=1
    )
    stats = driver.stats()
    table = Table(
        "W-1 — Zipf/Poisson population with a peak-time server crash",
        ["metric", "value"],
    )
    table.add_row("viewers admitted", stats.n_viewers)
    table.add_row("busy signals", driver.skipped_arrivals)
    table.add_row("abandoned (by choice)", stats.n_abandoned)
    table.add_row("requests per title", str(stats.requests_per_title))
    table.add_row("frames displayed", stats.total_displayed)
    table.add_row("skip fraction", f"{stats.skip_fraction:.4f}")
    table.add_row("mean stall (s)", f"{stats.mean_stall_s:.2f}")
    table.add_row("worst stall (s)", f"{stats.worst_stall_s:.2f}")
    table.add_row(
        "viewers who saw a freeze", stats.viewers_with_visible_stall
    )
    show(table.render())

    assert stats.n_viewers >= 8
    # The headline: nobody saw a visible freeze, despite churny viewers
    # and a server crash at peak load.
    assert stats.viewers_with_visible_stall == 0
    assert stats.worst_stall_s <= 1.0
    assert stats.skip_fraction < 0.02
    # Zipf demand: the top title got at least as many requests as the
    # tail title.
    requests = stats.requests_per_title
    assert requests.get("movie0", 0) >= requests.get("movie4", 0)
    # The crash actually happened and the survivors absorbed the load.
    assert len(deployment.live_servers()) == N_SERVERS - 1
