"""T-ft — the Section 7 fault-tolerance comparison.

"If a movie is replicated k times, then up to k-1 failures are
tolerated", versus the Tiger-like striped cluster that "smoothly
tolerates the failure of one server, but not necessarily two", and a
plain single server that tolerates none.
"""

from conftest import show

from repro.experiments.faults import fault_matrix_table, run_fault_matrix
from repro.faulting.chaos import chaos_table, run_chaos_sweep, total_violations


def test_fault_tolerance_matrix(benchmark):
    trials = benchmark.pedantic(
        lambda: run_fault_matrix(duration_s=90.0), rounds=1, iterations=1
    )
    show(fault_matrix_table(trials).render())

    by_key = {(t.system, t.kills): t for t in trials}
    single = by_key[("single server", 1)]
    striped_1 = by_key[("Tiger-like striped", 1)]
    striped_2 = by_key[("Tiger-like striped", 2)]
    ours_1 = by_key[("group-communication VoD", 1)]
    ours_2 = by_key[("group-communication VoD", 2)]

    # Single server: one crash kills the stream.
    assert not single.survived
    # Tiger-like striping survives one failure but not two, even
    # non-concurrent ones.
    assert striped_1.survived
    assert striped_2.skipped > 100  # periodic block loss
    # Our service (k=3) survives both one and two failures.
    assert ours_1.survived
    assert ours_2.survived
    # And it beats striping on the 2-failure case by a wide margin.
    assert ours_2.skipped < striped_2.skipped / 5


def test_chaos_sweep(benchmark):
    """Twenty seeded random fault plans; the invariant checker must stay
    silent on every one (the plans are recoverable by construction)."""
    results = benchmark.pedantic(
        lambda: run_chaos_sweep(n_plans=20, base_seed=1000, duration_s=90.0),
        rounds=1,
        iterations=1,
    )
    show(chaos_table(results).render())

    violations = total_violations(results)
    assert violations == [], "\n".join(str(v) for v in violations)
    # The sweep must actually exercise failover, not dodge it.
    assert sum(r.crashes for r in results) >= 10
    assert sum(r.takeovers for r in results) >= 10
    # Every client keeps a watchable stream on every seed.
    assert all(r.displayed > 0 for r in results)
