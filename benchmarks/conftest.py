"""Shared fixtures for the benchmark harness.

The full-length scenario runs are expensive (a 240-second simulated LAN
run); they execute once per session and the per-panel benchmarks consume
the cached result.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import Figure4, run_figure4
from repro.experiments.figure5 import Figure5, run_figure5


@pytest.fixture(scope="session")
def figure4() -> Figure4:
    return run_figure4()


@pytest.fixture(scope="session")
def figure5() -> Figure5:
    return run_figure5()


def show(text: str) -> None:
    """Print a report block, visibly separated in pytest output."""
    print()
    print(text)
