"""Shared fixtures for the benchmark harness.

The full-length scenario runs are expensive (a 240-second simulated LAN
run); they execute once per session and the per-panel benchmarks consume
the cached result.  Both fixtures dispatch through the unified
:func:`repro.experiments.run` entry point — the same code path the CLI
takes — so the benchmarks exercise the public API, not module internals.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, run
from repro.experiments.figure4 import Figure4
from repro.experiments.figure5 import Figure5


@pytest.fixture(scope="session")
def figure4() -> Figure4:
    return run(ExperimentSpec(name="figure4")).data


@pytest.fixture(scope="session")
def figure5() -> Figure5:
    return run(ExperimentSpec(name="figure5")).data


def show(text: str) -> None:
    """Print a report block, visibly separated in pytest output."""
    print()
    print(text)
