#!/usr/bin/env python3
"""Elastic server pool: scale out under load, scale back in.

The motivating deployment of the paper's introduction: a VoD provider
whose load changes over the day.  Ten clients arrive over a minute and
overload the single initial server; two more servers are brought up *on
the fly* and the group deterministically re-distributes the clients;
later one server is gracefully detached and its clients migrate without
a failure-detection delay.

Run with::

    python examples/elastic_server_pool.py
"""

from repro import Deployment, Movie, MovieCatalog, Simulator, build_lan

N_CLIENTS = 10


def print_loads(deployment, sim, label) -> None:
    loads = {
        name: server.n_clients
        for name, server in sorted(deployment.servers.items())
        if server.running
    }
    print(f"[t={sim.now:6.1f}s] {label}: loads={loads}")


def main() -> None:
    sim = Simulator(seed=42)
    topology = build_lan(sim, n_hosts=3 + N_CLIENTS)
    catalog = MovieCatalog(
        [
            Movie.synthetic("news", duration_s=300),
            Movie.synthetic("feature", duration_s=300),
        ]
    )
    deployment = Deployment(topology, catalog, server_nodes=[0])

    # Clients trickle in over the first minute, alternating movies.
    clients = []
    for index in range(N_CLIENTS):
        def attach(index=index):
            client = deployment.attach_client(3 + index)
            client.request_movie("news" if index % 2 else "feature")
            clients.append(client)

        sim.call_at(2.0 + 6.0 * index, attach)

    # Scale out at t=70 and t=80; scale in (graceful) at t=160.
    deployment.controller.start_server_at(70.0, 1, "server1")
    deployment.controller.start_server_at(80.0, 2, "server2")
    deployment.controller.detach_server_at(160.0, "server1")

    for checkpoint, label in [
        (65.0, "one server, fully loaded"),
        (95.0, "after scale-out to three servers"),
        (175.0, "after graceful scale-in"),
        (240.0, "steady state"),
    ]:
        sim.run_until(checkpoint)
        print_loads(deployment, sim, label)

    print()
    stalls = [c.decoder.stats.stall_time_s for c in clients]
    skipped = [c.skipped_total for c in clients]
    print(f"clients: {len(clients)}")
    print(f"total visible stall time across all clients: {sum(stalls):.2f}s")
    print(f"skipped frames per client: {skipped}")
    balanced = [s.n_clients for s in deployment.live_servers()]
    print(f"final load spread over live servers: {balanced}")
    assert max(balanced) - min(balanced) <= 2, "load badly unbalanced"


if __name__ == "__main__":
    main()
