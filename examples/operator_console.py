#!/usr/bin/env python3
"""An operator's evening: population load, failures, scale-out — with a
status console.

Runs a realistic evening at a small VoD provider (Zipf demand, Poisson
arrivals, viewers who pause and seek), narrates server failures and
recoveries, and renders the service-wide health as tables and a
terminal chart at checkpoints — the view the paper's operator would
have had.

Run with::

    python examples/operator_console.py
"""

from repro import Deployment, Movie, MovieCatalog, Simulator, build_lan
from repro.metrics.ascii_chart import render_chart
from repro.metrics.report import Table
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.driver import WorkloadDriver
from repro.workloads.popularity import ZipfCatalogSampler
from repro.workloads.viewer import ViewerProfile

N_SERVERS = 2
N_HOSTS = 10
RUN_S = 150.0


def console(sim, deployment, driver, samples) -> None:
    table = Table(f"status @ t={sim.now:.0f}s", ["server", "clients", "sent (MB)"])
    total_clients = 0
    for name, server in sorted(deployment.servers.items()):
        if not server.running:
            table.add_row(name, "DOWN", f"{server.video_bytes_sent / 1e6:.0f}")
            continue
        table.add_row(
            name, server.n_clients, f"{server.video_bytes_sent / 1e6:.0f}"
        )
        total_clients += server.n_clients
    print()
    print(table.render())
    samples.append((sim.now, total_clients))


def main() -> None:
    sim = Simulator(seed=71)
    topology = build_lan(sim, n_hosts=N_SERVERS + 1 + N_HOSTS)
    titles = ["blockbuster", "comedy", "documentary", "noir"]
    catalog = MovieCatalog(
        [Movie.synthetic(t, duration_s=200.0) for t in titles]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(N_SERVERS))
    )
    driver = WorkloadDriver(
        deployment,
        client_hosts=list(range(N_SERVERS + 1, N_SERVERS + 1 + N_HOSTS)),
        sampler=ZipfCatalogSampler(titles, alpha=1.0),
        profile=ViewerProfile(pause_prob=0.2, seek_prob=0.15,
                              abandon_prob=0.05),
    )
    arrivals = poisson_arrivals(
        sim.rng("console.arrivals"), rate_per_s=0.15, duration_s=100.0,
        start_s=2.0,
    )
    driver.schedule_arrivals(arrivals)
    print(f"{len(arrivals)} viewers will arrive over the first 100 s")

    # The evening's events.
    def crash_most_loaded():
        victim = max(deployment.live_servers(), key=lambda s: s.n_clients)
        print(f"\n[t={sim.now:5.1f}s] !!! {victim.name} CRASHED "
              f"(was serving {victim.n_clients} viewers)")
        victim.crash()

    sim.call_at(60.0, crash_most_loaded)
    sim.call_at(
        75.0,
        lambda: (
            print(f"\n[t={sim.now:5.1f}s] operator brings up a fresh server"),
            deployment.add_server(N_SERVERS, "standby"),
        ),
    )

    samples = []
    for checkpoint in (30.0, 59.0, 70.0, 90.0, 120.0, RUN_S):
        sim.run_until(checkpoint)
        console(sim, deployment, driver, samples)

    stats = driver.stats()
    print()
    print(render_chart(
        samples, title="active viewers over the evening",
        width=48, height=8,
        markers=[(60.0, "crash"), (75.0, "standby up")],
    ))
    print()
    print(f"viewers admitted:        {stats.n_viewers}")
    print(f"abandoned (by choice):   {stats.n_abandoned}")
    print(f"busy signals:            {driver.skipped_arrivals}")
    print(f"requests per title:      {stats.requests_per_title}")
    print(f"worst stall any viewer:  {stats.worst_stall_s:.2f}s")
    print(f"viewers who saw a freeze: {stats.viewers_with_visible_stall}")
    assert stats.viewers_with_visible_stall == 0
    print("\nA server died at peak load and not one viewer noticed.")


if __name__ == "__main__":
    main()
