#!/usr/bin/env python3
"""Quickstart: one movie, two servers, one client, one crash.

Builds the fault-tolerant VoD service on a simulated switched Ethernet,
plays a movie, kills the serving server mid-stream, and shows that the
viewer never noticed.

Run with::

    python examples/quickstart.py
"""

from repro import Deployment, Movie, MovieCatalog, Simulator, build_lan


def main() -> None:
    sim = Simulator(seed=7)
    topology = build_lan(sim, n_hosts=4)

    # The catalog: one synthetic 90-second MPEG-like movie calibrated to
    # the paper's test stream (1.4 Mbps, 30 fps).
    catalog = MovieCatalog([Movie.synthetic("big-buck-1999", duration_s=90)])

    # Two replicas of every movie; the client connects to the abstract
    # server group without knowing either server.
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)
    client.request_movie("big-buck-1999")

    # 40 seconds in, terminate whichever server is transmitting.
    def crash_serving_server() -> None:
        for server in deployment.live_servers():
            if server.process == client.serving_server:
                print(f"[t={sim.now:6.2f}s] crashing {server.name}")
                server.crash()

    sim.call_at(40.0, crash_serving_server)
    sim.run_until(100.0)

    print()
    print("movie finished:     ", client.finished)
    print("frames displayed:   ", client.displayed_total)
    print("frames skipped:     ", client.skipped_total)
    print("late (dup) frames:  ", client.late_total)
    print("visible stall time: ", f"{client.decoder.stats.stall_time_s:.2f}s")
    print("migrations observed:")
    for time, old, new in client.stats.migrations:
        print(f"  t={time:6.2f}s  {old} -> {new}")
    assert client.decoder.stats.stall_time_s == 0.0, "viewer saw a freeze!"
    print("\nThe crash was invisible to the viewer.")


if __name__ == "__main__":
    main()
