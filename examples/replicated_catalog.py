#!/usr/bin/env python3
"""Beyond VoD: a replicated catalog on agreed multicast.

The paper closes with "the concepts demonstrated in this work are
general, and may be exploited to construct a variety of highly
available servers".  This example builds one: a movie-catalog service
replicated as a state machine over totally-ordered ("agreed") group
multicast — every replica applies the same updates in the same order,
so any replica can answer queries, and replicas that crash are simply
removed from the view.

Run with::

    python examples/replicated_catalog.py
"""

from repro import Simulator, build_lan
from repro.gcs import GcsDomain, TotalOrderGroup


class CatalogReplica:
    """A deterministic state machine over agreed multicast."""

    def __init__(self, domain, node_id, name):
        self.name = name
        self.titles = {}  # title -> price
        self.applied = []
        self.group = TotalOrderGroup(
            domain.create_endpoint(node_id),
            "catalog",
            name,
            on_deliver=self._apply,
        )

    def submit(self, op, title, price=None):
        self.group.multicast((op, title, price))

    def _apply(self, sender, command):
        op, title, price = command
        if op == "add":
            self.titles[title] = price
        elif op == "price":
            if title in self.titles:
                self.titles[title] = price
        elif op == "remove":
            self.titles.pop(title, None)
        self.applied.append(command)


def main() -> None:
    sim = Simulator(seed=13)
    topology = build_lan(sim, n_hosts=3)
    domain = GcsDomain(sim, topology.network)
    replicas = [
        CatalogReplica(domain, topology.host(i), f"replica{i}")
        for i in range(3)
    ]
    sim.run_until(2.0)

    # Conflicting updates race in from different replicas...
    replicas[0].submit("add", "casablanca", 3.0)
    replicas[1].submit("add", "casablanca", 4.0)  # concurrent add
    replicas[2].submit("add", "metropolis", 2.0)
    sim.call_at(2.5, replicas[1].submit, "price", "metropolis", 2.5)
    sim.call_at(2.5, replicas[0].submit, "remove", "casablanca")
    sim.run_until(4.0)

    print("after concurrent updates (before any failure):")
    for replica in replicas:
        print(f"  {replica.name}: {sorted(replica.titles.items())}")
    states = [sorted(r.titles.items()) for r in replicas]
    assert states[0] == states[1] == states[2], "replicas diverged!"

    # Crash one replica; the others keep accepting updates.
    topology.network.node(topology.host(0)).crash()
    replicas[0].group.endpoint.crash()
    print("\nreplica0 CRASHED")
    sim.run_until(6.0)
    replicas[1].submit("add", "nosferatu", 1.5)
    sim.run_until(8.0)

    print("after the crash:")
    for replica in replicas[1:]:
        print(f"  {replica.name}: {sorted(replica.titles.items())}")
    assert (
        sorted(replicas[1].titles.items()) == sorted(replicas[2].titles.items())
    )
    history_1 = replicas[1].applied
    history_2 = replicas[2].applied
    assert history_1 == history_2, "operation orders diverged!"
    print(f"\nidentical operation history at both survivors "
          f"({len(history_1)} ops): {history_1}")


if __name__ == "__main__":
    main()
