#!/usr/bin/env python3
"""A WAN viewer with full VCR control and a mid-movie server failure.

The Section 6.2 environment: servers at one university, the client
seven Internet hops away, plain UDP with no QoS reservation.  The
viewer pauses, resumes, seeks around the movie and drops to reduced
quality — and halfway through, the transmitting server dies.

Run with::

    python examples/wan_vcr_session.py
"""

from repro import Deployment, Movie, MovieCatalog, Simulator, build_wan


def main() -> None:
    sim = Simulator(seed=3)
    # Two server hosts at site A; the client at site B, 7 hops away.
    topology = build_wan(sim, n_hosts_site_a=2, n_hosts_site_b=1)
    catalog = MovieCatalog([Movie.synthetic("lecture", duration_s=240)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    client = deployment.attach_client(2)

    def log(message) -> None:
        print(f"[t={sim.now:6.1f}s] {message}")

    client.request_movie("lecture")
    log("requested 'lecture' from the abstract server group")

    sim.run_until(20.0)
    log(f"watching via {client.serving_server}; "
        f"displayed={client.displayed_total}")

    client.pause()
    log("PAUSE (coffee break)")
    sim.run_until(30.0)
    client.resume()
    log("RESUME")

    sim.run_until(40.0)
    client.seek(120.0)
    log("SEEK to 2:00 (random access; buffers flushed, emergency refill)")

    sim.run_until(60.0)
    for server in deployment.live_servers():
        if server.process == client.serving_server:
            server.crash()
            log(f"{server.name} CRASHED (7 hops away, nobody told the client)")

    sim.run_until(80.0)
    log(f"still watching, now via {client.serving_server}")

    client.set_quality(10)
    log("QUALITY reduced to 10 fps (slow last-mile link); "
        "all I frames are kept")
    sim.run_until(120.0)

    print()
    stats = client.stats
    print("received frames:   ", stats.received)
    print("displayed frames:  ", client.displayed_total)
    print("skipped (loss etc):", client.skipped_total)
    print("late/duplicates:   ", stats.late_frames)
    print("overflow discards: ", stats.overflow_discards,
          f"(I frames among them: {stats.overflow_discarded_intra})")
    print("visible stalls:    ",
          f"{client.decoder.stats.stall_time_s:.2f}s "
          f"in {client.decoder.stats.stall_events} event(s)")
    print("migrations:")
    for time, old, new in stats.migrations:
        print(f"  t={time:6.1f}s  {old} -> {new}")


if __name__ == "__main__":
    main()
