#!/usr/bin/env python3
"""Network partition: the service keeps serving on both sides.

Two replicas at each of two sites; one client per site.  The WAN trunk
is cut: each side's movie group shrinks to its local replicas, both
clients keep watching from a local server, and when the trunk heals the
movie group merges back into one view.

Run with::

    python examples/partition_and_merge.py
"""

from repro import Deployment, Movie, MovieCatalog, Simulator, build_wan
from repro.service.protocol import movie_group


def main() -> None:
    sim = Simulator(seed=9)
    # Hosts 0,1 at site A (server + client), hosts 2,3 at site B.
    topology = build_wan(sim, n_hosts_site_a=2, n_hosts_site_b=2)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=240)])
    deployment = Deployment(topology, catalog, server_nodes=[0, 2])

    client_a = deployment.attach_client(1, "client-siteA")
    client_b = deployment.attach_client(3, "client-siteB")
    client_a.request_movie("feature")
    client_b.request_movie("feature")

    def movie_view(server_name):
        server = deployment.server(server_name)
        view = server.endpoint.group_view(movie_group("feature"))
        return [str(m) for m in view.members] if view else None

    sim.run_until(15.0)
    print(f"[t={sim.now:5.1f}s] movie group: {movie_view('server0')}")
    print(f"          clientA <- {client_a.serving_server}, "
          f"clientB <- {client_b.serving_server}")

    # Cut the WAN trunk between switch A (node 0) and the first router.
    switch_a = topology.infrastructure[0]
    first_router = topology.infrastructure[2]
    deployment.network.set_link_state(switch_a, first_router, False)
    print(f"[t={sim.now:5.1f}s] WAN trunk CUT")

    sim.run_until(40.0)
    print(f"[t={sim.now:5.1f}s] side A movie group: {movie_view('server0')}")
    print(f"          side B movie group: {movie_view('server1')}")
    print(f"          clientA <- {client_a.serving_server}, "
          f"clientB <- {client_b.serving_server}")

    deployment.network.set_link_state(switch_a, first_router, True)
    print(f"[t={sim.now:5.1f}s] WAN trunk HEALED")
    sim.run_until(70.0)
    print(f"[t={sim.now:5.1f}s] merged movie group: {movie_view('server0')}")

    sim.run_until(120.0)
    print()
    for name, client in (("A", client_a), ("B", client_b)):
        print(
            f"client {name}: displayed={client.displayed_total} "
            f"skipped={client.skipped_total} "
            f"stall={client.decoder.stats.stall_time_s:.2f}s"
        )
    total_stall = (
        client_a.decoder.stats.stall_time_s
        + client_b.decoder.stats.stall_time_s
    )
    assert total_stall <= 2.0, "partition should not freeze local viewers"
    print("\nBoth viewers rode out the partition on their local replica.")


if __name__ == "__main__":
    main()
