"""The one entry point for every experiment: ``run(spec)``.

Before this existed, the CLI runner, the benchmark harness and ad-hoc
scripts each imported experiment modules and called their bespoke
functions (``run_figure4(seed=...)``, ``measure_takeover(n_trials=...)``
and so on), duplicating the rendering glue three times.  Now:

* :class:`ExperimentSpec` names an experiment plus its parameters;
* :func:`run` dispatches to the owning module's ``run(spec)`` and
  returns an :class:`ExperimentResult` — rendered text blocks, the
  module's native result object (``data``), and any artifact files
  (e.g. a telemetry JSONL export) the run produced.

The original per-module functions remain public (tests and notebooks
call them directly); ``run(spec)`` is a thin veneer over them.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative request to run one named experiment.

    ``params`` holds experiment-specific knobs (e.g. ``clients`` for
    ``sync-overhead``, ``plans`` for ``chaos``); unknown keys are
    ignored by the target module.  ``telemetry_path`` asks experiments
    that execute a scenario to stream a telemetry JSONL export there.
    """

    name: str
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    telemetry_path: Optional[str] = None


@dataclass
class ExperimentResult:
    """What an experiment produced.

    ``blocks`` are render-ready text sections (tables, charts);
    ``data`` is the module's native result object (``Figure4``,
    ``List[ChaosResult]``, ...); ``artifacts`` maps artifact names to
    file paths written during the run.  Experiments that execute an
    observed scenario also fill ``qoe`` (per-client scorecards, see
    :mod:`repro.telemetry.qoe`) and ``slo`` (rule verdicts, see
    :mod:`repro.telemetry.slo`); runs with a flight recorder attached
    fill ``incidents`` (``Incident.as_dict()`` payloads, see
    :mod:`repro.telemetry.flight`).
    """

    spec: ExperimentSpec
    blocks: List[str] = field(default_factory=list)
    data: Any = None
    artifacts: Dict[str, str] = field(default_factory=dict)
    qoe: Dict[str, Any] = field(default_factory=dict)
    slo: Dict[str, Dict] = field(default_factory=dict)
    incidents: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        """The experiment's full text output."""
        return "\n\n".join(self.blocks)


#: name -> (module owning ``run(spec)``, default params merged under the
#: caller's).  Aliases (e.g. ``gcs_latency``) map to the same module.
REGISTRY: Dict[str, Tuple[str, Dict[str, Any]]] = {
    "figure2": ("repro.experiments.figure2", {}),
    "figure4": ("repro.experiments.figure4", {}),
    "figure5": ("repro.experiments.figure5", {}),
    "capacity": ("repro.experiments.capacity", {}),
    "qos": ("repro.experiments.qos", {}),
    "sync-overhead": ("repro.experiments.overheads", {"measure": "sync"}),
    "emergency": ("repro.experiments.overheads", {"measure": "emergency"}),
    "takeover": ("repro.experiments.overheads", {"measure": "takeover"}),
    "overheads": ("repro.experiments.overheads", {"measure": "all"}),
    "gcs": ("repro.experiments.gcs_latency", {}),
    "gcs_latency": ("repro.experiments.gcs_latency", {}),
    "faults": ("repro.experiments.faults", {}),
    "scale": ("repro.experiments.scale", {}),
    "placement": ("repro.experiments.placement", {}),
    "matrix": ("repro.experiments.matrix", {}),
    "chaos": ("repro.faulting.chaos", {}),
    "ablations": ("repro.experiments.ablations", {}),
    "postmortem": ("repro.experiments.postmortem", {}),
}


def attach_observability(result: ExperimentResult, qoe, slo) -> None:
    """Fold an observed run's QoE scorecards and SLO verdicts into
    ``result`` — fills the fields and appends the rendered tables."""
    if qoe:
        from repro.telemetry.qoe import render_scorecards

        result.qoe = dict(qoe)
        result.blocks.append(render_scorecards(result.qoe))
    if slo:
        from repro.telemetry.slo import render_slo

        result.slo = dict(slo)
        result.blocks.append(render_slo(result.slo))


def experiment_names() -> List[str]:
    """All runnable experiment names (aliases included)."""
    return sorted(REGISTRY)


def run(spec: ExperimentSpec) -> ExperimentResult:
    """Run the experiment ``spec`` names and return its result."""
    try:
        module_path, defaults = REGISTRY[spec.name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {spec.name!r}; "
            f"known: {', '.join(experiment_names())}"
        ) from None
    params = dict(defaults)
    params.update(spec.params)
    module = importlib.import_module(module_path)
    return module.run(replace(spec, params=params))
