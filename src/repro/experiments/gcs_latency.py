"""T-gcs — view-agreement latency of the group communication substrate.

The paper's takeover time decomposes into failure detection plus view
agreement; this experiment isolates the substrate's contribution and its
scaling with group size: for n daemons on a LAN, measure

* **join latency** — from a join request to every member (including the
  joiner) installing the enlarged view;
* **crash latency** — from a member's fail-stop to every survivor
  installing the shrunken view (includes the ~0.45 s detection timeout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gcs import GcsDomain, GroupListener
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.sim.core import Simulator


@dataclass
class GcsLatencyPoint:
    group_size: int
    join_latency_s: float
    crash_latency_s: float


def measure_group_size(n: int, seed: int = 81) -> GcsLatencyPoint:
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n + 1)
    domain = GcsDomain(sim, topology.network)

    installs: dict = {}

    def listener(name):
        def on_view(view):
            installs.setdefault(name, []).append((sim.now, len(view.members)))

        return GroupListener(on_view=on_view)

    def first_install(name, size, after):
        for time, members in installs.get(name, []):
            if members == size and time >= after:
                return time
        raise AssertionError(f"{name} never installed a {size}-member view")

    endpoints = []
    for index in range(n):
        endpoint = domain.create_endpoint(topology.host(index))
        endpoint.join("g", f"p{index}", listener(f"p{index}"))
        endpoints.append(endpoint)
    sim.run_until(3.0)

    # Join: bring up daemon n and measure until everyone has n+1 members.
    join_at = sim.now
    joiner = domain.create_endpoint(topology.host(n))
    joiner.join("g", "joiner", listener("joiner"))
    sim.run_until(join_at + 5.0)
    join_done = max(
        first_install(f"p{i}", n + 1, join_at) for i in range(n)
    )
    join_done = max(join_done, first_install("joiner", n + 1, join_at))
    join_latency = join_done - join_at

    # Crash: fail-stop the joiner, measure until survivors see n members.
    crash_at = sim.now
    topology.network.node(topology.host(n)).crash()
    joiner.crash()
    sim.run_until(crash_at + 5.0)
    crash_done = max(
        first_install(f"p{i}", n, crash_at) for i in range(n)
    )
    crash_latency = crash_done - crash_at

    return GcsLatencyPoint(
        group_size=n,
        join_latency_s=join_latency,
        crash_latency_s=crash_latency,
    )


def measure_scaling(sizes=(2, 4, 8, 16)) -> List[GcsLatencyPoint]:
    return [measure_group_size(n) for n in sizes]


def gcs_latency_table(points: List[GcsLatencyPoint]) -> Table:
    table = Table(
        "T-gcs — view agreement latency on a LAN vs group size",
        ["members", "join -> view (s)", "crash -> view (s)"],
    )
    for point in points:
        table.add_row(
            point.group_size,
            f"{point.join_latency_s:.3f}",
            f"{point.crash_latency_s:.3f}",
        )
    return table


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    sizes = tuple(spec.params.get("sizes", (2, 4, 8, 16)))
    points = measure_scaling(sizes=sizes)
    return ExperimentResult(
        spec=spec, blocks=[gcs_latency_table(points).render()], data=points
    )
