"""CI gate for the flyweight scale smoke.

Compares one flyweight point of a ``repro-vod scale --benchmark-json``
sweep against the committed reference
(``benchmarks/BENCH_scale_flyweight.json``).  The simulation is
seed-deterministic, so the event count, frame volume and takeover count
must land inside tight relative bands — drift means the control plane
started doing different work, not that the machine was slow.  Wall time
alone gets a generous absolute ceiling, because CI hardware varies.

Usage::

    python -m repro.experiments.scale_gate artifacts/scale-bench.json \
        [benchmarks/BENCH_scale_flyweight.json]
"""

from __future__ import annotations

import json
import sys
from typing import List


def check(measured_path: str, baseline_path: str) -> List[str]:
    """Return the list of violations (empty means the gate passes)."""
    with open(measured_path) as fh:
        sweep = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    n = baseline["n_clients"]
    points = [
        p for p in sweep.get("points", ())
        if p.get("mode") == "flyweight" and p.get("n_clients") == n
    ]
    if not points:
        return [f"no flyweight point for N={n} in {measured_path}"]
    point = points[0]
    tol = baseline["tolerances"]

    failures: List[str] = []

    def band(name: str, rel_key: str) -> None:
        measured, expected = point[name], baseline[name]
        rel = tol[rel_key]
        if not expected * (1 - rel) <= measured <= expected * (1 + rel):
            failures.append(
                f"{name}: {measured} outside {expected} +/- {rel:.0%}"
            )

    band("events", "events_rel")
    band("frames_delivered", "frames_rel")
    if point["takeovers"] != baseline["takeovers"]:
        failures.append(
            f"takeovers: {point['takeovers']} != {baseline['takeovers']} "
            "(the crash must fail over exactly the victim's share)"
        )
    if point["wall_s"] > tol["wall_ceiling_s"]:
        failures.append(
            f"wall_s: {point['wall_s']:.1f} above the "
            f"{tol['wall_ceiling_s']}s ceiling"
        )
    if point["max_failover_s"] > tol["failover_ceiling_s"]:
        failures.append(
            f"max_failover_s: {point['max_failover_s']:.3f} above the "
            f"{tol['failover_ceiling_s']}s ceiling (failover must stay "
            "flat in N)"
        )
    return failures


def main(argv: List[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    baseline = argv[1] if len(argv) > 1 else (
        "benchmarks/BENCH_scale_flyweight.json"
    )
    failures = check(argv[0], baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("scale flyweight smoke matches the committed reference")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main(sys.argv[1:]))
