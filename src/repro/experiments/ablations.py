"""Ablations over the knobs Section 4.2 calls "subject to fine tuning".

Each sweep re-runs the LAN crash/load-balance scenario varying one
parameter and reports the metrics that parameter trades off:

* **buffer size** — smaller buffers cover a shorter irregularity period
  (stall time rises); larger ones waste memory but absorb more;
* **emergency refill** — without it, re-filling after a migration takes
  tens of seconds and a second fault would hit empty buffers; too
  aggressive a refill overflows the buffers;
* **sync interval** — tighter synchronization shrinks duplicate
  transmission at migration but costs proportionally more control
  bandwidth;
* **failure-detection timeout** — shorter detection shortens the
  irregularity period but (too short) risks false suspicions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from repro.client.player import ClientConfig
from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.metrics.report import Table
from repro.server.rate_controller import EmergencyConfig
from repro.server.server import ServerConfig


@dataclass
class AblationRow:
    parameter: str
    value: str
    stall_s: float
    skipped: int
    late: int
    overflow: int
    control_fraction: float


def _row(parameter: str, value: str, result) -> AblationRow:
    client = result.client
    return AblationRow(
        parameter=parameter,
        value=value,
        stall_s=client.decoder.stats.stall_time_s,
        skipped=client.skipped_total,
        late=client.late_total,
        overflow=client.stats.overflow_discards,
        control_fraction=(
            result.total_control_bytes() / max(1, result.total_video_bytes())
        ),
    )


def ablate_buffer_size(
    sw_capacities: Sequence[int] = (10, 20, 37, 74),
) -> List[AblationRow]:
    rows = []
    for capacity in sw_capacities:
        spec = dataclasses.replace(
            LAN_SCENARIO,
            name=f"lan-sw{capacity}",
            client_config=ClientConfig(sw_capacity_frames=capacity),
        )
        rows.append(_row("sw buffer (frames)", str(capacity), run_scenario(spec)))
    return rows


def ablate_emergency(
    configs: Sequence = (
        ("no refill", EmergencyConfig(base_severe=0, base_mild=0)),
        ("mild only (q=6)", EmergencyConfig(base_severe=6, base_mild=6)),
        ("paper (q=12/6)", EmergencyConfig()),
        ("aggressive (q=24/12)", EmergencyConfig(base_severe=24, base_mild=12)),
    ),
) -> List[AblationRow]:
    rows = []
    for label, emergency in configs:
        spec = dataclasses.replace(
            LAN_SCENARIO,
            name=f"lan-emerg-{label}",
            server_config=ServerConfig(emergency=emergency),
        )
        rows.append(_row("emergency quota", label, run_scenario(spec)))
    return rows


def ablate_sync_interval(
    intervals: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
) -> List[AblationRow]:
    rows = []
    for interval in intervals:
        spec = dataclasses.replace(
            LAN_SCENARIO,
            name=f"lan-sync{interval}",
            server_config=ServerConfig(sync_interval_s=interval),
        )
        rows.append(_row("sync interval (s)", str(interval), run_scenario(spec)))
    return rows


def ablate_fd_timeout(
    timeouts: Sequence[float] = (0.25, 0.45, 1.0, 2.0),
) -> List[AblationRow]:
    # fd_timeout flows through the Deployment; re-run the scenario by
    # hand since ScenarioSpec does not carry it.
    from repro.experiments import scenarios as sc
    from repro.media.catalog import MovieCatalog
    from repro.media.movie import Movie
    from repro.service.deployment import Deployment
    from repro.sim.core import Simulator
    from repro.testing import crash_serving_server

    rows = []
    for timeout in timeouts:
        sim = Simulator(seed=LAN_SCENARIO.seed)
        topology = sc.build_topology(LAN_SCENARIO, sim)
        catalog = MovieCatalog([Movie.synthetic("feature", duration_s=240)])
        deployment = Deployment(
            topology, catalog, server_nodes=[0, 1], fd_timeout=timeout
        )
        client = deployment.attach_client(len(topology.hosts) - 1)
        client.request_movie("feature")
        sim.call_at(38.0, crash_serving_server, deployment, client)
        sim.run_until(120.0)
        client.decoder.end_stall(sim.now)
        fake = type("R", (), {})()
        fake.client = client
        fake.total_control_bytes = lambda: 0
        fake.total_video_bytes = lambda: 1
        rows.append(_row("fd timeout (s)", str(timeout), fake))
    return rows


def ablate_double_emergency(
    sw_capacities: Sequence[int] = (37, 74),
    gap_s: float = 1.0,
) -> List[AblationRow]:
    """A-5: back-to-back failures (Section 4.2's buffer-sizing caveat).

    "Note that our buffer sizes account for a single emergency
    situation. ... In order to guarantee smoothly coping with additional
    emergency situations occurring before the buffers start to re-fill,
    the buffer size should be enlarged."  Two serving-server crashes
    ``gap_s`` apart hit the buffers before the first refill completes;
    the paper-sized buffer shows visible jitter, a doubled buffer rides
    it out.
    """
    from repro.media.catalog import MovieCatalog
    from repro.media.movie import Movie
    from repro.service.deployment import Deployment
    from repro.sim.core import Simulator
    from repro.net.topologies import build_lan

    rows = []
    for capacity in sw_capacities:
        sim = Simulator(seed=31)
        topology = build_lan(sim, n_hosts=4)
        catalog = MovieCatalog([Movie.synthetic("feature", duration_s=90)])
        deployment = Deployment(
            topology,
            catalog,
            server_nodes=[0, 1, 2],
            client_config=ClientConfig(sw_capacity_frames=capacity),
        )
        client = deployment.attach_client(3)
        client.request_movie("feature")

        def crash_serving(deployment=deployment, client=client):
            for server in deployment.live_servers():
                if server.process == client.serving_server:
                    server.crash()
                    return

        sim.call_at(30.0, crash_serving)
        sim.call_at(30.0 + gap_s, crash_serving)
        sim.run_until(80.0)
        client.decoder.end_stall(sim.now)
        fake = type("R", (), {})()
        fake.client = client
        fake.total_control_bytes = lambda: 0
        fake.total_video_bytes = lambda: 1
        rows.append(
            _row("double crash, sw buffer", str(capacity), fake)
        )
    return rows


def ablation_table(rows: List[AblationRow], title: str) -> Table:
    table = Table(
        title,
        ["parameter", "value", "stall (s)", "skipped", "late", "overflow",
         "control/video"],
    )
    for row in rows:
        table.add_row(
            row.parameter,
            row.value,
            f"{row.stall_s:.2f}",
            row.skipped,
            row.late,
            row.overflow,
            f"{row.control_fraction:.5f}",
        )
    return table


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    sweeps = (
        ("A-1 — software buffer size", ablate_buffer_size),
        ("A-2 — emergency refill quota", ablate_emergency),
        ("A-3 — state sync interval", ablate_sync_interval),
        ("A-4 — failure detection timeout", ablate_fd_timeout),
        ("A-5 — back-to-back failures (1 s apart) vs buffer size",
         ablate_double_emergency),
    )
    only = spec.params.get("only")
    result = ExperimentResult(spec=spec, data={})
    for title, sweep in sweeps:
        if only is not None and only not in title:
            continue
        rows = sweep()
        result.data[title] = rows
        result.blocks.append(ablation_table(rows, title).render())
    return result
