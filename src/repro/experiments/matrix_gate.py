"""CI gate for the seeded scenario-matrix SLO sweep.

Compares a ``repro-vod matrix --preset gate --benchmark-json`` run
against the committed reference
(``benchmarks/BENCH_matrix_baseline.json``).  The sweep is
seed-deterministic, so:

* every baseline cell must be present with the **same verdict**
  (ok/breach) and the same reject/degrade counts;
* the :class:`~repro.faulting.invariants.InvariantChecker` must report
  **zero** violations in every cell — fault schedules, populations and
  admission throttling all have to preserve exactly-one-adoption and
  offset continuity;
* per-cell mean and p10 QoE stay inside a relative band of the
  reference (and above an absolute floor);
* the admission faceoff must show the degrade policy **strictly
  beating** reject-only on p10 QoE at equal token-bucket capacity —
  the policy layer's reason to exist.

Usage::

    python -m repro.experiments.matrix_gate artifacts/matrix-bench.json \
        [benchmarks/BENCH_matrix_baseline.json]
"""

from __future__ import annotations

import json
import sys
from typing import List


def check(measured_path: str, baseline_path: str) -> List[str]:
    """Return the list of violations (empty means the gate passes)."""
    with open(measured_path) as fh:
        measured = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    tol = baseline["tolerances"]
    failures: List[str] = []
    measured_cells = measured.get("cells", {})

    for cell_id, expected in baseline["cells"].items():
        got = measured_cells.get(cell_id)
        if got is None:
            failures.append(f"cell {cell_id!r} missing from the run")
            continue

        def band(name: str, rel: float) -> None:
            value, reference = got[name], expected[name]
            low = reference * (1 - rel)
            high = reference * (1 + rel)
            if not low <= value <= high:
                failures.append(
                    f"{cell_id}.{name}: {value} outside "
                    f"{reference} +/- {rel:.0%}"
                )

        if got["verdict"] != expected["verdict"]:
            failures.append(
                f"{cell_id}.verdict: {got['verdict']!r} != "
                f"{expected['verdict']!r}"
            )
        if got["violations"] != 0:
            failures.append(
                f"{cell_id}.violations: {got['violations']} "
                "(the invariant checker must stay silent)"
            )
        band("qoe_mean", tol["qoe_rel"])
        band("qoe_p10", tol["qoe_rel"])
        if got["qoe_mean"] < tol["qoe_floor"]:
            failures.append(
                f"{cell_id}.qoe_mean: {got['qoe_mean']} below the "
                f"{tol['qoe_floor']} floor"
            )
        for counter in ("clients", "rejects", "degrades"):
            if got[counter] != expected[counter]:
                failures.append(
                    f"{cell_id}.{counter}: {got[counter]} != "
                    f"{expected[counter]} (seeded sweep must be "
                    "deterministic)"
                )

    faceoff = measured.get("faceoff", {})
    reject = faceoff.get("reject")
    degrade = faceoff.get("degrade")
    if reject is None or degrade is None:
        failures.append("faceoff results missing from the run")
    elif not degrade["qoe_p10"] > reject["qoe_p10"]:
        failures.append(
            "degrade does not strictly beat reject-only on p10 QoE at "
            f"equal capacity: {degrade['qoe_p10']} <= {reject['qoe_p10']}"
        )
    return failures


def main(argv: List[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    baseline = argv[1] if len(argv) > 1 else (
        "benchmarks/BENCH_matrix_baseline.json"
    )
    failures = check(argv[0], baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("scenario matrix matches the committed reference")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main(sys.argv[1:]))
