"""The two measurement scenarios of the paper's Section 6.

* **LAN** (Section 6.1): one client watches a movie on a switched
  Ethernet served by two replicas; ~38 s in, the transmitting server is
  terminated (crash failover); ~24 s later a new server is brought up
  and the client migrates to it for load balancing.
* **WAN** (Section 6.2): client and servers seven Internet hops apart;
  ~25 s in, a new server is brought up (load-balance migration); ~22 s
  later the transmitting server is terminated.

Both crash "the server transmitting this movie", so the controller
resolves the victim dynamically from the client's session at fire time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.client.player import ClientConfig, VoDClient
from repro.errors import ServiceError
from repro.faulting.injector import FaultInjector
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import (
    Topology,
    build_hierarchy,
    build_lan,
    build_wan,
)
from repro.placement import PlacementContext, ServerProfile, StaticKWay
from repro.server.admission import AdmissionSpec
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.workloads import (
    CHANNEL_SURFER,
    COUCH_POTATO,
    VCR_STORM,
    ViewerProfile,
    WorkloadDriver,
    ZipfCatalogSampler,
    burst_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.export import JsonlExporter
    from repro.telemetry.flight import (
        FlightRecorder,
        FlightRecorderConfig,
        Incident,
    )
    from repro.telemetry.qoe import QoECollector, QoEScorecard
    from repro.telemetry.slo import SloMonitor


#: Viewer-behaviour profiles a :class:`WorkloadSpec` can name.
VIEWER_PROFILES: Dict[str, ViewerProfile] = {
    "couch-potato": COUCH_POTATO,
    "channel-surfer": CHANNEL_SURFER,
    "vcr-storm": VCR_STORM,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative client population riding along the measured client.

    ``kind`` names the arrival process (``flash-crowd`` — everybody
    within ``spread_s`` of ``at_s``; ``diurnal`` — a sinusoidal swell
    from ``base_rate_per_s`` to ``peak_rate_per_s`` over ``window_s``;
    ``poisson`` — a flat Poisson stream at ``peak_rate_per_s``), and
    ``profile`` names the per-viewer behaviour script from
    :data:`VIEWER_PROFILES`.

    :meth:`arrival_times` is a *pure* function of ``(self, seed)`` — it
    draws from a private ``random.Random(seed)``, never the simulator's
    streams — so the same (seed, cell) always yields the identical
    schedule, matrix-wide, regardless of evaluation order.
    """

    kind: str = "flash-crowd"
    n_viewers: int = 8
    at_s: float = 6.0
    spread_s: float = 2.0
    base_rate_per_s: float = 0.05
    peak_rate_per_s: float = 0.4
    window_s: float = 40.0
    profile: str = "couch-potato"

    def arrival_times(self, seed: int) -> List[float]:
        """The population's arrival schedule for ``seed``."""
        rng = random.Random(seed)
        if self.kind == "flash-crowd":
            return burst_arrivals(
                rng, self.n_viewers, self.at_s, self.spread_s
            )
        if self.kind == "diurnal":
            return diurnal_arrivals(
                rng,
                self.base_rate_per_s,
                self.peak_rate_per_s,
                self.window_s,
                start_s=self.at_s,
                limit=self.n_viewers,
            )
        if self.kind == "poisson":
            return poisson_arrivals(
                rng,
                self.peak_rate_per_s,
                self.window_s,
                start_s=self.at_s,
                limit=self.n_viewers,
            )
        raise ServiceError(f"unknown workload kind {self.kind!r}")

    def viewer_profile(self) -> ViewerProfile:
        profile = VIEWER_PROFILES.get(self.profile)
        if profile is None:
            raise ServiceError(f"unknown viewer profile {self.profile!r}")
        return profile


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of a measurement run.

    Faults come either from ``schedule`` — the compact legacy
    ``(time, action)`` tuples — or from an explicit ``plan`` built with
    the full :class:`~repro.faulting.plan.FaultPlan` DSL; ``plan`` wins
    when both are set.

    The population fields are additive and default-off: with
    ``workload=None``, ``admission=None`` and ``n_client_hosts=1`` a
    spec builds the historical single-client world byte-for-byte.  A
    ``workload`` attaches a :class:`WorkloadDriver` population on the
    last ``n_client_hosts - 1`` hosts (the measured client keeps the
    final host); an ``admission`` spec installs the pool-level policy
    from :mod:`repro.server.admission` on every server.
    """

    name: str
    network: str  # "lan" | "wan" | "hierarchy"
    movie_duration_s: float = 240.0
    run_duration_s: float = 240.0
    n_initial_servers: int = 2
    # (time, action) pairs; action is "crash-serving" or "server-up".
    schedule: Tuple[Tuple[float, str], ...] = ()
    plan: Optional[FaultPlan] = None
    seed: int = 11
    client_config: Optional[ClientConfig] = None
    server_config: Optional[ServerConfig] = None
    workload: Optional[WorkloadSpec] = None
    admission: Optional[AdmissionSpec] = None
    n_client_hosts: int = 1


#: Section 6.1: crash at ~38 s, new server (load balance) ~24 s later.
LAN_SCENARIO = ScenarioSpec(
    name="lan",
    network="lan",
    schedule=((38.0, "crash-serving"), (62.0, "server-up")),
)

#: Section 6.2: new server at ~25 s, crash of the transmitting server
#: ~22 s later.  The paper ran this for a shorter window; 150 s covers
#: both events with margin.
WAN_SCENARIO = ScenarioSpec(
    name="wan",
    network="wan",
    movie_duration_s=150.0,
    run_duration_s=150.0,
    schedule=((25.0, "server-up"), (47.0, "crash-serving")),
    seed=5,
)


@dataclass
class ScenarioResult:
    """Everything the figure extractors need from one run."""

    spec: ScenarioSpec
    sim: Simulator
    deployment: Deployment
    client: VoDClient
    # The executed fault plan and injector (fire log, resolved targets).
    plan: Optional[FaultPlan] = None
    injector: Optional[FaultInjector] = None
    # The riding-along population, when the spec declared a workload.
    driver: Optional[WorkloadDriver] = None
    # Times at which schedule actions actually fired.
    crash_times: List[float] = field(default_factory=list)
    server_up_times: List[float] = field(default_factory=list)
    # Set when the run streamed a telemetry JSONL export.
    telemetry_path: Optional[str] = None
    # Per-client QoE scorecards, SLO rule verdicts and the raw take-
    # over/rebalance durations, filled when the run attached observers
    # (i.e. whenever telemetry is exported).
    qoe: Dict[str, "QoEScorecard"] = field(default_factory=dict)
    slo: Dict[str, Dict] = field(default_factory=dict)
    failovers: List[float] = field(default_factory=list)
    # Flight-recorder incidents and self-metering, when one was attached.
    incidents: List["Incident"] = field(default_factory=list)
    flight: Optional[Dict] = None

    @property
    def events(self) -> Dict[str, List[float]]:
        return {"crash": self.crash_times, "server-up": self.server_up_times}

    def total_video_bytes(self) -> int:
        return sum(
            server.video_bytes_sent for server in self.deployment.servers.values()
        )

    def total_video_frames(self) -> int:
        return sum(
            server.video_frames_sent
            for server in self.deployment.servers.values()
        )

    def export_dict(self) -> dict:
        """A JSON-serializable dump of the run, for offline analysis."""
        client = self.client
        stats = client.stats

        def series(ts):
            return {"t": list(ts.times), "v": list(ts.values)}

        return {
            "spec": {
                "name": self.spec.name,
                "network": self.spec.network,
                "seed": self.spec.seed,
                "schedule": list(self.spec.schedule),
                "run_duration_s": self.spec.run_duration_s,
            },
            "plan": list(self.plan.describe()) if self.plan else [],
            "fired": [
                {"t": t, "action": note}
                for t, note in (self.injector.fired if self.injector else [])
            ],
            "events": {
                "crash": list(self.crash_times),
                "server_up": list(self.server_up_times),
            },
            "counters": {
                "received": stats.received,
                "displayed": client.displayed_total,
                "skipped": client.skipped_total,
                "late": stats.late_frames,
                "duplicates": stats.duplicates,
                "overflow_discards": stats.overflow_discards,
                "overflow_discarded_intra": stats.overflow_discarded_intra,
                "flow_messages": stats.flow_messages,
                "emergencies_sent": stats.emergencies_sent,
                "reconnects": stats.reconnects,
                "stall_time_s": client.decoder.stats.stall_time_s,
                "stall_events": client.decoder.stats.stall_events,
                "video_bytes": self.total_video_bytes(),
                "control_bytes": self.total_control_bytes(),
            },
            # A missing endpoint is null, not the string "None" — the
            # startup adoption's from-server round-trips as the absence
            # it is.
            "migrations": [
                {
                    "t": t,
                    "from": None if old is None else str(old),
                    "to": None if new is None else str(new),
                }
                for t, old, new in stats.migrations
            ],
            # Every ClientStats series, not just the float-friendly
            # subset an earlier version cherry-picked.
            "series": {
                "sw_occupancy": series(stats.sw_occupancy),
                "hw_occupancy_bytes": series(stats.hw_occupancy_bytes),
                "combined_occupancy": series(stats.combined_occupancy),
                "skipped_cum": series(stats.skipped_cum),
                "late_cum": series(stats.late_cum),
                "overflow_cum": series(stats.overflow_cum),
                "received_bytes_cum": series(stats.received_bytes_cum),
                "displayed_cum": series(stats.displayed_cum),
            },
        }

    def export_json(self, path: str) -> None:
        """Write :meth:`export_dict` to ``path`` as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.export_dict(), handle, indent=1)

    def total_control_bytes(self) -> int:
        total = 0
        for server in self.deployment.servers.values():
            total += server.endpoint.control_bytes_sent
        for client in self.deployment.clients.values():
            total += client.endpoint.control_bytes_sent
        return total


def build_topology(spec: ScenarioSpec, sim: Simulator) -> Topology:
    if spec.network == "lan":
        # Hosts: server slots + 2 spares, client hosts last.
        return build_lan(
            sim, n_hosts=spec.n_initial_servers + 2 + spec.n_client_hosts
        )
    if spec.network == "wan":
        # Server slots at site A, the clients at site B (7 hops away).
        return build_wan(
            sim,
            n_hosts_site_a=spec.n_initial_servers + 2,
            n_hosts_site_b=spec.n_client_hosts,
        )
    if spec.network == "hierarchy":
        # Server slots at the head-end core, clients behind the edge
        # concentrators.
        return build_hierarchy(
            sim,
            n_core_hosts=spec.n_initial_servers + 2,
            n_edge_hosts=spec.n_client_hosts,
        )
    raise ValueError(f"unknown network kind {spec.network!r}")


def plan_for_spec(spec: ScenarioSpec) -> FaultPlan:
    """The :class:`FaultPlan` a spec describes.

    An explicit ``spec.plan`` is returned as-is.  Legacy ``schedule``
    tuples are translated action by action; ``server-up`` entries pin
    the host slot explicitly (``n_initial_servers``, then the next slot,
    and so on) to preserve the historical "new servers claim fresh
    hosts" semantics rather than the injector's default refill-vacancy
    policy.
    """
    if spec.plan is not None:
        return spec.plan
    plan = FaultPlan(name=spec.name, seed=spec.seed)
    next_server_slot = spec.n_initial_servers
    for at, action in spec.schedule:
        if action == "crash-serving":
            plan = plan.crash_serving(at)
        elif action == "server-up":
            plan = plan.server_up(at, host=next_server_slot)
            next_server_slot += 1
        else:
            raise ValueError(f"unknown scenario action {action!r}")
    return plan


@dataclass
class LiveScenario:
    """A scenario built but not yet (fully) run.

    ``run_scenario`` drives one of these to completion; ``repro-vod
    watch`` instead calls :meth:`step` in short slices, redrawing a
    dashboard between them.  Either way :meth:`finish` settles the
    observers, writes the telemetry summary trailer and fills in the
    :class:`ScenarioResult`.  Used as a context manager, ``finish`` runs
    even when the simulation raises — the export then records the crash
    and the partial scorecards survive.
    """

    spec: ScenarioSpec
    sim: Simulator
    result: ScenarioResult
    injector: FaultInjector
    exporter: Optional["JsonlExporter"] = None
    qoe_collector: Optional["QoECollector"] = None
    slo_monitor: Optional["SloMonitor"] = None
    flight_recorder: Optional["FlightRecorder"] = None
    _finished: bool = False

    def step(self, until: float, max_events: Optional[int] = None) -> float:
        """Advance the simulation toward ``until``; returns the new now.

        With an event budget the slice may end early; ``sim.now`` then
        reflects the last dispatched event (not ``until``), so callers
        just keep stepping while ``now < until`` — no compensation.
        """
        self.sim.run_until(until, max_events=max_events)
        return self.sim.now

    def finish(self, error: Optional[BaseException] = None) -> ScenarioResult:
        """Settle observers, close the export, fill the result."""
        if self._finished:
            return self.result
        self._finished = True
        result = self.result
        injector = self.injector
        result.crash_times = list(injector.crash_times)
        result.server_up_times = list(injector.server_up_times)
        # Observers settle before the exporter closes so the trailing
        # SLO window's breach/recover events land in the artifact.
        if self.qoe_collector is not None:
            result.qoe = self.qoe_collector.finish(self.sim.now)
        if self.slo_monitor is not None:
            self.slo_monitor.finish(self.sim.now)
            result.slo = self.slo_monitor.summary()
            result.failovers = list(self.slo_monitor.failovers)
        abandoned_spans = None
        if self.flight_recorder is not None:
            # Abandon open spans *before* the recorder finishes: an
            # abandoned takeover span is an incident trigger, and the
            # exporter (still subscribed) captures the same events it
            # would have emitted itself at close.  finish() then
            # publishes the telemetry.flight.* self-metering into the
            # registry, so the export's summary snapshot carries it.
            abandoned_spans = self.sim.telemetry.abandon_open_spans(
                reason="export-close"
            )
            result.incidents = self.flight_recorder.finish(self.sim.now)
            result.flight = self.flight_recorder.metering()
        if self.exporter is not None:
            summary = dict(
                faults_fired=len(injector.fired),
                displayed=result.client.displayed_total,
                skipped=result.client.skipped_total,
                tracer_dropped=self.sim.tracer.dropped,
            )
            if abandoned_spans is not None:
                # The exporter's own sweep will find nothing now; keep
                # its summary listing faithful.
                summary["open_spans"] = [
                    {"span": s.kind, "key": s.key, "start": s.start}
                    for s in abandoned_spans
                ]
            if self.slo_monitor is not None:
                summary["slo_breaches"] = self.slo_monitor.total_breaches
            if error is not None:
                summary.update(
                    crashed=True, error=f"{type(error).__name__}: {error}"
                )
            self.exporter.close(**summary)
            result.telemetry_path = self.exporter.path
        return result

    def __enter__(self) -> "LiveScenario":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.finish(error=exc)
        return False  # never swallow the exception


def prepare_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    telemetry_path: Optional[str] = None,
    telemetry_full: bool = False,
    observe: Optional[bool] = None,
    flight: bool = False,
    flight_config: Optional["FlightRecorderConfig"] = None,
    telemetry_max_events: Optional[int] = None,
    telemetry_since: Optional[float] = None,
    telemetry_until: Optional[float] = None,
) -> LiveScenario:
    """Build a scenario's world without running it.

    ``telemetry_path`` streams the run's telemetry to a JSONL file (see
    :mod:`repro.telemetry.export`; a ``.gz`` suffix compresses, and
    ``telemetry_max_events`` / ``telemetry_since`` / ``telemetry_until``
    bound the export).  ``observe`` attaches the QoE and SLO observers;
    it defaults to "whenever telemetry is exported", and can be forced
    on (``repro-vod watch`` without an artifact) or off.  ``flight``
    attaches a :class:`~repro.telemetry.flight.FlightRecorder` so the
    run assembles incidents (``result.incidents``).  All of these are
    pure observers, so results are identical with or without them.
    """
    effective_seed = spec.seed if seed is None else seed
    sim = Simulator(seed=effective_seed)
    exporter = None
    if telemetry_path is not None:
        from repro.telemetry.export import JsonlExporter

        exporter = JsonlExporter(
            sim.telemetry,
            telemetry_path,
            full=telemetry_full,
            max_events=telemetry_max_events,
            since=telemetry_since,
            until=telemetry_until,
        )
        exporter.meta(
            scenario=spec.name,
            network=spec.network,
            seed=effective_seed,
            run_duration_s=spec.run_duration_s,
        )
    qoe_collector = None
    slo_monitor = None
    if observe is None:
        observe = telemetry_path is not None
    if observe:
        from repro.telemetry.qoe import QoECollector
        from repro.telemetry.slo import SloMonitor

        qoe_collector = QoECollector(sim.telemetry)
        slo_rules = None
        if spec.admission is not None:
            # Admission is opt-in, and so is its SLO rule — keeping
            # default summaries stable for policy-free runs.
            from repro.telemetry.slo import AdmissionStormRule, default_rules

            slo_rules = default_rules() + (AdmissionStormRule(),)
        slo_monitor = SloMonitor(sim.telemetry, rules=slo_rules)
    flight_recorder = None
    if flight:
        from repro.telemetry.flight import FlightRecorder

        flight_recorder = FlightRecorder(sim.telemetry, flight_config)
    topology = build_topology(spec, sim)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=spec.movie_duration_s)]
    )
    # The replica map is derived, not hand-authored: the paper's
    # measurement scenarios replicate the single feature at every
    # initial server, which is exactly a k=n static spread.  Servers
    # brought up later by the fault plan are unknown to the plan and
    # fall back to replicate_all, preserving the historical "new
    # servers hold everything" semantics.
    profiles = [
        ServerProfile(name=f"server{i}")
        for i in range(spec.n_initial_servers)
    ]
    plan = StaticKWay(k=spec.n_initial_servers).build(
        PlacementContext(
            catalog=catalog, servers=profiles, k=spec.n_initial_servers
        )
    )
    deployment = Deployment.from_placement(
        topology,
        plan,
        catalog,
        server_hosts={profile.name: i for i, profile in enumerate(profiles)},
        server_config=spec.server_config,
        client_config=spec.client_config,
        replicate_all=True,
        admission_policy=(
            spec.admission.build() if spec.admission is not None else None
        ),
    )
    client_host = len(topology.hosts) - 1
    client = deployment.attach_client(client_host)
    client.request_movie("feature")

    driver = None
    if spec.workload is not None:
        if spec.n_client_hosts < 2:
            raise ServiceError(
                "a workload population needs n_client_hosts >= 2 (the "
                "measured client keeps the last host)"
            )
        # The measured client holds the final host; the population gets
        # the client hosts before it.
        viewer_hosts = list(
            range(len(topology.hosts) - spec.n_client_hosts, client_host)
        )
        driver = WorkloadDriver(
            deployment,
            viewer_hosts,
            sampler=ZipfCatalogSampler(["feature"]),
            profile=spec.workload.viewer_profile(),
            workload_seed=effective_seed,
        )
        driver.schedule_arrivals(spec.workload.arrival_times(effective_seed))

    plan = plan_for_spec(spec)
    injector = FaultInjector(deployment, plan, client=client).start()
    result = ScenarioResult(
        spec, sim, deployment, client, plan, injector, driver
    )
    return LiveScenario(
        spec=spec,
        sim=sim,
        result=result,
        injector=injector,
        exporter=exporter,
        qoe_collector=qoe_collector,
        slo_monitor=slo_monitor,
        flight_recorder=flight_recorder,
    )


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    telemetry_path: Optional[str] = None,
    telemetry_full: bool = False,
    observe: Optional[bool] = None,
    flight: bool = False,
    flight_config: Optional["FlightRecorderConfig"] = None,
    telemetry_max_events: Optional[int] = None,
    telemetry_since: Optional[float] = None,
    telemetry_until: Optional[float] = None,
) -> ScenarioResult:
    """Execute a scenario and return the collected measurements.

    ``telemetry_path`` additionally streams the run's telemetry to a
    JSONL file and attaches the QoE/SLO observers (``result.qoe`` /
    ``result.slo``); ``flight`` attaches the flight recorder
    (``result.incidents``).  All are pure observers, so measurements
    are identical with or without them.  The export's summary trailer
    is written even if the simulation raises.
    """
    live = prepare_scenario(
        spec,
        seed=seed,
        telemetry_path=telemetry_path,
        telemetry_full=telemetry_full,
        observe=observe,
        flight=flight,
        flight_config=flight_config,
        telemetry_max_events=telemetry_max_events,
        telemetry_since=telemetry_since,
        telemetry_until=telemetry_until,
    )
    with live:
        live.step(spec.run_duration_s)
    return live.result
