"""The two measurement scenarios of the paper's Section 6.

* **LAN** (Section 6.1): one client watches a movie on a switched
  Ethernet served by two replicas; ~38 s in, the transmitting server is
  terminated (crash failover); ~24 s later a new server is brought up
  and the client migrates to it for load balancing.
* **WAN** (Section 6.2): client and servers seven Internet hops apart;
  ~25 s in, a new server is brought up (load-balance migration); ~22 s
  later the transmitting server is terminated.

Both crash "the server transmitting this movie", so the controller
resolves the victim dynamically from the client's session at fire time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.client.player import ClientConfig, VoDClient
from repro.faulting.injector import FaultInjector
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.net.topologies import Topology, build_lan, build_wan
from repro.placement import PlacementContext, ServerProfile, StaticKWay
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.export import JsonlExporter
    from repro.telemetry.qoe import QoECollector, QoEScorecard
    from repro.telemetry.slo import SloMonitor


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of a measurement run.

    Faults come either from ``schedule`` — the compact legacy
    ``(time, action)`` tuples — or from an explicit ``plan`` built with
    the full :class:`~repro.faulting.plan.FaultPlan` DSL; ``plan`` wins
    when both are set.
    """

    name: str
    network: str  # "lan" | "wan"
    movie_duration_s: float = 240.0
    run_duration_s: float = 240.0
    n_initial_servers: int = 2
    # (time, action) pairs; action is "crash-serving" or "server-up".
    schedule: Tuple[Tuple[float, str], ...] = ()
    plan: Optional[FaultPlan] = None
    seed: int = 11
    client_config: Optional[ClientConfig] = None
    server_config: Optional[ServerConfig] = None


#: Section 6.1: crash at ~38 s, new server (load balance) ~24 s later.
LAN_SCENARIO = ScenarioSpec(
    name="lan",
    network="lan",
    schedule=((38.0, "crash-serving"), (62.0, "server-up")),
)

#: Section 6.2: new server at ~25 s, crash of the transmitting server
#: ~22 s later.  The paper ran this for a shorter window; 150 s covers
#: both events with margin.
WAN_SCENARIO = ScenarioSpec(
    name="wan",
    network="wan",
    movie_duration_s=150.0,
    run_duration_s=150.0,
    schedule=((25.0, "server-up"), (47.0, "crash-serving")),
    seed=5,
)


@dataclass
class ScenarioResult:
    """Everything the figure extractors need from one run."""

    spec: ScenarioSpec
    sim: Simulator
    deployment: Deployment
    client: VoDClient
    # The executed fault plan and injector (fire log, resolved targets).
    plan: Optional[FaultPlan] = None
    injector: Optional[FaultInjector] = None
    # Times at which schedule actions actually fired.
    crash_times: List[float] = field(default_factory=list)
    server_up_times: List[float] = field(default_factory=list)
    # Set when the run streamed a telemetry JSONL export.
    telemetry_path: Optional[str] = None
    # Per-client QoE scorecards, SLO rule verdicts and the raw take-
    # over/rebalance durations, filled when the run attached observers
    # (i.e. whenever telemetry is exported).
    qoe: Dict[str, "QoEScorecard"] = field(default_factory=dict)
    slo: Dict[str, Dict] = field(default_factory=dict)
    failovers: List[float] = field(default_factory=list)

    @property
    def events(self) -> Dict[str, List[float]]:
        return {"crash": self.crash_times, "server-up": self.server_up_times}

    def total_video_bytes(self) -> int:
        return sum(
            server.video_bytes_sent for server in self.deployment.servers.values()
        )

    def total_video_frames(self) -> int:
        return sum(
            server.video_frames_sent
            for server in self.deployment.servers.values()
        )

    def export_dict(self) -> dict:
        """A JSON-serializable dump of the run, for offline analysis."""
        client = self.client
        stats = client.stats

        def series(ts):
            return {"t": list(ts.times), "v": list(ts.values)}

        return {
            "spec": {
                "name": self.spec.name,
                "network": self.spec.network,
                "seed": self.spec.seed,
                "schedule": list(self.spec.schedule),
                "run_duration_s": self.spec.run_duration_s,
            },
            "plan": list(self.plan.describe()) if self.plan else [],
            "fired": [
                {"t": t, "action": note}
                for t, note in (self.injector.fired if self.injector else [])
            ],
            "events": {
                "crash": list(self.crash_times),
                "server_up": list(self.server_up_times),
            },
            "counters": {
                "received": stats.received,
                "displayed": client.displayed_total,
                "skipped": client.skipped_total,
                "late": stats.late_frames,
                "duplicates": stats.duplicates,
                "overflow_discards": stats.overflow_discards,
                "overflow_discarded_intra": stats.overflow_discarded_intra,
                "flow_messages": stats.flow_messages,
                "emergencies_sent": stats.emergencies_sent,
                "reconnects": stats.reconnects,
                "stall_time_s": client.decoder.stats.stall_time_s,
                "stall_events": client.decoder.stats.stall_events,
                "video_bytes": self.total_video_bytes(),
                "control_bytes": self.total_control_bytes(),
            },
            "migrations": [
                {"t": t, "from": str(old), "to": str(new)}
                for t, old, new in stats.migrations
            ],
            "series": {
                "sw_occupancy": series(stats.sw_occupancy),
                "hw_occupancy_bytes": series(stats.hw_occupancy_bytes),
                "skipped_cum": series(stats.skipped_cum),
                "late_cum": series(stats.late_cum),
                "overflow_cum": series(stats.overflow_cum),
            },
        }

    def export_json(self, path: str) -> None:
        """Write :meth:`export_dict` to ``path`` as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.export_dict(), handle, indent=1)

    def total_control_bytes(self) -> int:
        total = 0
        for server in self.deployment.servers.values():
            total += server.endpoint.control_bytes_sent
        for client in self.deployment.clients.values():
            total += client.endpoint.control_bytes_sent
        return total


def build_topology(spec: ScenarioSpec, sim: Simulator) -> Topology:
    if spec.network == "lan":
        # Hosts: up to 4 server slots + 1 client.
        return build_lan(sim, n_hosts=spec.n_initial_servers + 3)
    if spec.network == "wan":
        # Server slots at site A, the client at site B (7 hops away).
        return build_wan(
            sim,
            n_hosts_site_a=spec.n_initial_servers + 2,
            n_hosts_site_b=1,
        )
    raise ValueError(f"unknown network kind {spec.network!r}")


def plan_for_spec(spec: ScenarioSpec) -> FaultPlan:
    """The :class:`FaultPlan` a spec describes.

    An explicit ``spec.plan`` is returned as-is.  Legacy ``schedule``
    tuples are translated action by action; ``server-up`` entries pin
    the host slot explicitly (``n_initial_servers``, then the next slot,
    and so on) to preserve the historical "new servers claim fresh
    hosts" semantics rather than the injector's default refill-vacancy
    policy.
    """
    if spec.plan is not None:
        return spec.plan
    plan = FaultPlan(name=spec.name, seed=spec.seed)
    next_server_slot = spec.n_initial_servers
    for at, action in spec.schedule:
        if action == "crash-serving":
            plan = plan.crash_serving(at)
        elif action == "server-up":
            plan = plan.server_up(at, host=next_server_slot)
            next_server_slot += 1
        else:
            raise ValueError(f"unknown scenario action {action!r}")
    return plan


@dataclass
class LiveScenario:
    """A scenario built but not yet (fully) run.

    ``run_scenario`` drives one of these to completion; ``repro-vod
    watch`` instead calls :meth:`step` in short slices, redrawing a
    dashboard between them.  Either way :meth:`finish` settles the
    observers, writes the telemetry summary trailer and fills in the
    :class:`ScenarioResult`.  Used as a context manager, ``finish`` runs
    even when the simulation raises — the export then records the crash
    and the partial scorecards survive.
    """

    spec: ScenarioSpec
    sim: Simulator
    result: ScenarioResult
    injector: FaultInjector
    exporter: Optional["JsonlExporter"] = None
    qoe_collector: Optional["QoECollector"] = None
    slo_monitor: Optional["SloMonitor"] = None
    _finished: bool = False

    def step(self, until: float, max_events: Optional[int] = None) -> float:
        """Advance the simulation toward ``until``; returns the new now.

        With an event budget the slice may end early; ``sim.now`` then
        reflects the last dispatched event (not ``until``), so callers
        just keep stepping while ``now < until`` — no compensation.
        """
        self.sim.run_until(until, max_events=max_events)
        return self.sim.now

    def finish(self, error: Optional[BaseException] = None) -> ScenarioResult:
        """Settle observers, close the export, fill the result."""
        if self._finished:
            return self.result
        self._finished = True
        result = self.result
        injector = self.injector
        result.crash_times = list(injector.crash_times)
        result.server_up_times = list(injector.server_up_times)
        # Observers settle before the exporter closes so the trailing
        # SLO window's breach/recover events land in the artifact.
        if self.qoe_collector is not None:
            result.qoe = self.qoe_collector.finish(self.sim.now)
        if self.slo_monitor is not None:
            self.slo_monitor.finish(self.sim.now)
            result.slo = self.slo_monitor.summary()
            result.failovers = list(self.slo_monitor.failovers)
        if self.exporter is not None:
            summary = dict(
                faults_fired=len(injector.fired),
                displayed=result.client.displayed_total,
                skipped=result.client.skipped_total,
                tracer_dropped=self.sim.tracer.dropped,
            )
            if self.slo_monitor is not None:
                summary["slo_breaches"] = self.slo_monitor.total_breaches
            if error is not None:
                summary.update(
                    crashed=True, error=f"{type(error).__name__}: {error}"
                )
            self.exporter.close(**summary)
            result.telemetry_path = self.exporter.path
        return result

    def __enter__(self) -> "LiveScenario":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.finish(error=exc)
        return False  # never swallow the exception


def prepare_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    telemetry_path: Optional[str] = None,
    telemetry_full: bool = False,
    observe: Optional[bool] = None,
) -> LiveScenario:
    """Build a scenario's world without running it.

    ``telemetry_path`` streams the run's telemetry to a JSONL file (see
    :mod:`repro.telemetry.export`).  ``observe`` attaches the QoE and
    SLO observers; it defaults to "whenever telemetry is exported", and
    can be forced on (``repro-vod watch`` without an artifact) or off.
    All of these are pure observers, so results are identical with or
    without them.
    """
    sim = Simulator(seed=spec.seed if seed is None else seed)
    exporter = None
    if telemetry_path is not None:
        from repro.telemetry.export import JsonlExporter

        exporter = JsonlExporter(
            sim.telemetry, telemetry_path, full=telemetry_full
        )
        exporter.meta(
            scenario=spec.name,
            network=spec.network,
            seed=spec.seed if seed is None else seed,
            run_duration_s=spec.run_duration_s,
        )
    qoe_collector = None
    slo_monitor = None
    if observe is None:
        observe = telemetry_path is not None
    if observe:
        from repro.telemetry.qoe import QoECollector
        from repro.telemetry.slo import SloMonitor

        qoe_collector = QoECollector(sim.telemetry)
        slo_monitor = SloMonitor(sim.telemetry)
    topology = build_topology(spec, sim)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=spec.movie_duration_s)]
    )
    # The replica map is derived, not hand-authored: the paper's
    # measurement scenarios replicate the single feature at every
    # initial server, which is exactly a k=n static spread.  Servers
    # brought up later by the fault plan are unknown to the plan and
    # fall back to replicate_all, preserving the historical "new
    # servers hold everything" semantics.
    profiles = [
        ServerProfile(name=f"server{i}")
        for i in range(spec.n_initial_servers)
    ]
    plan = StaticKWay(k=spec.n_initial_servers).build(
        PlacementContext(
            catalog=catalog, servers=profiles, k=spec.n_initial_servers
        )
    )
    deployment = Deployment.from_placement(
        topology,
        plan,
        catalog,
        server_hosts={profile.name: i for i, profile in enumerate(profiles)},
        server_config=spec.server_config,
        client_config=spec.client_config,
        replicate_all=True,
    )
    client_host = len(topology.hosts) - 1
    client = deployment.attach_client(client_host)
    client.request_movie("feature")

    plan = plan_for_spec(spec)
    injector = FaultInjector(deployment, plan, client=client).start()
    result = ScenarioResult(spec, sim, deployment, client, plan, injector)
    return LiveScenario(
        spec=spec,
        sim=sim,
        result=result,
        injector=injector,
        exporter=exporter,
        qoe_collector=qoe_collector,
        slo_monitor=slo_monitor,
    )


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    telemetry_path: Optional[str] = None,
    telemetry_full: bool = False,
    observe: Optional[bool] = None,
) -> ScenarioResult:
    """Execute a scenario and return the collected measurements.

    ``telemetry_path`` additionally streams the run's telemetry to a
    JSONL file and attaches the QoE/SLO observers (``result.qoe`` /
    ``result.slo``); all are pure observers, so measurements are
    identical with or without them.  The export's summary trailer is
    written even if the simulation raises.
    """
    live = prepare_scenario(
        spec,
        seed=seed,
        telemetry_path=telemetry_path,
        telemetry_full=telemetry_full,
        observe=observe,
    )
    with live:
        live.step(spec.run_duration_s)
    return live.result
