"""Figure 4: overcoming the irregularity of video transmission in a LAN.

Four panels, all measured at the client during the LAN scenario
(crash at ~38 s, load-balance migration at ~62 s):

* (a) cumulative skipped frames — small steps (<= ~6) at each emergency
  period, and none of the overflow victims is an I frame;
* (b) cumulative late frames — duplicate transmissions at each
  migration (the conservative handoff);
* (c) software buffer occupancy — fills to a mean of ~23 frames,
  oscillates between the water marks, drops to zero at the crash and to
  about a quarter of capacity at the load balance;
* (d) hardware buffer occupancy in bytes — fills within ~10 s and dips
  after the crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.scenarios import LAN_SCENARIO, ScenarioResult, run_scenario
from repro.metrics.report import Table
from repro.telemetry.series import TimeSeries

#: Window (seconds) after a scenario event in which its effects land.
EVENT_WINDOW_S = 12.0


@dataclass
class Figure4:
    """Extracted series and summary facts for all four panels."""

    result: ScenarioResult
    skipped: TimeSeries
    late: TimeSeries
    sw_occupancy: TimeSeries
    hw_occupancy_bytes: TimeSeries
    crash_time: float
    lb_time: float

    # ------------------------------------------------------------------
    # Panel (a): skipped frames
    # ------------------------------------------------------------------
    def skipped_at_startup(self) -> float:
        return self.skipped.increase_over(0.0, 20.0)

    def skipped_at_crash(self) -> float:
        return self.skipped.increase_over(
            self.crash_time - 1, self.crash_time + EVENT_WINDOW_S
        )

    def skipped_at_lb(self) -> float:
        return self.skipped.increase_over(
            self.lb_time - 1, self.lb_time + EVENT_WINDOW_S
        )

    def intra_frames_discarded(self) -> int:
        return self.result.client.stats.overflow_discarded_intra

    # ------------------------------------------------------------------
    # Panel (b): late frames
    # ------------------------------------------------------------------
    def late_at_crash(self) -> float:
        return self.late.increase_over(
            self.crash_time - 1, self.crash_time + EVENT_WINDOW_S
        )

    def late_at_lb(self) -> float:
        return self.late.increase_over(
            self.lb_time - 1, self.lb_time + EVENT_WINDOW_S
        )

    # ------------------------------------------------------------------
    # Panel (c): software buffer
    # ------------------------------------------------------------------
    def sw_mean_steady(self) -> float:
        """Mean occupancy over the quiet stretch after the migrations."""
        start = self.lb_time + 20.0
        return self.sw_occupancy.mean(start, self.result.spec.run_duration_s - 5)

    def sw_min_after_crash(self) -> float:
        return self.sw_occupancy.min(
            self.crash_time, self.crash_time + EVENT_WINDOW_S
        )

    def sw_min_after_lb(self) -> float:
        return self.sw_occupancy.min(self.lb_time, self.lb_time + EVENT_WINDOW_S)

    def sw_fill_time(self, fraction: float = 0.9) -> float:
        """Seconds until occupancy first reaches ``fraction`` of its
        steady mean (the paper: mean reached after ~14 s)."""
        target = fraction * self.sw_mean_steady()
        for time, value in zip(self.sw_occupancy.times, self.sw_occupancy.values):
            if value >= target:
                return time
        return float("inf")

    # ------------------------------------------------------------------
    # Panel (d): hardware buffer
    # ------------------------------------------------------------------
    def hw_fill_time(self, fraction: float = 0.9) -> float:
        capacity = self.result.client.decoder.capacity_bytes
        for time, value in zip(
            self.hw_occupancy_bytes.times, self.hw_occupancy_bytes.values
        ):
            if value >= fraction * capacity:
                return time
        return float("inf")

    def hw_min_fraction_after_crash(self) -> float:
        capacity = self.result.client.decoder.capacity_bytes
        low = self.hw_occupancy_bytes.min(
            self.crash_time, self.crash_time + EVENT_WINDOW_S
        )
        return low / capacity

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary_table(self) -> Table:
        client = self.result.client
        table = Table(
            "Figure 4 — LAN irregularity recovery (paper shape vs measured)",
            ["panel", "quantity", "paper", "measured"],
        )
        table.add_row("a", "skipped per emergency event", "<= 6",
                      f"start={self.skipped_at_startup():.0f} "
                      f"crash={self.skipped_at_crash():.0f} "
                      f"lb={self.skipped_at_lb():.0f}")
        table.add_row("a", "I frames among overflow discards", "0",
                      f"{self.intra_frames_discarded()}")
        table.add_row("b", "late (duplicate) frames at crash", "step",
                      f"{self.late_at_crash():.0f}")
        table.add_row("b", "late (duplicate) frames at load balance", "step",
                      f"{self.late_at_lb():.0f}")
        table.add_row("c", "software mean occupancy (frames)", "~23",
                      f"{self.sw_mean_steady():.1f}")
        table.add_row("c", "software occupancy after crash", "drops to 0",
                      f"{self.sw_min_after_crash():.0f}")
        table.add_row("c", "software occupancy after load balance", "~1/4 cap",
                      f"{self.sw_min_after_lb():.0f}"
                      f"/{client.config.sw_capacity_frames}")
        table.add_row("d", "hardware buffer fill time (s)", "~10",
                      f"{self.hw_fill_time():.1f}")
        table.add_row("d", "hardware dip after crash (fraction)", "~3/4",
                      f"{self.hw_min_fraction_after_crash():.2f}")
        table.add_row("-", "stalls visible to the viewer", "none",
                      f"{client.decoder.stats.stall_time_s:.2f}s")
        table.add_row("-", "image degradation per event", "< 1 s, not noticeable",
                      f"{client.decoder.stats.degraded_frames} frames over "
                      f"{client.decoder.stats.degradation_episodes} episode(s)")
        return table

    def series_samples(self, every: float = 20.0) -> Dict[str, List[Tuple[float, float]]]:
        """Down-sampled curves, one row per ``every`` seconds."""
        end = self.result.spec.run_duration_s

        def sample(series: TimeSeries):
            points = []
            t = 0.0
            while t <= end:
                value = series.value_at(t)
                if value is not None:
                    points.append((t, value))
                t += every
            return points

        return {
            "4a_skipped": sample(self.skipped),
            "4b_late": sample(self.late),
            "4c_software_frames": sample(self.sw_occupancy),
            "4d_hardware_bytes": sample(self.hw_occupancy_bytes),
        }


def run_figure4(seed: int = None, telemetry_path: str = None) -> Figure4:
    result = run_scenario(LAN_SCENARIO, seed=seed, telemetry_path=telemetry_path)
    stats = result.client.stats
    return Figure4(
        result=result,
        skipped=stats.skipped_cum,
        late=stats.late_cum,
        sw_occupancy=stats.sw_occupancy,
        hw_occupancy_bytes=stats.hw_occupancy_bytes,
        crash_time=result.crash_times[0],
        lb_time=result.server_up_times[0],
    )


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult, attach_observability
    from repro.metrics.ascii_chart import render_timeseries

    figure = run_figure4(seed=spec.seed, telemetry_path=spec.telemetry_path)
    result = ExperimentResult(spec=spec, data=figure)
    attach_observability(result, figure.result.qoe, figure.result.slo)
    json_path = spec.params.get("json")
    if json_path:
        figure.result.export_json(json_path)
        result.artifacts["json"] = json_path
        result.blocks.append(f"run exported to {json_path}")
    if spec.telemetry_path:
        result.artifacts["telemetry"] = spec.telemetry_path
    result.blocks.append(figure.summary_table().render())
    markers = [(figure.crash_time, "crash"), (figure.lb_time, "load balance")]
    for title, series in (
        ("Figure 4(a) — cumulative skipped frames", figure.skipped),
        ("Figure 4(b) — cumulative late frames", figure.late),
        ("Figure 4(c) — software buffer occupancy (frames)",
         figure.sw_occupancy),
        ("Figure 4(d) — hardware buffer occupancy (bytes)",
         figure.hw_occupancy_bytes),
    ):
        result.blocks.append(
            render_timeseries(series, title=title, markers=markers)
        )
    return result
