"""Figure 2: the client's flow-control policy table.

Regenerates the paper's table by evaluating the implemented policy over
every occupancy band and trend, confirming the implementation *is* the
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.client.flow_control import FlowControlConfig, FlowControlPolicy
from repro.metrics.report import Table
from repro.service.protocol import FlowControlMsg, FlowKind


@dataclass(frozen=True)
class PolicyRow:
    band: str
    condition: str
    frequency: str
    request: str


def _describe(message: Optional[FlowControlMsg]) -> str:
    if message is None:
        return "(none)"
    if message.kind == FlowKind.EMERGENCY:
        return f"emergency (level {int(message.level)})"
    return message.kind.value


def generate_policy_rows(
    capacity_frames: int = 79, config: Optional[FlowControlConfig] = None
) -> List[PolicyRow]:
    """Evaluate the policy across all Figure 2 bands."""
    policy = FlowControlPolicy(config or FlowControlConfig(), capacity_frames)
    lwm, hwm = policy.low_water, policy.high_water
    mild, severe = int(policy.critical_mild), int(policy.critical_severe)
    mid = (lwm + hwm) // 2
    rows = []

    def probe(occupancy: int, previous: Optional[int], band: str, cond: str):
        policy.previous_occupancy = previous
        message = policy.decide(occupancy, occupancy)
        frequency = "f_normal" if policy.in_normal_band(occupancy) else "f_urgent"
        rows.append(PolicyRow(band, cond, frequency, _describe(message)))

    probe(max(0, severe - 1), None, f"0 .. {severe} (severe critical)", "-")
    probe(mild - 1, None, f"{severe} .. {mild} (mild critical)", "-")
    probe((mild + lwm) // 2, None, f"{mild} .. {lwm - 1}", "-")
    probe(mid, mid + 3, f"{lwm} .. {hwm - 1}", "occ < previous")
    probe(mid, mid - 3, f"{lwm} .. {hwm - 1}", "occ > previous")
    probe(mid, mid, f"{lwm} .. {hwm - 1}", "occ == previous")
    probe(hwm + 1, None, f"{hwm} .. full", "-")
    return rows


def render_figure2(capacity_frames: int = 79) -> str:
    table = Table(
        "Figure 2 — client flow-control policy (regenerated from the "
        "implementation)",
        ["occupancy band", "condition", "frequency", "request"],
    )
    for row in generate_policy_rows(capacity_frames):
        table.add_row(row.band, row.condition, row.frequency, row.request)
    return table.render()


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    capacity = spec.params.get("capacity_frames", 79)
    rows = generate_policy_rows(capacity)
    return ExperimentResult(
        spec=spec, blocks=[render_figure2(capacity)], data=rows
    )
