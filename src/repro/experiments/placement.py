"""Placement experiment: replication strategies under correlated faults.

The paper stores movies "on different servers for load balancing" and
tolerates "the failure of k-1 servers" when every movie has k replicas
— but never says *which* servers should hold *which* movies.  This
experiment runs the same catalog-scale service under each strategy in
:data:`repro.placement.STRATEGIES` and compares what the choice buys:

* a Zipf(0.8)-popular catalog mapped onto six servers in three
  failure domains (racks) by the strategy under test;
* a staggered population of full clients sampling titles by
  popularity;
* two **live replica migrations** through the online
  :class:`~repro.placement.Rebalancer` (copy-then-drop over the
  ordinary join/leave machinery) while streams are running;
* a **correlated crash** — the whole first rack dies at once — with
  availability measured while the outage is fresh;
* a :meth:`~repro.placement.Rebalancer.heal` pass restoring the
  replication floor, after which stranded viewers re-admit themselves;
* a **flash crowd** piling onto the rank-1 title late in the run.

Scored per strategy: storage cost (catalog copies), analytic and
measured availability under the rack crash, mean viewer QoE, stalls,
migration outcomes, prefix handoffs (the ``prefix`` strategy hands
sessions from edge caches to core servers mid-stream) and — the hard
gate — :class:`~repro.faulting.invariants.InvariantChecker` violations,
which must be **zero** for every strategy.  The expected headline:
``markov`` strictly beats ``static`` on availability under the
correlated crash at comparable storage, because the Markov strategy
never lands a title's whole replica set in one failure domain.

CI regression-checks the emitted benchmark JSON against
``benchmarks/BENCH_placement_baseline.json`` via
:mod:`repro.experiments.placement_gate`.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import ExperimentResult, ExperimentSpec
from repro.faulting.invariants import InvariantChecker
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.placement import (
    PlacementContext,
    PlacementPlan,
    Rebalancer,
    ServerProfile,
    make_strategy,
    plan_availability,
    surviving_availability,
)
from repro.placement.plan import build_zipf_catalog
from repro.service.deployment import Deployment
from repro.sim.core import Simulator
from repro.workloads.popularity import ZipfCatalogSampler

#: Default strategy line-up (every entry of ``repro.placement.STRATEGIES``).
DEFAULT_STRATEGIES: Tuple[str, ...] = ("static", "popularity", "markov", "prefix")

#: Six servers, two per rack; the whole first rack dies mid-run.  Rack0
#: is also the *least* reliable hardware, so availability-aware
#: placement has real signal to act on.
N_SERVERS = 6
RACK_FAIL_RATES = {"rack0": 0.04, "rack1": 0.02, "rack2": 0.01}
CRASHED_RACK = "rack0"

#: Edge caches store only this many seconds of each title under the
#: ``prefix`` strategy; long enough that handoffs land inside the run.
PREFIX_S = 45.0

#: Timeline (seconds of simulated time).
T_MIGRATE = 8.0
T_CRASH = 20.0
T_MEASURE = 22.0
T_HEAL = 26.0
T_FLASH = 30.0
DEFAULT_DURATION_S = 52.0

#: Catalog and population defaults — small enough for CI, large enough
#: that strategies actually diverge.
DEFAULT_TITLES = 24
DEFAULT_CLIENTS = 18
DEFAULT_FLASH = 6
MOVIE_DURATION_S = 150.0
ZIPF_ALPHA = 0.8
REPLICATION_K = 2


@dataclass
class StrategyOutcome:
    """Everything measured about one strategy's run."""

    strategy: str
    storage_copies: float
    steady_availability: float  # popularity-weighted, all servers up
    outage_analytic: float  # plan-based, CRASHED_RACK down
    outage_measured: float  # live catalog at T_MEASURE
    qoe_mean: float
    stall_events: int
    migrations_completed: int
    migrations_aborted: int
    prefix_handoffs: int
    heal_additions: int
    violations: int
    violation_details: List[str] = field(default_factory=list)
    telemetry_path: Optional[str] = None

    def as_benchmark(self) -> Dict[str, object]:
        return {
            "storage_copies": round(self.storage_copies, 4),
            "steady_availability": round(self.steady_availability, 6),
            "outage_analytic": round(self.outage_analytic, 6),
            "outage_measured": round(self.outage_measured, 6),
            "qoe_mean": round(self.qoe_mean, 4),
            "stall_events": self.stall_events,
            "migrations_completed": self.migrations_completed,
            "migrations_aborted": self.migrations_aborted,
            "prefix_handoffs": self.prefix_handoffs,
            "heal_additions": self.heal_additions,
            "violations": self.violations,
        }


@dataclass
class PlacementComparison:
    """The experiment's native result: one outcome per strategy."""

    seed: int
    n_titles: int
    n_clients: int
    outcomes: List[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: str) -> StrategyOutcome:
        for outcome in self.outcomes:
            if outcome.strategy == strategy:
                return outcome
        raise KeyError(strategy)

    def benchmark_dict(self) -> Dict[str, object]:
        return {
            "experiment": "placement",
            "seed": self.seed,
            "n_titles": self.n_titles,
            "n_clients": self.n_clients,
            "strategies": {
                outcome.strategy: outcome.as_benchmark()
                for outcome in self.outcomes
            },
        }


def build_profiles(strategy: str) -> List[ServerProfile]:
    """Six servers, two per rack; the last rack is edge caches under
    the ``prefix`` strategy."""
    profiles = []
    for index in range(N_SERVERS):
        domain = f"rack{index // 2}"
        profiles.append(
            ServerProfile(
                name=f"server{index}",
                domain=domain,
                fail_rate=RACK_FAIL_RATES[domain],
                repair_rate=1.0,
                edge=(strategy == "prefix" and domain == "rack2"),
            )
        )
    return profiles


def _strategy_for(name: str) -> object:
    if name == "prefix":
        return make_strategy(name, prefix_s=PREFIX_S)
    return make_strategy(name)


def measured_availability(
    deployment: Deployment, shares: Dict[str, float]
) -> float:
    """Popularity-weighted share of titles with a live full replica —
    what the *actual* replica map (after migrations) provides, not what
    the original plan promised."""
    live = {server.name for server in deployment.live_servers()}
    total = 0.0
    for title, share in shares.items():
        if deployment.catalog.full_replicas(title) & live:
            total += share
    return total


def _pick_migrations(
    deployment: Deployment, plan: PlacementPlan, count: int = 2
) -> List[Tuple[str, str, str]]:
    """Deterministic (title, source, target) picks: move a popular
    title's first replica to the least-loaded live server holding no
    copy of it."""
    catalog = deployment.catalog
    live = sorted(
        server.name for server in deployment.live_servers()
    )
    moves: List[Tuple[str, str, str]] = []
    for title in plan.titles():
        if len(moves) >= count:
            break
        holders = catalog.full_replicas(title)
        sources = [name for name in sorted(holders) if name in live]
        targets = [
            name
            for name in live
            if name not in holders
            and catalog.prefix_of(title, name) is None
        ]
        if sources and targets:
            targets.sort(key=lambda name: (len(catalog.movies_of(name)), name))
            moves.append((title, sources[0], targets[0]))
    return moves


def run_strategy(
    strategy: str,
    seed: int,
    n_titles: int = DEFAULT_TITLES,
    n_clients: int = DEFAULT_CLIENTS,
    n_flash: int = DEFAULT_FLASH,
    duration_s: float = DEFAULT_DURATION_S,
    telemetry_path: Optional[str] = None,
) -> StrategyOutcome:
    """Run the full fault timeline under one placement strategy."""
    sim = Simulator(seed=seed)
    exporter = None
    if telemetry_path is not None:
        from repro.telemetry.export import JsonlExporter

        exporter = JsonlExporter(sim.telemetry, telemetry_path)
        exporter.meta(
            experiment="placement", strategy=strategy, seed=seed,
            run_duration_s=duration_s,
        )
    from repro.telemetry.qoe import QoECollector

    qoe_collector = QoECollector(sim.telemetry)
    placement_events, placement_sub = sim.telemetry.collect(
        prefixes=("placement.",)
    )

    catalog = build_zipf_catalog(n_titles, duration_s=MOVIE_DURATION_S)
    profiles = build_profiles(strategy)
    ctx = PlacementContext(
        catalog=catalog, servers=profiles, k=REPLICATION_K, alpha=ZIPF_ALPHA
    )
    plan = _strategy_for(strategy).build(ctx)
    shares = ctx.shares()

    topology = build_lan(sim, n_hosts=N_SERVERS + n_clients + n_flash)
    deployment = Deployment.from_placement(
        topology,
        plan,
        catalog,
        server_hosts={profile.name: i for i, profile in enumerate(profiles)},
    )
    # A strategy may leave some servers empty (markov shuns the shaky
    # rack); bring them up anyway as standby capacity for heal().
    for index, profile in enumerate(profiles):
        if profile.name not in deployment.servers:
            deployment.add_server(index, name=profile.name)
    checker = InvariantChecker(deployment).install()
    rebalancer = Rebalancer(deployment)

    # Staggered Zipf-popular audience.  One RNG per run, seeded the
    # same for every strategy, so all strategies face the identical
    # request sequence.
    rng = random.Random(seed)
    sampler = ZipfCatalogSampler(catalog.titles(), alpha=ZIPF_ALPHA)
    wishlist = sampler.sample_many(rng, n_clients)
    for index, title in enumerate(wishlist):
        client = deployment.attach_client(N_SERVERS + index)
        sim.call_at(
            0.25 + 0.1 * index,
            lambda c=client, t=title: c.request_movie(t),
        )

    # t=8: live migrations through the online rebalancer.
    def start_migrations() -> None:
        for title, source, target in _pick_migrations(deployment, plan):
            rebalancer.migrate(title, source, target)

    sim.call_at(T_MIGRATE, start_migrations)

    # t=20: the whole first rack dies at once (correlated crash).
    crashed = [
        profile.name for profile in profiles if profile.domain == CRASHED_RACK
    ]

    def crash_rack() -> None:
        for name in crashed:
            server = deployment.server(name)
            if server.running:
                server.crash()

    sim.call_at(T_CRASH, crash_rack)

    # t=22: availability while the outage is fresh (pre-heal).
    outage: Dict[str, float] = {}
    sim.call_at(
        T_MEASURE,
        lambda: outage.setdefault(
            "measured", measured_availability(deployment, shares)
        ),
    )

    # t=26: restore the replication floor on the survivors.
    heal_additions: List[Tuple[str, str]] = []
    sim.call_at(T_HEAL, lambda: heal_additions.extend(rebalancer.heal()))

    # t=30: flash crowd on the rank-1 title.
    hot_title = catalog.titles()[0]
    for index in range(n_flash):
        client = deployment.attach_client(N_SERVERS + n_clients + index)
        sim.call_at(
            T_FLASH + 0.15 * index,
            lambda c=client, t=hot_title: c.request_movie(t),
        )

    error: Optional[BaseException] = None
    try:
        sim.run_until(duration_s)
    except BaseException as exc:  # pragma: no cover - diagnostics path
        error = exc
        raise
    finally:
        checker.stop()
        scorecards = qoe_collector.finish(sim.now)
        placement_sub.close()
        if exporter is not None:
            summary = dict(
                strategy=strategy,
                violations=len(checker.violations),
                migrations_completed=len(rebalancer.completed),
            )
            if error is not None:
                summary.update(
                    crashed=True, error=f"{type(error).__name__}: {error}"
                )
            exporter.close(**summary)

    scores = [card.score() for card in scorecards.values()]
    stall_events = sum(
        client.decoder.stats.stall_events
        for client in deployment.clients.values()
    )
    handoffs = sum(
        1 for event in placement_events if event.kind == "placement.prefix.handoff"
    )
    return StrategyOutcome(
        strategy=strategy,
        storage_copies=plan.storage_copies(catalog),
        steady_availability=plan_availability(plan, ctx),
        outage_analytic=surviving_availability(plan, ctx, crashed),
        outage_measured=outage.get("measured", 0.0),
        qoe_mean=sum(scores) / len(scores) if scores else 0.0,
        stall_events=stall_events,
        migrations_completed=len(rebalancer.completed),
        migrations_aborted=len(rebalancer.aborted),
        prefix_handoffs=handoffs,
        heal_additions=len(heal_additions),
        violations=len(checker.violations),
        violation_details=[str(v) for v in checker.violations],
        telemetry_path=telemetry_path,
    )


def compare_strategies(
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 11,
    n_titles: int = DEFAULT_TITLES,
    n_clients: int = DEFAULT_CLIENTS,
    n_flash: int = DEFAULT_FLASH,
    duration_s: float = DEFAULT_DURATION_S,
    telemetry_path: Optional[str] = None,
) -> PlacementComparison:
    """Run every strategy over the identical fault timeline."""
    comparison = PlacementComparison(
        seed=seed, n_titles=n_titles, n_clients=n_clients
    )
    for strategy in strategies:
        per_strategy_path = None
        if telemetry_path is not None:
            root, ext = os.path.splitext(telemetry_path)
            per_strategy_path = f"{root}-{strategy}{ext or '.jsonl'}"
        comparison.outcomes.append(
            run_strategy(
                strategy,
                seed=seed,
                n_titles=n_titles,
                n_clients=n_clients,
                n_flash=n_flash,
                duration_s=duration_s,
                telemetry_path=per_strategy_path,
            )
        )
    return comparison


def render_comparison(comparison: PlacementComparison) -> str:
    table = Table(
        "Placement strategies under a correlated rack crash "
        f"(seed={comparison.seed}, {comparison.n_titles} titles, "
        f"{comparison.n_clients} viewers)",
        [
            "strategy",
            "copies",
            "steady avail",
            "outage avail",
            "measured",
            "QoE",
            "stalls",
            "migr ok/abort",
            "handoffs",
            "heals",
            "violations",
        ],
    )
    for outcome in comparison.outcomes:
        table.add_row(
            outcome.strategy,
            f"{outcome.storage_copies:.2f}",
            f"{outcome.steady_availability:.4f}",
            f"{outcome.outage_analytic:.4f}",
            f"{outcome.outage_measured:.4f}",
            f"{outcome.qoe_mean:.1f}",
            outcome.stall_events,
            f"{outcome.migrations_completed}/{outcome.migrations_aborted}",
            outcome.prefix_handoffs,
            outcome.heal_additions,
            outcome.violations,
        )
    return table.render()


def run(spec: ExperimentSpec) -> ExperimentResult:
    """``repro-vod placement`` entry point."""
    params = spec.params
    strategies = params.get("strategies") or DEFAULT_STRATEGIES
    if isinstance(strategies, str):
        strategies = tuple(
            part.strip() for part in strategies.split(",") if part.strip()
        )
    comparison = compare_strategies(
        strategies,
        seed=spec.seed if spec.seed is not None else 11,
        n_titles=int(params.get("titles") or DEFAULT_TITLES),
        n_clients=int(params.get("clients") or DEFAULT_CLIENTS),
        n_flash=int(params.get("flash") or DEFAULT_FLASH),
        duration_s=float(params.get("duration") or DEFAULT_DURATION_S),
        telemetry_path=spec.telemetry_path,
    )
    result = ExperimentResult(spec=spec, data=comparison)
    result.blocks.append(render_comparison(comparison))
    notes = []
    try:
        static = comparison.outcome("static")
        markov = comparison.outcome("markov")
    except KeyError:
        static = markov = None
    if static is not None and markov is not None:
        verdict = (
            "beats" if markov.outage_analytic > static.outage_analytic
            else "does NOT beat"
        )
        notes.append(
            f"markov {verdict} static under the {CRASHED_RACK} crash: "
            f"{markov.outage_analytic:.4f} vs {static.outage_analytic:.4f} "
            f"availability at {markov.storage_copies:.2f} vs "
            f"{static.storage_copies:.2f} catalog copies."
        )
    total_violations = sum(o.violations for o in comparison.outcomes)
    if total_violations:
        details = [
            line
            for outcome in comparison.outcomes
            for line in outcome.violation_details
        ]
        notes.append(
            f"INVARIANT VIOLATIONS: {total_violations}\n  "
            + "\n  ".join(details[:10])
        )
    else:
        notes.append(
            "InvariantChecker: 0 violations across all strategies "
            "(migrations, rack crash, heal, flash crowd)."
        )
    result.blocks.append("\n".join(notes))
    for outcome in comparison.outcomes:
        if outcome.telemetry_path:
            result.artifacts[f"telemetry-{outcome.strategy}"] = (
                outcome.telemetry_path
            )
    benchmark_json = params.get("benchmark_json")
    if benchmark_json:
        with open(benchmark_json, "w") as handle:
            json.dump(comparison.benchmark_dict(), handle, indent=1)
            handle.write("\n")
        result.artifacts["benchmark"] = benchmark_json
    return result
