"""T-ft: fault-tolerance envelope (paper Section 7 comparison).

"If a movie is replicated k times, then up to k-1 failures are
tolerated" — versus Microsoft Tiger, which "smoothly tolerates the
failure of one server, but not necessarily two failures even if the
failures are not concurrent", and versus a plain single server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.single_server import run_single_server_crash
from repro.baselines.striped import run_striped_crash
from repro.faulting.injector import FaultInjector
from repro.faulting.invariants import InvariantChecker
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


@dataclass
class FaultTrial:
    system: str
    servers: int
    kills: int
    stall_time_s: float
    skipped: int
    displayed: int
    # Runtime invariant violations (group-service trials only; the
    # baselines have no GCS to check).
    violations: int = 0

    @property
    def survived(self) -> bool:
        """Playback continuity survived: no human-visible freeze (>1 s)."""
        return self.stall_time_s <= 1.0


def kill_plan(kills: int, first_at: float = 30.0, gap_s: float = 15.0) -> FaultPlan:
    """``kills`` non-concurrent crashes of the serving server."""
    plan = FaultPlan(name=f"kill-{kills}")
    for kill in range(kills):
        plan = plan.crash_serving(first_at + gap_s * kill)
    return plan


def run_group_service_trial(
    k: int = 3, kills: int = 2, duration_s: float = 90.0, seed: int = 61
) -> FaultTrial:
    """k replicas, crash ``kills`` servers 15 s apart (non-concurrent)."""
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=k + 1)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=duration_s)])
    deployment = Deployment(topology, catalog, server_nodes=list(range(k)))
    checker = InvariantChecker(deployment).install()
    client = deployment.attach_client(k)
    client.request_movie("feature")

    injector = FaultInjector(deployment, kill_plan(kills), client=client)
    injector.start()
    sim.run_until(duration_s)
    checker.final_check()
    checker.stop()
    client.decoder.end_stall(sim.now)
    return FaultTrial(
        system="group-communication VoD",
        servers=k,
        kills=kills,
        stall_time_s=client.decoder.stats.stall_time_s,
        skipped=client.skipped_total,
        displayed=client.displayed_total,
        violations=len(checker.violations),
    )


def run_striped_trial(
    n: int = 3, kills: int = 1, duration_s: float = 90.0, seed: int = 31
) -> FaultTrial:
    client, cluster = run_striped_crash(
        n_servers=n, kills=kills, duration_s=duration_s, seed=seed
    )
    del cluster
    return FaultTrial(
        system="Tiger-like striped",
        servers=n,
        kills=kills,
        stall_time_s=client.stall_time_s,
        skipped=client.skipped_total,
        displayed=client.decoder.stats.displayed,
    )


def run_single_server_trial(duration_s: float = 90.0, seed: int = 41) -> FaultTrial:
    client, deployment = run_single_server_crash(duration_s=duration_s, seed=seed)
    del deployment
    return FaultTrial(
        system="single server",
        servers=1,
        kills=1,
        stall_time_s=client.decoder.stats.stall_time_s,
        skipped=client.skipped_total,
        displayed=client.displayed_total,
    )


def run_fault_matrix(duration_s: float = 90.0) -> List[FaultTrial]:
    """The full comparison matrix of the Section 7 discussion."""
    trials = [run_single_server_trial(duration_s=duration_s)]
    for kills in (1, 2):
        trials.append(run_striped_trial(n=3, kills=kills, duration_s=duration_s))
    for kills in (1, 2):
        trials.append(
            run_group_service_trial(k=3, kills=kills, duration_s=duration_s)
        )
    return trials


def fault_matrix_table(trials: List[FaultTrial]) -> Table:
    table = Table(
        "T-ft — failures tolerated (3 servers unless noted, kills 15 s apart)",
        [
            "system",
            "servers",
            "kills",
            "stall (s)",
            "skipped",
            "survived",
            "violations",
        ],
    )
    for trial in trials:
        table.add_row(
            trial.system,
            trial.servers,
            trial.kills,
            f"{trial.stall_time_s:.1f}",
            trial.skipped,
            "yes" if trial.survived else "NO",
            trial.violations if "group" in trial.system else "-",
        )
    return table


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    duration_s = float(spec.params.get("duration_s", 90.0))
    trials = run_fault_matrix(duration_s=duration_s)
    return ExperimentResult(
        spec=spec, blocks=[fault_matrix_table(trials).render()], data=trials
    )
