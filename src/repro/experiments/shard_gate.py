"""CI gate for the sharded scale smoke.

Compares the sharded point of a ``repro-vod scale --sharded-sizes``
sweep against the committed reference
(``benchmarks/BENCH_shard_scale.json``).  Every shard is a
seed-deterministic simulation under its content-addressed seed, so the
merged event count, frame volume and takeover count must land inside
tight relative bands — drift means the shards started doing different
work, not that the pool got slow.  On top of the scale gate's checks
the sharded point must also prove its merge contracts: the
order-independence self-check recorded by
:func:`~repro.experiments.scale.run_sharded_scale_point`, an exact
merged QoE population, and the paper's SLO rules all green over the
merged facts.  Wall time alone gets a generous absolute ceiling,
because CI hardware varies.

Usage::

    python -m repro.experiments.shard_gate artifacts/shard-bench.json \
        [benchmarks/BENCH_shard_scale.json]
"""

from __future__ import annotations

import json
import sys
from typing import List


def check(measured_path: str, baseline_path: str) -> List[str]:
    """Return the list of violations (empty means the gate passes)."""
    with open(measured_path) as fh:
        sweep = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    n = baseline["n_clients"]
    n_shards = baseline["n_shards"]
    points = [
        p for p in sweep.get("points", ())
        if p.get("mode") == "sharded" and p.get("n_clients") == n
        and p.get("n_shards") == n_shards
    ]
    if not points:
        return [
            f"no sharded point for N={n} over {n_shards} shards "
            f"in {measured_path}"
        ]
    point = points[0]
    tol = baseline["tolerances"]

    failures: List[str] = []

    def band(name: str, rel_key: str) -> None:
        measured, expected = point[name], baseline[name]
        rel = tol[rel_key]
        if not expected * (1 - rel) <= measured <= expected * (1 + rel):
            failures.append(
                f"{name}: {measured} outside {expected} +/- {rel:.0%}"
            )

    band("events", "events_rel")
    band("frames_delivered", "frames_rel")
    if point["takeovers"] != baseline["takeovers"]:
        failures.append(
            f"takeovers: {point['takeovers']} != {baseline['takeovers']} "
            "(each shard's crash must fail over exactly the victim's share)"
        )
    if point["wall_s"] > tol["wall_ceiling_s"]:
        failures.append(
            f"wall_s: {point['wall_s']:.1f} above the "
            f"{tol['wall_ceiling_s']}s ceiling"
        )
    if point["max_failover_s"] > tol["failover_ceiling_s"]:
        failures.append(
            f"max_failover_s: {point['max_failover_s']:.3f} above the "
            f"{tol['failover_ceiling_s']}s ceiling (failover must stay "
            "flat in N)"
        )

    # Merge contracts, on top of the scale gate's checks.
    if point.get("merge_deterministic") is not True:
        failures.append(
            "merge_deterministic is not True: the reversed-order re-merge "
            "self-check did not run or did not hold"
        )
    if point.get("violations", 0) != 0:
        failures.append(
            f"violations: {point['violations']} invariant violations "
            "across shards (must be 0)"
        )
    qoe = point.get("qoe") or {}
    if qoe.get("n") != n:
        failures.append(
            f"qoe.n: merged QoE histogram covers {qoe.get('n')} viewers, "
            f"expected the whole population of {n}"
        )
    expected_qoe = baseline.get("qoe") or {}
    for key in ("p10", "p50"):
        if key in expected_qoe and qoe.get(key) != expected_qoe[key]:
            failures.append(
                f"qoe.{key}: {qoe.get(key)} != {expected_qoe[key]} "
                "(score quantiles are exact over the integer buckets)"
            )
    for name, state in (point.get("slo") or {}).items():
        if not state.get("ok", False):
            failures.append(
                f"slo.{name}: merged run breaches the paper's service "
                f"level (value {state.get('value')})"
            )
    return failures


def main(argv: List[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    baseline = argv[1] if len(argv) > 1 else (
        "benchmarks/BENCH_shard_scale.json"
    )
    failures = check(argv[0], baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("sharded scale smoke matches the committed reference")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main(sys.argv[1:]))
