"""CI gate for the flight recorder: the ``postmortem-smoke`` job.

Runs the seeded chaos point (flyweight viewers, a mid-run crash of the
most-loaded server) and proves the recorder's three contracts end to
end:

* **Non-perturbation** — the same point with the recorder on and off
  produces byte-identical simulated outcomes (event count, frames,
  takeover count and every failover latency; PR 2's observer contract).
* **Bounded memory** — the recorder's own metering shows ring occupancy
  within the configured budget and capture volume within its cap.
* **Explainability** — at least one :class:`Incident` is assembled, its
  failover breakdowns sum exactly (detect + agree + redistribute =
  take-over span), and the postmortem renderer produces a report
  carrying the critical-path table.

The same checks then repeat over the 4-shard shared-nothing path, whose
incidents must merge order-independently (the reversed-order re-merge
is folded into ``merge_deterministic``).

Usage::

    python -m repro.experiments.postmortem_gate [N] [SHARDS]
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

#: Gate workload: big enough that sampling, eviction and capture all
#: engage; small enough for CI (seconds per run).
GATE_N = 20_000
GATE_SHARDS = 4
GATE_DURATION_S = 12.0
GATE_SEED = 77

_EXACT_EPS = 1e-9


def _signature(point) -> str:
    """The simulated outcome as one comparable string (byte-identical
    means equal here)."""
    return json.dumps(
        {
            "events": point.events,
            "frames": point.frames_delivered,
            "takeovers": point.takeovers,
            "failover_latencies": point.failover_latencies,
        },
        sort_keys=True,
    )


def _check_incidents(incidents: List[Dict], where: str) -> List[str]:
    failures: List[str] = []
    if not incidents:
        failures.append(f"{where}: no incident assembled (expected >= 1 "
                        "from the mid-run crash)")
        return failures
    breakdowns = 0
    for incident in incidents:
        for b in incident["breakdowns"]:
            breakdowns += 1
            total = b["detect_s"] + b["agree_s"] + b["redistribute_s"]
            if abs(total - b["total_s"]) > _EXACT_EPS:
                failures.append(
                    f"{where}: {incident['id']} client {b['client']}: "
                    f"detect+agree+redistribute = {total!r} != takeover "
                    f"span {b['total_s']!r}"
                )
    if not breakdowns:
        failures.append(f"{where}: incidents carry no failover breakdowns")
    return failures


def _check_metering(metering: Dict, where: str) -> List[str]:
    failures: List[str] = []
    occupancy = metering.get("occupancy", 0)
    budget = metering.get("ring_budget", 0)
    if occupancy > budget:
        failures.append(
            f"{where}: ring occupancy {occupancy} exceeds the configured "
            f"budget of {budget} events"
        )
    if metering.get("capture_occupancy", 0):
        failures.append(
            f"{where}: a capture window is still open after finish()"
        )
    if not metering.get("estimated_bytes", 0):
        failures.append(f"{where}: self-metering reports zero bytes — "
                        "the recorder saw nothing")
    return failures


def check(
    n: int = GATE_N,
    shards: int = GATE_SHARDS,
    duration_s: float = GATE_DURATION_S,
    seed: int = GATE_SEED,
) -> List[str]:
    """Run the gate workloads; return violations (empty = pass)."""
    from repro.experiments.scale import (
        run_scale_point, run_sharded_scale_point,
    )
    from repro.telemetry.flight import Incident
    from repro.telemetry.postmortem import render_incidents

    failures: List[str] = []

    # 1) Recorder on/off equivalence at the single-process chaos point.
    plain = run_scale_point(
        n, 1.0, duration_s=duration_s, seed=seed, flyweight=True
    )
    recorded = run_scale_point(
        n, 1.0, duration_s=duration_s, seed=seed, flyweight=True,
        flight=True,
    )
    if _signature(plain) != _signature(recorded):
        failures.append(
            "recorder on/off runs diverged: enabling the flight recorder "
            "perturbed the simulation "
            f"(off={_signature(plain)[:120]}... "
            f"on={_signature(recorded)[:120]}...)"
        )
    failures += _check_incidents(recorded.incidents, f"flyweight N={n}")
    failures += _check_metering(recorded.flight or {}, f"flyweight N={n}")

    # 2) The rendered report must carry the explainable decomposition.
    report = render_incidents(
        [Incident.from_dict(i) for i in recorded.incidents],
        metering=recorded.flight,
    )
    if "Failover critical path" not in report:
        failures.append(
            "rendered postmortem lacks the failover critical-path table"
        )

    # 3) The sharded path: merged incidents, order-independent.
    point = run_sharded_scale_point(
        n, 1.0, duration_s=duration_s, seed=seed, n_shards=shards,
        flight=True,
    )
    if point.merge_deterministic is not True:
        failures.append(
            "sharded merge_deterministic is not True (the reversed-order "
            "incident re-merge did not hold)"
        )
    failures += _check_incidents(point.incidents, f"sharded N={n}")
    for shard_id, metering in sorted(
        ((point.flight or {}).get("shards") or {}).items()
    ):
        failures += _check_metering(
            metering or {}, f"shard {shard_id} of N={n}"
        )
    shard_tags = {
        s for i in point.incidents for s in str(i.get("shard", "")).split(",")
    }
    if len(shard_tags) != shards:
        failures.append(
            f"merged incidents cover shards {sorted(shard_tags)}, expected "
            f"all {shards} (every shard crashes its most-loaded server)"
        )
    return failures


def main(argv: List[str]) -> int:
    if len(argv) > 2:
        print(__doc__)
        return 2
    n = int(argv[0]) if argv else GATE_N
    shards = int(argv[1]) if len(argv) > 1 else GATE_SHARDS
    failures = check(n=n, shards=shards)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"postmortem smoke passed: recorder-on run of N={n} is "
        "trace-identical to recorder-off, memory stayed within budget, "
        f"and the {shards}-shard merge produced explainable incidents"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main(sys.argv[1:]))
