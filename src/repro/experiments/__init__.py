"""Experiment harness: the paper's evaluation, regenerated.

One module per figure/table of the paper (see DESIGN.md's per-experiment
index), plus overhead verifications for the quantitative claims in the
text, fault-tolerance comparisons against the baselines, and ablation
sweeps over the design parameters Section 4.2 calls "subject to fine
tuning".
"""

from repro.experiments.api import (
    ExperimentResult,
    ExperimentSpec,
    experiment_names,
    run,
)
from repro.experiments.scenarios import (
    LAN_SCENARIO,
    WAN_SCENARIO,
    ScenarioResult,
    ScenarioSpec,
    run_scenario,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "LAN_SCENARIO",
    "ScenarioResult",
    "ScenarioSpec",
    "WAN_SCENARIO",
    "experiment_names",
    "run",
    "run_scenario",
]
