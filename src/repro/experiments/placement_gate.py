"""CI gate for the placement strategy matrix.

Compares a ``repro-vod placement --benchmark-json`` run against the
committed reference (``benchmarks/BENCH_placement_baseline.json``).
The simulation is seed-deterministic, so per-strategy storage and
availability must match the reference inside tight relative bands, and
two properties are absolute:

* ``markov`` must **strictly beat** ``static`` on availability under
  the correlated rack crash (the whole point of availability-aware
  placement), and
* the :class:`~repro.faulting.invariants.InvariantChecker` must report
  **zero** violations for every strategy — migrations, the rack crash,
  the heal pass and the flash crowd all have to preserve
  exactly-one-adoption and offset continuity.

QoE gets a floor rather than a band (it may improve), and the prefix
strategy must observe at least one mid-stream handoff.

Usage::

    python -m repro.experiments.placement_gate artifacts/placement-bench.json \
        [benchmarks/BENCH_placement_baseline.json]
"""

from __future__ import annotations

import json
import sys
from typing import List


def check(measured_path: str, baseline_path: str) -> List[str]:
    """Return the list of violations (empty means the gate passes)."""
    with open(measured_path) as fh:
        measured = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    tol = baseline["tolerances"]
    failures: List[str] = []
    measured_strategies = measured.get("strategies", {})

    for strategy, expected in baseline["strategies"].items():
        got = measured_strategies.get(strategy)
        if got is None:
            failures.append(f"strategy {strategy!r} missing from the run")
            continue

        def band(name: str, rel: float) -> None:
            value, reference = got[name], expected[name]
            low = reference * (1 - rel)
            high = reference * (1 + rel)
            if not low <= value <= high:
                failures.append(
                    f"{strategy}.{name}: {value} outside "
                    f"{reference} +/- {rel:.0%}"
                )

        band("storage_copies", tol["storage_rel"])
        band("outage_analytic", tol["availability_rel"])
        band("outage_measured", tol["availability_rel"])
        if got["qoe_mean"] < tol["qoe_floor"]:
            failures.append(
                f"{strategy}.qoe_mean: {got['qoe_mean']} below the "
                f"{tol['qoe_floor']} floor"
            )
        if got["violations"] != 0:
            failures.append(
                f"{strategy}.violations: {got['violations']} "
                "(the invariant checker must stay silent)"
            )
        if got["migrations_aborted"] != expected["migrations_aborted"]:
            failures.append(
                f"{strategy}.migrations_aborted: "
                f"{got['migrations_aborted']} != "
                f"{expected['migrations_aborted']}"
            )
        if got["migrations_completed"] < expected["migrations_completed"]:
            failures.append(
                f"{strategy}.migrations_completed: "
                f"{got['migrations_completed']} below the reference "
                f"{expected['migrations_completed']}"
            )

    static = measured_strategies.get("static")
    markov = measured_strategies.get("markov")
    if static is not None and markov is not None:
        if not markov["outage_analytic"] > static["outage_analytic"]:
            failures.append(
                "markov does not strictly beat static under the "
                f"correlated crash: {markov['outage_analytic']} <= "
                f"{static['outage_analytic']}"
            )
    prefix = measured_strategies.get("prefix")
    if prefix is not None and prefix["prefix_handoffs"] < 1:
        failures.append(
            "prefix strategy observed no mid-stream handoffs"
        )
    return failures


def main(argv: List[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    baseline = argv[1] if len(argv) > 1 else (
        "benchmarks/BENCH_placement_baseline.json"
    )
    failures = check(argv[0], baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("placement strategy matrix matches the committed reference")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main(sys.argv[1:]))
