"""Command-line experiment runner: ``repro-vod <experiment>``.

Regenerates any table or figure of the paper from the terminal::

    repro-vod figure2
    repro-vod figure4 --seed 17
    repro-vod figure5
    repro-vod sync-overhead --clients 8
    repro-vod emergency
    repro-vod takeover --trials 5
    repro-vod faults
    repro-vod chaos --plans 20
    repro-vod ablations
    repro-vod all

Every experiment dispatches through the unified
:func:`repro.experiments.api.run` entry point; the CLI only translates
flags into an :class:`~repro.experiments.api.ExperimentSpec`.

Scenario experiments (figure4, figure5, chaos) also stream a telemetry
JSONL artifact by default (``artifacts/<name>-telemetry.jsonl``;
``--no-telemetry`` turns it off, ``--telemetry PATH`` redirects it).
Two extra subcommands work with those artifacts directly::

    repro-vod trace --scenario lan --out run.jsonl   # record a run
    repro-vod report run.jsonl                        # reconstruct it

Both accept ``--since``/``--until`` sim-second windows, ``trace --out``
transparently gzips ``.jsonl.gz`` paths, and ``repro-vod postmortem``
renders flight-recorder incident reports from a live scenario, a
flyweight/sharded scale run, or a recorded export::

    repro-vod postmortem --scenario lan
    repro-vod postmortem --scale 20000 --shards 4
    repro-vod postmortem --from-export run.jsonl.gz --since 30 --until 60
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.api import REGISTRY, ExperimentSpec, run

#: Experiments that execute a scenario and therefore export telemetry
#: artifacts by default.
TELEMETRY_EXPERIMENTS = (
    "figure4", "figure5", "chaos", "scale", "placement", "postmortem",
)

#: Order in which ``repro-vod all`` runs (excludes the slow chaos/
#: capacity/gcs sweeps, mirroring the historical behaviour).
ALL_SEQUENCE = (
    "figure2",
    "figure4",
    "figure5",
    "sync-overhead",
    "emergency",
    "takeover",
    "qos",
    "faults",
    "ablations",
)


def _default_telemetry_path(name: str) -> str:
    return os.path.join("artifacts", f"{name}-telemetry.jsonl")


def _telemetry_path_for(name: str, args: argparse.Namespace) -> Optional[str]:
    if name not in TELEMETRY_EXPERIMENTS or args.no_telemetry:
        return None
    path = args.telemetry or _default_telemetry_path(name)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    return path


def _spec_from_args(name: str, args: argparse.Namespace) -> ExperimentSpec:
    params = {}
    if args.json is not None:
        params["json"] = args.json
    if args.clients is not None:
        params["clients"] = args.clients
    if args.trials is not None:
        params["trials"] = args.trials
    if args.plans is not None:
        params["plans"] = args.plans
    if getattr(args, "sizes", None) is not None:
        params["sizes"] = args.sizes
    if getattr(args, "flyweight_sizes", None) is not None:
        params["flyweight_sizes"] = args.flyweight_sizes
    if getattr(args, "sharded_sizes", None) is not None:
        params["sharded_sizes"] = args.sharded_sizes
    if getattr(args, "shards", None) is not None:
        params["shards"] = args.shards
    if getattr(args, "workers", None) is not None:
        params["workers"] = args.workers
    if getattr(args, "shard_inline", False):
        params["shard_inline"] = True
    if getattr(args, "wall_budget", None) is not None:
        params["wall_budget"] = args.wall_budget
    if getattr(args, "duration", None) is not None:
        params["duration"] = args.duration
    if getattr(args, "window", None) is not None:
        params["window"] = args.window
    if getattr(args, "benchmark_json", None) is not None:
        params["benchmark_json"] = args.benchmark_json
    if getattr(args, "strategies", None) is not None:
        params["strategies"] = args.strategies
    if getattr(args, "titles", None) is not None:
        params["titles"] = args.titles
    if getattr(args, "flash", None) is not None:
        params["flash"] = args.flash
    if getattr(args, "preset", None) is not None:
        params["preset"] = args.preset
    if getattr(args, "scenario", None) is not None:
        params["scenario"] = args.scenario
    if getattr(args, "scale_n", None) is not None:
        params["source"] = "scale"
        params["n"] = args.scale_n
    if getattr(args, "export", None) is not None:
        params["export"] = args.export
    if getattr(args, "since", None) is not None:
        params["since"] = args.since
    if getattr(args, "until", None) is not None:
        params["until"] = args.until
    if getattr(args, "max_rows", None) is not None:
        params["max_rows"] = args.max_rows
    return ExperimentSpec(
        name=name,
        seed=args.seed,
        params=params,
        telemetry_path=_telemetry_path_for(name, args),
    )


def _run_experiment(name: str, args: argparse.Namespace) -> None:
    result = run(_spec_from_args(name, args))
    print(result.render())
    for kind, path in sorted(result.artifacts.items()):
        if kind != "json":  # the json block already announces itself
            print(f"[{kind} artifact written to {path}]")


def _run_all(args: argparse.Namespace) -> None:
    for index, name in enumerate(ALL_SEQUENCE):
        if index:
            print("\n" + "=" * 72 + "\n")
        _run_experiment(name, args)


def _run_trace(args: argparse.Namespace) -> None:
    from repro.experiments.scenarios import run_scenario

    spec = _scenario_spec(args)
    directory = os.path.dirname(args.out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    result = run_scenario(
        spec, seed=args.seed, telemetry_path=args.out,
        telemetry_full=args.full,
        telemetry_max_events=args.max_events,
        telemetry_since=args.since,
        telemetry_until=args.until,
    )
    client = result.client
    print(f"telemetry written to {args.out}")
    print(
        f"scenario={spec.name} duration={spec.run_duration_s:.0f}s "
        f"displayed={client.displayed_total} skipped={client.skipped_total} "
        f"migrations={len(client.stats.migrations)} "
        f"faults={len(result.injector.fired)}"
    )


def _run_report(args: argparse.Namespace) -> None:
    from repro.telemetry.report import load_timeline, render_report

    timeline = load_timeline(args.path, since=args.since, until=args.until)
    print(render_report(timeline, max_rows=args.max_rows))


def _scenario_spec(args: argparse.Namespace):
    import dataclasses

    from repro.experiments.scenarios import LAN_SCENARIO, WAN_SCENARIO

    spec = {"lan": LAN_SCENARIO, "wan": WAN_SCENARIO}[args.scenario]
    if args.duration is not None:
        spec = dataclasses.replace(
            spec,
            movie_duration_s=max(spec.movie_duration_s, args.duration),
            run_duration_s=args.duration,
        )
    return spec


def _run_watch(args: argparse.Namespace) -> None:
    from repro.experiments.scenarios import prepare_scenario
    from repro.telemetry.qoe import render_scorecards
    from repro.telemetry.slo import render_slo
    from repro.telemetry.watch import WatchState, render_watch

    spec = _scenario_spec(args)
    telemetry_path = None if args.no_telemetry else args.telemetry
    if telemetry_path:
        directory = os.path.dirname(telemetry_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
    live = prepare_scenario(
        spec, seed=args.seed, telemetry_path=telemetry_path, observe=True,
        flight=True,
    )
    state = WatchState(
        live.sim.telemetry, slo_monitor=live.slo_monitor,
        flight_recorder=live.flight_recorder,
    )
    interval = max(0.1, args.interval)
    # Event budget per drawn frame: a slice that turns out to be heavy
    # (a crash storm, a flood of connects) renders a mid-slice frame
    # instead of freezing the dashboard for the whole slice.  After the
    # run_until early-exit fix, sim.now is then the last dispatched
    # event's time, so the loop simply keeps stepping toward the target.
    slice_budget = 200_000
    with live:
        now = 0.0
        while now < spec.run_duration_s:
            target = min(spec.run_duration_s, now + interval)
            while True:
                now = live.step(target, max_events=slice_budget)
                if args.clear:
                    print("\x1b[2J\x1b[H", end="")
                print(render_watch(state, max_clients=args.max_clients))
                print()
                if now >= target:
                    break
    state.close()
    result = live.result
    if result.qoe:
        print(render_scorecards(result.qoe))
    if result.slo:
        print()
        print(render_slo(result.slo))
    if result.incidents:
        print(
            f"\n[{len(result.incidents)} incident(s) captured by the "
            "flight recorder; render with repro-vod postmortem]"
        )
    if telemetry_path:
        print(f"\n[telemetry artifact written to {telemetry_path}]")


def _run_profile(args: argparse.Namespace) -> int:
    """``repro-vod profile <experiment>``: cProfile a registered run.

    Writes the raw pstats dump (for ``snakeviz``/``pstats`` digging)
    and prints the top-N hot-function table.  Profiled wall clocks are
    *not* comparable to unprofiled runs — cProfile's tracing costs
    3-4x on event-loop-dominated workloads — so use the output for
    time *shares*, and the benchmark JSONs for absolute walls.
    """
    import cProfile
    import io
    import json
    import pstats

    params = {}
    for item in args.arg or ():
        key, sep, raw = item.partition("=")
        if not sep:
            raise SystemExit(f"--arg {item!r} is not KEY=VALUE")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    spec = ExperimentSpec(
        name=args.target, seed=args.seed, params=params, telemetry_path=None
    )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run(spec)
    finally:
        profiler.disable()
    out = args.out or os.path.join(
        "artifacts", f"profile-{args.target}.pstats"
    )
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    profiler.dump_stats(out)

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(result.render())
    print()
    print(f"== cProfile: top {args.top} by {args.sort} "
          "(walls inflated by tracing; read shares, not seconds) ==")
    print(stream.getvalue().rstrip())
    print(f"[pstats dump written to {out}]")
    return 0


def _run_qoe_check(args: argparse.Namespace) -> int:
    from repro.experiments.qoe_gate import run_gate

    report, ok = run_gate(
        out_path=args.out,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        tolerance=args.tolerance,
        plans=args.plans if args.plans is not None else 3,
    )
    print(report)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description=(
            "Regenerate the evaluation of 'Fault Tolerant Video on Demand "
            "Services' (ICDCS 1999)"
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None, help="override the scenario seed"
    )
    common.add_argument(
        "--json", type=str, default=None,
        help="also dump the figure4/figure5 run (counters + series) to "
             "this JSON file",
    )
    common.add_argument(
        "--telemetry", type=str, default=None,
        help="telemetry JSONL artifact path (scenario experiments; "
             "default artifacts/<name>-telemetry.jsonl)",
    )
    common.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the default telemetry artifact",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    sub.add_parser("figure2", parents=[common],
                   help="flow-control policy table")
    sub.add_parser("figure4", parents=[common],
                   help="LAN irregularity recovery (4 panels)")
    sub.add_parser("figure5", parents=[common],
                   help="WAN skipped frames (2 panels)")
    p = sub.add_parser("sync-overhead", parents=[common], help="T-sync claim")
    p.add_argument("--clients", type=int, default=4)
    sub.add_parser("emergency", parents=[common], help="T-emergency claim")
    p = sub.add_parser("takeover", parents=[common],
                       help="T-buffer take-over time")
    p.add_argument("--trials", type=int, default=5)
    sub.add_parser("qos", parents=[common],
                   help="E-qos: best-effort vs reserved WAN")
    sub.add_parser("capacity", parents=[common],
                   help="E-capacity: clients per server")
    sub.add_parser("gcs", parents=[common],
                   help="T-gcs: view agreement latency scaling")
    sub.add_parser("faults", parents=[common], help="T-ft comparison matrix")
    p = sub.add_parser("chaos", parents=[common],
                       help="seeded random fault plans vs the invariant "
                            "checker (--seed sets the base seed)")
    p.add_argument("--plans", type=int, default=20)
    sub.add_parser("ablations", parents=[common],
                   help="A-1..A-5 parameter sweeps")
    p = sub.add_parser(
        "scale", parents=[common],
        help="data-plane fast path: events/s, wall time and failover "
             "latency at N=100/1k/5k viewers with a mid-run crash",
    )
    p.add_argument(
        "--sizes", type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None, help="comma-separated client populations "
                           "(default 100,1000,5000)",
    )
    p.add_argument(
        "--flyweight-sizes", dest="flyweight_sizes",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None, help="extra populations run in flyweight mode "
                           "(columnar viewers; e.g. 20000,100000)",
    )
    p.add_argument(
        "--sharded-sizes", dest="sharded_sizes",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=None, help="extra populations run shared-nothing across "
                           "worker processes (e.g. 1000000)",
    )
    p.add_argument("--shards", type=int, default=None,
                   help="shard count for --sharded-sizes points "
                        "(default 4)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool cap for sharded points "
                        "(default: one per core)")
    p.add_argument("--shard-inline", dest="shard_inline",
                   action="store_true",
                   help="run shards sequentially in-process "
                        "(determinism checks; no parallelism)")
    p.add_argument("--wall-budget", dest="wall_budget", type=float,
                   default=None,
                   help="abort a point once it exceeds this many wall "
                        "seconds (the 100k barrier gate)")
    p.add_argument("--duration", type=float, default=None,
                   help="simulated seconds per point (default 12)")
    p.add_argument("--window", type=float, default=None,
                   help="batch window in seconds (default 1.0)")
    p.add_argument("--benchmark-json", type=str, default=None,
                   dest="benchmark_json",
                   help="write the sweep's measurements (events/s, wall "
                        "time, failover latencies) to this JSON file")
    p = sub.add_parser(
        "placement", parents=[common],
        help="content placement strategies under live migrations, a "
             "correlated rack crash and a flash crowd",
    )
    p.add_argument(
        "--strategies", type=str, default=None,
        help="comma-separated strategy names "
             "(default static,popularity,markov,prefix)",
    )
    p.add_argument("--titles", type=int, default=None,
                   help="catalog size (default 24)")
    p.add_argument("--clients", type=int, default=None,
                   help="steady-state viewers (default 18)")
    p.add_argument("--flash", type=int, default=None,
                   help="flash-crowd viewers on the rank-1 title "
                        "(default 6)")
    p.add_argument("--duration", type=float, default=None,
                   help="simulated seconds per strategy (default 52)")
    p.add_argument("--benchmark-json", type=str, default=None,
                   dest="benchmark_json",
                   help="write per-strategy measurements (availability, "
                        "storage, QoE, violations) to this JSON file")
    p = sub.add_parser(
        "matrix", parents=[common],
        help="scenario-matrix SLO sweep: topology x workload x faults "
             "cells with per-cell QoE/SLO verdicts, plus the admission "
             "reject-vs-degrade faceoff",
    )
    p.add_argument(
        "--preset", choices=("full", "gate"), default=None,
        help="cell selection: full (24 cells) or gate (the 12-cell CI "
             "sub-matrix; default full)",
    )
    p.add_argument("--benchmark-json", type=str, default=None,
                   dest="benchmark_json",
                   help="write the per-cell verdicts and the faceoff to "
                        "this JSON file (scenario-matrix CI gate input)")
    p.add_argument("--workers", type=int, default=None,
                   help="run the cells across this many spawned worker "
                        "processes (verdicts identical to the serial "
                        "sweep; default serial)")
    sub.add_parser("all", parents=[common], help="everything")

    p = sub.add_parser(
        "profile", parents=[common],
        help="run a registered experiment under cProfile: writes a "
             "pstats dump and prints the top hot functions",
    )
    p.add_argument("target", choices=sorted(REGISTRY),
                   help="experiment to profile")
    p.add_argument("--top", type=int, default=25,
                   help="hot functions to print (default 25)")
    p.add_argument("--sort", choices=("cumulative", "tottime", "calls"),
                   default="cumulative",
                   help="pstats sort key (default cumulative)")
    p.add_argument("--out", type=str, default=None,
                   help="pstats dump path (default "
                        "artifacts/profile-<target>.pstats)")
    p.add_argument("--arg", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="experiment param (VALUE parsed as JSON when "
                        "possible); repeatable, e.g. "
                        "--arg sizes=[1000] --arg compare_max=0")

    p = sub.add_parser(
        "trace", parents=[common],
        help="run a scenario and record its telemetry to JSONL",
    )
    p.add_argument("--scenario", choices=("lan", "wan"), default="lan")
    p.add_argument("--duration", type=float, default=None,
                   help="override the scenario run duration (seconds)")
    p.add_argument("--out", type=str,
                   default=os.path.join("artifacts", "trace.jsonl"),
                   help="output path; a .jsonl.gz suffix gzips the "
                        "stream transparently")
    p.add_argument("--full", action="store_true",
                   help="include firehose kinds (sim.*, net.deliver)")
    p.add_argument("--since", type=float, default=None,
                   help="only export events at/after this sim second")
    p.add_argument("--until", type=float, default=None,
                   help="only export events at/before this sim second")
    p.add_argument("--max-events", dest="max_events", type=int,
                   default=None,
                   help="cap exported events; the file then ends with "
                        "an explicit truncation marker record")

    p = sub.add_parser(
        "report", parents=[common],
        help="reconstruct a run timeline from a telemetry JSONL file",
    )
    p.add_argument("path", type=str)
    p.add_argument("--max-rows", type=int, default=80,
                   help="timeline rows to show before truncating")
    p.add_argument("--since", type=float, default=None,
                   help="only consider events at/after this sim second")
    p.add_argument("--until", type=float, default=None,
                   help="only consider events at/before this sim second")

    p = sub.add_parser(
        "postmortem", parents=[common],
        help="flight-recorder incident reports: what triggered, the "
             "causal chain, the exact takeover decomposition and the "
             "QoE impact",
    )
    p.add_argument("--scenario", choices=("lan", "wan"), default=None,
                   help="run this reference scenario live with the "
                        "recorder attached (default lan)")
    p.add_argument("--duration", type=float, default=None,
                   help="override the run duration (simulated seconds)")
    p.add_argument("--scale", dest="scale_n", type=int, default=None,
                   help="instead run the flyweight chaos rig at this "
                        "population (mid-run crash of the most-loaded "
                        "server)")
    p.add_argument("--shards", type=int, default=None,
                   help="with --scale: run shared-nothing across this "
                        "many shards and merge their incidents")
    p.add_argument("--shard-inline", dest="shard_inline",
                   action="store_true",
                   help="with --shards: run the shards sequentially "
                        "in-process")
    p.add_argument("--from-export", dest="export", type=str, default=None,
                   help="replay a recorded telemetry JSONL/.jsonl.gz "
                        "artifact instead of running anything")
    p.add_argument("--since", type=float, default=None,
                   help="with --from-export: replay window start "
                        "(sim seconds)")
    p.add_argument("--until", type=float, default=None,
                   help="with --from-export: replay window end "
                        "(sim seconds)")
    p.add_argument("--max-rows", dest="max_rows", type=int, default=None,
                   help="table rows per incident section (default 40)")

    p = sub.add_parser(
        "watch", parents=[common],
        help="run a scenario with the live dashboard: clients, buffer "
             "distribution, active spans and SLO state per time slice",
    )
    p.add_argument("--scenario", choices=("lan", "wan"), default="lan")
    p.add_argument("--duration", type=float, default=None,
                   help="override the scenario run duration (seconds)")
    p.add_argument("--interval", type=float, default=10.0,
                   help="simulated seconds per dashboard frame")
    p.add_argument("--max-clients", type=int, default=12,
                   help="client rows per frame")
    p.add_argument("--clear", action="store_true",
                   help="clear the terminal between frames")

    p = sub.add_parser(
        "qoe-check", parents=[common],
        help="QoE regression gate: measure failover latency, glitches "
             "and observer overhead, compare against the baseline",
    )
    p.add_argument("--out", type=str,
                   default=os.path.join("artifacts", "BENCH_qoe.json"))
    p.add_argument("--baseline", type=str,
                   default=os.path.join("benchmarks",
                                        "BENCH_qoe_baseline.json"))
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="allowed relative regression (default 10%%)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this measurement")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Subparsers may not define every attribute; default the common ones.
    defaults = (
        ("clients", None),
        ("trials", None),
        ("plans", None),
        ("seed", None),
        ("json", None),
        ("telemetry", None),
        ("no_telemetry", False),
    )
    for attribute, default in defaults:
        if not hasattr(args, attribute):
            setattr(args, attribute, default)
    name = args.experiment
    if name == "all":
        _run_all(args)
    elif name == "trace":
        _run_trace(args)
    elif name == "report":
        _run_report(args)
    elif name == "watch":
        _run_watch(args)
    elif name == "qoe-check":
        return _run_qoe_check(args)
    elif name == "profile":
        return _run_profile(args)
    else:
        assert name in REGISTRY, f"subcommand {name!r} missing from registry"
        _run_experiment(name, args)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
