"""Command-line experiment runner: ``repro-vod <experiment>``.

Regenerates any table or figure of the paper from the terminal::

    repro-vod figure2
    repro-vod figure4 --seed 17
    repro-vod figure5
    repro-vod sync-overhead --clients 8
    repro-vod emergency
    repro-vod takeover --trials 5
    repro-vod faults
    repro-vod chaos --plans 20
    repro-vod ablations
    repro-vod all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _print_figure2(args: argparse.Namespace) -> None:
    from repro.experiments.figure2 import render_figure2

    print(render_figure2())


def _print_figure4(args: argparse.Namespace) -> None:
    from repro.experiments.figure4 import run_figure4
    from repro.metrics.ascii_chart import render_timeseries

    figure = run_figure4(seed=args.seed)
    if getattr(args, "json", None):
        figure.result.export_json(args.json)
        print(f"run exported to {args.json}")
    print(figure.summary_table().render())
    markers = [(figure.crash_time, "crash"), (figure.lb_time, "load balance")]
    for title, series in (
        ("Figure 4(a) — cumulative skipped frames", figure.skipped),
        ("Figure 4(b) — cumulative late frames", figure.late),
        ("Figure 4(c) — software buffer occupancy (frames)",
         figure.sw_occupancy),
        ("Figure 4(d) — hardware buffer occupancy (bytes)",
         figure.hw_occupancy_bytes),
    ):
        print()
        print(render_timeseries(series, title=title, markers=markers))


def _print_figure5(args: argparse.Namespace) -> None:
    from repro.experiments.figure5 import run_figure5
    from repro.metrics.ascii_chart import render_timeseries

    figure = run_figure5(seed=args.seed)
    if getattr(args, "json", None):
        figure.result.export_json(args.json)
        print(f"run exported to {args.json}")
    print(figure.summary_table().render())
    markers = [(figure.lb_time, "load balance"), (figure.crash_time, "crash")]
    for title, series in (
        ("Figure 5(a) — cumulative skipped frames", figure.skipped),
        ("Figure 5(b) — frames discarded due to buffer overflow",
         figure.overflow),
    ):
        print()
        print(render_timeseries(series, title=title, markers=markers))


def _print_sync_overhead(args: argparse.Namespace) -> None:
    from repro.experiments.overheads import measure_sync_overhead

    result = measure_sync_overhead(n_clients=args.clients)
    print(result.table().render())


def _print_emergency(args: argparse.Namespace) -> None:
    from repro.experiments.overheads import measure_emergency

    print(measure_emergency().table().render())


def _print_takeover(args: argparse.Namespace) -> None:
    from repro.experiments.overheads import measure_takeover

    print(measure_takeover(n_trials=args.trials).table().render())


def _print_gcs(args: argparse.Namespace) -> None:
    from repro.experiments.gcs_latency import (
        gcs_latency_table,
        measure_scaling,
    )

    print(gcs_latency_table(measure_scaling()).render())


def _print_capacity(args: argparse.Namespace) -> None:
    from repro.experiments.capacity import capacity_table, run_capacity_sweep

    print(capacity_table(run_capacity_sweep()).render())


def _print_qos(args: argparse.Namespace) -> None:
    from repro.experiments.qos import qos_comparison_table, run_wan_trial

    best_effort = run_wan_trial(False)
    reserved = run_wan_trial(True)
    print(qos_comparison_table(best_effort, reserved).render())


def _print_faults(args: argparse.Namespace) -> None:
    from repro.experiments.faults import fault_matrix_table, run_fault_matrix

    print(fault_matrix_table(run_fault_matrix()).render())


def _print_chaos(args: argparse.Namespace) -> None:
    from repro.faulting.chaos import (
        chaos_table,
        run_chaos_sweep,
        total_violations,
    )

    base_seed = args.seed if args.seed is not None else 1000
    results = run_chaos_sweep(n_plans=args.plans, base_seed=base_seed)
    print(chaos_table(results).render())
    violations = total_violations(results)
    if violations:
        print(f"\n{len(violations)} invariant violation(s):")
        for violation in violations:
            print(f"  {violation}")
    else:
        print(f"\nall {len(results)} seeded plans held every invariant")


def _print_ablations(args: argparse.Namespace) -> None:
    from repro.experiments.ablations import (
        ablate_buffer_size,
        ablate_double_emergency,
        ablate_emergency,
        ablate_fd_timeout,
        ablate_sync_interval,
        ablation_table,
    )

    print(ablation_table(ablate_buffer_size(), "A-1 — software buffer size"))
    print()
    print(ablation_table(ablate_emergency(), "A-2 — emergency refill quota"))
    print()
    print(ablation_table(ablate_sync_interval(), "A-3 — state sync interval"))
    print()
    print(ablation_table(ablate_fd_timeout(), "A-4 — failure detection timeout"))
    print()
    print(ablation_table(
        ablate_double_emergency(),
        "A-5 — back-to-back failures (1 s apart) vs buffer size",
    ))


def _print_all(args: argparse.Namespace) -> None:
    for fn in (
        _print_figure2,
        _print_figure4,
        _print_figure5,
        _print_sync_overhead,
        _print_emergency,
        _print_takeover,
        _print_qos,
        _print_faults,
        _print_ablations,
    ):
        fn(args)
        print("\n" + "=" * 72 + "\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description=(
            "Regenerate the evaluation of 'Fault Tolerant Video on Demand "
            "Services' (ICDCS 1999)"
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None, help="override the scenario seed"
    )
    common.add_argument(
        "--json", type=str, default=None,
        help="also dump the figure4/figure5 run (counters + series) to "
             "this JSON file",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    sub.add_parser("figure2", parents=[common],
                   help="flow-control policy table")
    sub.add_parser("figure4", parents=[common],
                   help="LAN irregularity recovery (4 panels)")
    sub.add_parser("figure5", parents=[common],
                   help="WAN skipped frames (2 panels)")
    p = sub.add_parser("sync-overhead", parents=[common], help="T-sync claim")
    p.add_argument("--clients", type=int, default=4)
    sub.add_parser("emergency", parents=[common], help="T-emergency claim")
    p = sub.add_parser("takeover", parents=[common],
                       help="T-buffer take-over time")
    p.add_argument("--trials", type=int, default=5)
    sub.add_parser("qos", parents=[common],
                   help="E-qos: best-effort vs reserved WAN")
    sub.add_parser("capacity", parents=[common],
                   help="E-capacity: clients per server")
    sub.add_parser("gcs", parents=[common],
                   help="T-gcs: view agreement latency scaling")
    sub.add_parser("faults", parents=[common], help="T-ft comparison matrix")
    p = sub.add_parser("chaos", parents=[common],
                       help="seeded random fault plans vs the invariant "
                            "checker (--seed sets the base seed)")
    p.add_argument("--plans", type=int, default=20)
    sub.add_parser("ablations", parents=[common],
                   help="A-1..A-5 parameter sweeps")
    sub.add_parser("all", parents=[common], help="everything")
    return parser


_DISPATCH = {
    "figure2": _print_figure2,
    "figure4": _print_figure4,
    "figure5": _print_figure5,
    "sync-overhead": _print_sync_overhead,
    "emergency": _print_emergency,
    "takeover": _print_takeover,
    "qos": _print_qos,
    "capacity": _print_capacity,
    "gcs": _print_gcs,
    "faults": _print_faults,
    "chaos": _print_chaos,
    "ablations": _print_ablations,
    "all": _print_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Subparsers may not define every attribute; default the common ones.
    defaults = (
        ("clients", 4),
        ("trials", 5),
        ("plans", 20),
        ("seed", None),
        ("json", None),
    )
    for attribute, default in defaults:
        if not hasattr(args, attribute):
            setattr(args, attribute, default)
    _DISPATCH[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
