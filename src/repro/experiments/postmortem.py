"""``repro-vod postmortem`` — explainable incident reports.

Three sources, one renderer:

* **Live scenario** (default): run the LAN or WAN reference scenario
  with the flight recorder attached and render whatever incidents its
  trigger rules captured (the LAN scenario's mid-run crash and fault
  injections make it a reliable demo).
* **Scale point** (``source="scale"``): run the flyweight chaos rig at
  population ``n`` — sharded across ``shards`` head-ends when asked —
  and render the (merged) incidents.
* **Recorded export** (``export=path``): replay a telemetry JSONL (or
  ``.jsonl.gz``) artifact through a detached recorder, optionally
  windowed by ``since``/``until`` sim seconds.

The result's ``incidents`` field carries the portable
``Incident.as_dict()`` payloads; ``json`` dumps them to a file for the
CI gate and offline digging.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.experiments.api import ExperimentResult, ExperimentSpec
from repro.telemetry.flight import FlightRecorderConfig, Incident
from repro.telemetry.postmortem import render_incidents


def _config_from_params(params: Dict) -> FlightRecorderConfig:
    kwargs = {}
    for key in ("default_budget", "pre_trigger_s", "post_trigger_s",
                "max_capture_events", "max_incidents", "horizon_s"):
        if params.get(key) is not None:
            kwargs[key] = params[key]
    return FlightRecorderConfig(**kwargs)


def run(spec: ExperimentSpec) -> ExperimentResult:
    """Entry point for ``ExperimentSpec(name="postmortem")``.

    Params: ``export`` (replay a recorded JSONL artifact; overrides the
    live sources), ``since``/``until`` (replay window, sim seconds),
    ``source`` (``scenario``/``scale``), ``scenario`` (``lan``/``wan``),
    ``duration`` (simulated seconds), ``n`` (scale population),
    ``shards`` (sharded head-ends; 0 = single flyweight rig),
    ``max_rows`` (render cap), ``json`` (dump incident payloads there),
    plus recorder-config overrides (``default_budget``,
    ``pre_trigger_s``, ``post_trigger_s``, ``max_capture_events``,
    ``max_incidents``, ``horizon_s``).
    """
    params = spec.params
    config = _config_from_params(params)
    max_rows = int(params.get("max_rows", 40))
    seed = spec.seed if spec.seed is not None else 77

    incidents: List[Incident]
    metering = None
    header: str

    export = params.get("export")
    if export:
        from repro.telemetry.postmortem import incidents_from_export

        incidents = incidents_from_export(
            export, config,
            since=params.get("since"), until=params.get("until"),
        )
        header = f"postmortem of recorded export {export}"
    elif params.get("source", "scenario") == "scale":
        from repro.experiments.scale import (
            run_scale_point, run_sharded_scale_point,
        )

        n = int(params.get("n", 20_000))
        shards = int(params.get("shards", 0))
        duration = float(params.get("duration", 12.0))
        if shards > 1:
            point = run_sharded_scale_point(
                n, 1.0, duration_s=duration, seed=seed, n_shards=shards,
                inline=bool(params.get("shard_inline", False)),
                flight=True,
            )
            header = (
                f"postmortem of sharded scale run: N={n:,} across "
                f"{shards} shards, {duration:.0f}s, seed {seed}"
            )
        else:
            point = run_scale_point(
                n, 1.0, duration_s=duration, seed=seed, flyweight=True,
                flight=True, flight_config=config,
            )
            header = (
                f"postmortem of flyweight scale run: N={n:,}, "
                f"{duration:.0f}s, seed {seed}"
            )
        incidents = [Incident.from_dict(i) for i in point.incidents]
        metering = point.flight if shards <= 1 else None
    else:
        from repro.experiments.scenarios import (
            LAN_SCENARIO, WAN_SCENARIO, run_scenario,
        )

        scenario = {"lan": LAN_SCENARIO, "wan": WAN_SCENARIO}[
            params.get("scenario", "lan")
        ]
        if params.get("duration") is not None:
            import dataclasses

            duration = float(params["duration"])
            scenario = dataclasses.replace(
                scenario,
                movie_duration_s=max(scenario.movie_duration_s, duration),
                run_duration_s=duration,
            )
        result = run_scenario(
            scenario, seed=spec.seed,
            telemetry_path=spec.telemetry_path,
            flight=True, flight_config=config,
        )
        incidents = result.incidents
        metering = result.flight
        header = (
            f"postmortem of scenario {scenario.name}: "
            f"{scenario.run_duration_s:.0f}s, seed "
            f"{spec.seed if spec.seed is not None else scenario.seed}"
        )

    payloads = [i.as_dict() for i in incidents]
    blocks = [header, render_incidents(incidents, max_rows=max_rows,
                                       metering=metering)]
    artifacts: Dict[str, str] = {}
    json_path = params.get("json")
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(
                {"incidents": payloads, "metering": metering},
                fh, indent=2, sort_keys=True, default=str,
            )
            fh.write("\n")
        artifacts["incidents_json"] = json_path
    return ExperimentResult(
        spec=spec, blocks=blocks, data=incidents, artifacts=artifacts,
        incidents=payloads,
    )
