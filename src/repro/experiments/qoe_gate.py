"""QoE regression gate: ``repro-vod qoe-check``.

Runs the two observed reference workloads — the Figure 4 LAN failover
and a short chaos sweep — with the QoE/SLO observers attached, folds
them into a small set of user-facing numbers (failover p50/p99, glitch
and stall totals, mean QoE score) plus the telemetry observer's
wall-clock overhead, writes everything to ``BENCH_qoe.json``, and
compares against the checked-in baseline
(``benchmarks/BENCH_qoe_baseline.json``).

The QoE metrics are deterministic under the fixed gate seeds, so the
10 % tolerance only has to absorb cross-platform float jitter; a real
regression (an extra glitch, a slower failover) trips it immediately.
Wall-clock overhead is *not* deterministic, so it is judged against a
fixed ceiling rather than a baseline ratio.

Regenerate the baseline after an intentional behaviour change with
``repro-vod qoe-check --update-baseline``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.telemetry.slo import quantile

#: Fixed workload: the Figure 4 scenario seed is baked into the spec;
#: chaos trials use GATE_CHAOS_SEED + i.
GATE_CHAOS_SEED = 1000
GATE_CHAOS_PLANS = 3
GATE_CHAOS_DURATION_S = 60.0

#: Default artifact locations.
DEFAULT_BASELINE = os.path.join("benchmarks", "BENCH_qoe_baseline.json")
DEFAULT_OUT = os.path.join("artifacts", "BENCH_qoe.json")

#: Judged metrics: name -> (higher_is_worse, absolute slack).  The
#: slack keeps near-zero baselines from failing on noise a user could
#: never perceive (e.g. a 0.43 s failover drifting to 0.44 s).
JUDGED_METRICS: Dict[str, Tuple[bool, float]] = {
    "failover_p50_s": (True, 0.05),
    "failover_p99_s": (True, 0.05),
    "glitch_total": (True, 0.5),
    "stall_s_total": (True, 0.25),
    "qoe_mean_score": (False, 1.0),
}


def measure(
    chaos_seed: int = GATE_CHAOS_SEED,
    plans: int = GATE_CHAOS_PLANS,
    chaos_duration_s: float = GATE_CHAOS_DURATION_S,
) -> Dict:
    """Run the gate workloads and return the measurement record."""
    from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
    from repro.faulting.chaos import run_chaos_trial

    # Unobserved twin first: same seed, bus inactive end to end.  The
    # observed run's extra wall time is the full observability stack's
    # price (QoE + SLO subscribers, cause propagation, span accounting,
    # and — since the flight recorder shipped — bounded incident
    # capture, so the overhead ceiling guards the recorder too).
    t0 = time.perf_counter()
    run_scenario(LAN_SCENARIO)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    observed = run_scenario(LAN_SCENARIO, observe=True, flight=True)
    observed_s = time.perf_counter() - t0
    overhead_pct = (
        100.0 * max(0.0, observed_s - plain_s) / plain_s
        if plain_s > 0 else 0.0
    )

    failovers: List[float] = list(observed.failovers)
    cards = list(observed.qoe.values())
    for index in range(plans):
        trial = run_chaos_trial(
            seed=chaos_seed + index,
            duration_s=chaos_duration_s,
            observe=True,
        )
        failovers.extend(trial.failovers)
        cards.extend(trial.qoe.values())

    glitch_total = sum(card.stall_count for card in cards)
    stall_s_total = sum(card.stall_s for card in cards)
    scores = [card.score() for card in cards]
    return {
        "schema": 1,
        "workload": {
            "figure4_seed": LAN_SCENARIO.seed,
            "chaos_seed": chaos_seed,
            "chaos_plans": plans,
            "chaos_duration_s": chaos_duration_s,
        },
        "metrics": {
            "failover_count": len(failovers),
            "failover_p50_s": quantile(failovers, 0.50) if failovers else 0.0,
            "failover_p99_s": quantile(failovers, 0.99) if failovers else 0.0,
            "glitch_total": glitch_total,
            "stall_s_total": stall_s_total,
            "qoe_mean_score": (
                sum(scores) / len(scores) if scores else 0.0
            ),
            "clients_scored": len(cards),
        },
        "overhead_pct": overhead_pct,
        "overhead_ceiling_pct": 60.0,
        # Informational (not judged): proof the overhead number above
        # was measured with the flight recorder live and capturing.
        "flight": {
            "incidents": len(observed.incidents),
            "occupancy": (observed.flight or {}).get("occupancy", 0),
            "estimated_bytes": (
                (observed.flight or {}).get("estimated_bytes", 0)
            ),
        },
    }


def compare(
    current: Dict, baseline: Dict, tolerance: float = 0.10
) -> Tuple[List[str], bool]:
    """Judge ``current`` against ``baseline``; (report lines, ok)."""
    lines: List[str] = []
    ok = True
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name, (higher_is_worse, slack) in JUDGED_METRICS.items():
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None or cur is None:
            lines.append(f"  ? {name:<18} missing from "
                         f"{'baseline' if base is None else 'measurement'}")
            continue
        base = float(base)
        cur = float(cur)
        margin = max(tolerance * abs(base), slack)
        if higher_is_worse:
            bad = cur > base + margin
        else:
            bad = cur < base - margin
        mark = "FAIL" if bad else "ok"
        lines.append(
            f"  {mark:<4} {name:<18} {cur:10.4f} vs baseline "
            f"{base:10.4f} (margin {margin:.4f})"
        )
        ok = ok and not bad
    ceiling = float(
        baseline.get(
            "overhead_ceiling_pct", current.get("overhead_ceiling_pct", 60.0)
        )
    )
    overhead = float(current.get("overhead_pct", 0.0))
    bad = overhead > ceiling
    lines.append(
        f"  {'FAIL' if bad else 'ok':<4} {'overhead_pct':<18} "
        f"{overhead:10.4f} vs ceiling  {ceiling:10.4f}"
    )
    ok = ok and not bad
    return lines, ok


def run_gate(
    out_path: str = DEFAULT_OUT,
    baseline_path: str = DEFAULT_BASELINE,
    update_baseline: bool = False,
    tolerance: float = 0.10,
    plans: int = GATE_CHAOS_PLANS,
    chaos_duration_s: float = GATE_CHAOS_DURATION_S,
) -> Tuple[str, bool]:
    """Measure, write ``out_path``, compare; (report text, passed)."""
    current = measure(plans=plans, chaos_duration_s=chaos_duration_s)
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(current, handle, indent=1)
    lines = [f"QoE gate measurements written to {out_path}"]
    if update_baseline:
        directory = os.path.dirname(baseline_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(baseline_path, "w") as handle:
            json.dump(current, handle, indent=1)
        lines.append(f"baseline updated at {baseline_path}")
        return "\n".join(lines), True
    baseline = _load(baseline_path)
    if baseline is None:
        lines.append(
            f"no baseline at {baseline_path}; run with --update-baseline "
            "to create one"
        )
        return "\n".join(lines), False
    verdicts, ok = compare(current, baseline, tolerance=tolerance)
    lines.append(f"comparison vs {baseline_path} "
                 f"(tolerance {tolerance:.0%}):")
    lines.extend(verdicts)
    lines.append("QoE gate PASSED" if ok else "QoE gate FAILED")
    return "\n".join(lines), ok


def _load(path: str) -> Optional[Dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
