"""E-capacity — when does a single server saturate?

The paper's introduction motivates the design with scale ("high
bandwidth communication lines will reach millions of homes"), and its
answer to a loaded server is to bring another up and migrate clients.
This experiment quantifies the trigger: one server on a 100 Mbps access
link serves a growing client population (each stream ~1.4 Mbps); past
the uplink capacity the transmit queue tail-drops, clients see skipped
frames and stalls.  Bringing up a second server restores clean playback
for the same population — the load-balancing payoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


@dataclass
class CapacityPoint:
    n_clients: int
    n_servers: int
    offered_mbps: float
    mean_skipped: float
    worst_stall_s: float
    clean: bool  # every client free of visible degradation


def run_capacity_point(
    n_clients: int,
    n_servers: int = 1,
    duration_s: float = 30.0,
    seed: int = 51,
) -> CapacityPoint:
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=n_servers + n_clients)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=duration_s + 20)]
    )
    deployment = Deployment(
        topology, catalog, server_nodes=list(range(n_servers))
    )
    clients = []
    for index in range(n_clients):
        client = deployment.attach_client(n_servers + index)
        client.request_movie("feature")
        clients.append(client)
    sim.run_until(duration_s)
    for client in clients:
        client.decoder.end_stall(sim.now)

    movie = catalog.movie("feature")
    offered = n_clients * movie.bitrate_bps() / 1e6
    skipped = [c.skipped_total for c in clients]
    stalls = [c.decoder.stats.stall_time_s for c in clients]
    clean = max(stalls) <= 1.0 and max(skipped) <= 20
    return CapacityPoint(
        n_clients=n_clients,
        n_servers=n_servers,
        offered_mbps=offered,
        mean_skipped=sum(skipped) / len(skipped),
        worst_stall_s=max(stalls),
        clean=clean,
    )


def run_capacity_sweep(
    populations: List[int] = (10, 30, 50, 70),
    duration_s: float = 30.0,
) -> List[CapacityPoint]:
    """Single-server sweep plus a two-server point at the largest load."""
    points = [
        run_capacity_point(n, n_servers=1, duration_s=duration_s)
        for n in populations
    ]
    points.append(
        run_capacity_point(
            populations[-1], n_servers=2, duration_s=duration_s
        )
    )
    return points


def capacity_table(points: List[CapacityPoint]) -> Table:
    table = Table(
        "E-capacity — clients per server on a 100 Mbps uplink "
        "(1.4 Mbps streams)",
        ["clients", "servers", "offered (Mbps)", "mean skipped",
         "worst stall (s)", "clean"],
    )
    for point in points:
        table.add_row(
            point.n_clients,
            point.n_servers,
            f"{point.offered_mbps:.0f}",
            f"{point.mean_skipped:.0f}",
            f"{point.worst_stall_s:.1f}",
            "yes" if point.clean else "NO",
        )
    return table


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    populations = tuple(spec.params.get("populations", (10, 30, 50, 70)))
    points = run_capacity_sweep(populations=populations)
    return ExperimentResult(
        spec=spec, blocks=[capacity_table(points).render()], data=points
    )
