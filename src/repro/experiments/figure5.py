"""Figure 5: skipped frames on a small-scale WAN.

The WAN scenario (load balance at ~25 s, crash of the transmitting
server ~22 s later) over a seven-hop lossy Internet path:

* (a) cumulative skipped frames grow steadily — the path loses a
  fraction of the packets and lost video frames are never retransmitted
  — with extra steps at the irregularity periods;
* (b) frames discarded due to buffer overflow step up at emergency
  recoveries (startup and migrations) and stay flat otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.scenarios import WAN_SCENARIO, ScenarioResult, run_scenario
from repro.metrics.report import Table
from repro.telemetry.series import TimeSeries

EVENT_WINDOW_S = 12.0


@dataclass
class Figure5:
    """Extracted series and summary facts for both panels."""

    result: ScenarioResult
    skipped: TimeSeries
    overflow: TimeSeries
    lb_time: float
    crash_time: float

    # ------------------------------------------------------------------
    # Panel (a)
    # ------------------------------------------------------------------
    def steady_skip_rate(self) -> float:
        """Skipped frames per second over a quiet stretch (loss floor)."""
        start, end = self.crash_time + 15.0, self.result.spec.run_duration_s - 5
        if end <= start:
            start, end = 5.0, self.lb_time - 2
        return self.skipped.increase_over(start, end) / (end - start)

    def skipped_at_crash(self) -> float:
        return self.skipped.increase_over(
            self.crash_time - 1, self.crash_time + EVENT_WINDOW_S
        )

    def loss_fraction(self) -> float:
        """Fraction of transmitted frames never displayed."""
        sent = self.result.total_video_frames()
        return self.skipped.final() / max(1, sent)

    # ------------------------------------------------------------------
    # Panel (b)
    # ------------------------------------------------------------------
    def overflow_at_startup(self) -> float:
        return self.overflow.increase_over(0.0, 20.0)

    def overflow_steady_growth(self) -> float:
        """Overflow discards over a quiet stretch (should be ~0)."""
        start = self.lb_time + EVENT_WINDOW_S
        end = self.crash_time - 2
        return self.overflow.increase_over(start, end)

    def overflow_total(self) -> float:
        return self.overflow.final() or 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary_table(self) -> Table:
        client = self.result.client
        table = Table(
            "Figure 5 — WAN skipped frames (paper shape vs measured)",
            ["panel", "quantity", "paper", "measured"],
        )
        table.add_row(
            "a", "steady skip growth (frames/s)", "> 0 (message loss)",
            f"{self.steady_skip_rate():.2f}",
        )
        table.add_row(
            "a", "extra skips at crash window", "step up",
            f"{self.skipped_at_crash():.0f}",
        )
        table.add_row(
            "a", "video quality vs LAN", "inferior",
            f"{self.loss_fraction() * 100:.1f}% frames undisplayed",
        )
        table.add_row(
            "b", "overflow discards at startup", "step",
            f"{self.overflow_at_startup():.0f}",
        )
        table.add_row(
            "b", "overflow growth in quiet period", "~flat",
            f"{self.overflow_steady_growth():.0f}",
        )
        table.add_row(
            "-", "playback stalls", "jitter <= ~1 s at events",
            f"{client.decoder.stats.stall_time_s:.2f}s total",
        )
        return table

    def series_samples(self, every: float = 15.0) -> Dict[str, List[Tuple[float, float]]]:
        end = self.result.spec.run_duration_s

        def sample(series: TimeSeries):
            points = []
            t = 0.0
            while t <= end:
                value = series.value_at(t)
                if value is not None:
                    points.append((t, value))
                t += every
            return points

        return {
            "5a_skipped": sample(self.skipped),
            "5b_overflow_discards": sample(self.overflow),
        }


def run_figure5(seed: int = None, telemetry_path: str = None) -> Figure5:
    result = run_scenario(WAN_SCENARIO, seed=seed, telemetry_path=telemetry_path)
    stats = result.client.stats
    return Figure5(
        result=result,
        skipped=stats.skipped_cum,
        overflow=stats.overflow_cum,
        lb_time=result.server_up_times[0],
        crash_time=result.crash_times[0],
    )


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult, attach_observability
    from repro.metrics.ascii_chart import render_timeseries

    figure = run_figure5(seed=spec.seed, telemetry_path=spec.telemetry_path)
    result = ExperimentResult(spec=spec, data=figure)
    attach_observability(result, figure.result.qoe, figure.result.slo)
    json_path = spec.params.get("json")
    if json_path:
        figure.result.export_json(json_path)
        result.artifacts["json"] = json_path
        result.blocks.append(f"run exported to {json_path}")
    if spec.telemetry_path:
        result.artifacts["telemetry"] = spec.telemetry_path
    result.blocks.append(figure.summary_table().render())
    markers = [(figure.lb_time, "load balance"), (figure.crash_time, "crash")]
    for title, series in (
        ("Figure 5(a) — cumulative skipped frames", figure.skipped),
        ("Figure 5(b) — frames discarded due to buffer overflow",
         figure.overflow),
    ):
        result.blocks.append(
            render_timeseries(series, title=title, markers=markers)
        )
    return result
