"""Scale experiment: the data-plane fast path under thousands of viewers.

The paper's introduction motivates the design with metropolitan-scale
deployments: "in such an environment, scalability and fault tolerance
will be key issues".  This experiment loads one service with N
concurrent viewers (N = 100 / 1 000 / 5 000), crashes the most-loaded
server mid-run, and measures

* simulator throughput — events and delivered frames per wall-clock
  second — with the batched fast path on and off, and
* failover latency (crash to takeover session start), which must stay
  flat in N: the takeover path is per-client state lookup, not a scan.

Topology: an *edge-concentrator* LAN.  Each edge node concentrates up
to ``clients_per_edge`` viewers behind one GCS daemon and one fat
edge link, so the control plane scales with the number of edges rather
than the number of viewers — how a real metropolitan head-end would be
provisioned — while the video plane still crosses two switched hops per
frame.  All links are loss-free, so batched sessions stay on the fast
path for the entire run.

Three population modes:

* ``per-frame`` — full client objects, one timer event per frame (the
  baseline);
* ``batched`` — full client objects on the batched fast path;
* ``flyweight`` — viewers as columnar rows in a
  :class:`repro.client.flyweight.FlyweightPool`, served by cohort
  sessions whose playheads are closed-form arithmetic.  This is the
  mode that breaks the 100 000-viewer barrier: per steady-state viewer
  the simulator spends ~2 events total (the connect and its retry
  check), and the control plane shares one
  :class:`~repro.service.protocol.CohortSync` per movie per sync tick
  instead of one record per client.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.client.player import VoDClient
from repro.experiments.api import ExperimentResult, ExperimentSpec
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.topologies import Topology
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.shard.merge import (
    MergeError,
    ScoreHistogram,
    merge_failovers,
    merge_score_histograms,
    sharded_slo_summary,
)
from repro.shard.plan import ShardPlan, ShardTask
from repro.shard.runner import run_shards
from repro.sim.core import Simulator
from repro.sim.gcgate import paused_gc

#: Server uplink: a head-end trunk.  Loss-free and fat enough that a
#: third of the 5 000-viewer load stays far below saturation.
SERVER_LINK = LinkParams(delay_s=0.0001, bandwidth_bps=40e9)

#: Edge concentrator link: many viewers share it, still loss-free.
EDGE_LINK = LinkParams(delay_s=0.0002, bandwidth_bps=10e9)

#: Viewers packed behind one edge node / GCS daemon.
CLIENTS_PER_EDGE = 64

#: Default population sweep (the paper's "scalability" claim at depth).
DEFAULT_SIZES = (100, 1000, 5000)

#: Per-frame baseline comparison runs up to this N (the slow path at
#: 5 000 viewers costs minutes of wall clock for no extra information).
COMPARE_MAX = 1000


@dataclass
class ScalePoint:
    """Measurements from one (N, mode) run.

    A merged shared-nothing run (``n_shards > 1``) is the same shape
    plus the fields one process cannot produce alone: per-shard wall
    clocks, the merged QoE score histogram, the SLO verdicts over the
    merged facts, and the invariant-violation count summed across
    shards.  ``wall_s`` is then the coordinator-measured makespan of
    the whole sharded run."""

    n_clients: int
    batch_window_s: float
    duration_s: float
    events: int
    wall_s: float
    frames_delivered: int
    failover_latencies: List[float] = field(default_factory=list)
    takeovers: int = 0
    flyweight: bool = False
    violations: int = 0
    n_shards: int = 1
    shard_walls: List[float] = field(default_factory=list)
    qoe: Optional[Dict] = None
    slo: Optional[Dict] = None
    merge_deterministic: Optional[bool] = None
    # Flight-recorder output (``as_dict`` incidents — JSON-ready and
    # identical in shape whether the point ran in-process or sharded)
    # and the recorder's self-metering (per shard when sharded).
    incidents: List[Dict] = field(default_factory=list)
    flight: Optional[Dict] = None

    @property
    def batched(self) -> bool:
        return self.batch_window_s > 0

    @property
    def mode(self) -> str:
        if self.n_shards > 1:
            return "sharded"
        if self.flyweight:
            return "flyweight"
        return "batched" if self.batched else "per-frame"

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def frames_per_wall_s(self) -> float:
        return self.frames_delivered / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def max_failover_s(self) -> float:
        return max(self.failover_latencies, default=0.0)


class _FailoverObserver:
    """Measures crash-to-takeover latency without telemetry overhead.

    Routine load-balance churn also starts sessions with
    ``takeover=True``, so only the *first* takeover of each client the
    crashed server was serving counts as a failover."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.crash_time: Optional[float] = None
        self.victim_clients: set = set()
        self.latencies: List[float] = []

    def note_crash(self, victim) -> None:
        self.crash_time = self.sim.now
        # served_clients() covers both per-client sessions and flyweight
        # cohort rows — failover latency is measured identically across
        # modes (and must stay flat in N for both).
        self.victim_clients = set(victim.served_clients())

    def on_session_start(self, server, record, takeover: bool) -> None:
        if takeover and record.client in self.victim_clients:
            self.victim_clients.discard(record.client)
            self.latencies.append(self.sim.now - self.crash_time)


def make_crash_most_loaded(deployment: Deployment, observer: _FailoverObserver):
    """The rigs' shared mid-run fault: kill the busiest server.

    Returns a zero-argument action (for ``sim.call_at``) that crashes
    the most-loaded live server after noting the crash on ``observer``
    so failover latencies are measured from the instant of failure."""

    def crash_most_loaded() -> None:
        victim = max(deployment.live_servers(), key=lambda s: s.n_clients)
        observer.note_crash(victim)
        victim.crash()

    return crash_most_loaded


class ConformanceTrace:
    """Observer recording the service-visible life of every viewer.

    Used to prove flyweight ≡ full-object: the trace deliberately
    excludes absolute timestamps (the modes' different control-plane
    wire sizes legitimately shift GCS event times by sub-millisecond
    amounts) and records, per client, the ordered
    ``(server, offset, takeover)`` session-start sequence — who served
    the viewer, from which frame, and whether the start was a
    takeover."""

    def __init__(self) -> None:
        self.starts: Dict[str, List[Tuple[str, int, bool]]] = {}

    def on_session_start(self, server, record, takeover: bool) -> None:
        self.starts.setdefault(record.client.name, []).append(
            (server.name, int(record.offset), bool(takeover))
        )


def conformance_trace(
    n_clients: int = 48,
    duration_s: float = 8.0,
    seed: int = 77,
    mode: str = "full",
    crash_at: Optional[float] = None,
    batch_window_s: float = 1.0,
) -> Dict[str, Dict]:
    """Run the conformance rig and return its canonical trace.

    The rig pins every timing-relevant knob so the two modes are
    event-for-event comparable: ``connect_window_s=0.0`` (the admission
    queue drains the whole population in one sorted batch, making
    placement independent of arrival jitter), ``n_clients`` small
    enough for one edge node (the GCS daemon set is then identical
    across modes), and — in full mode — mux clients with a prebuffer
    deep enough that flow control stays silent, so full-object
    playheads advance at the fixed base rate exactly like the flyweight
    arithmetic.  Returns ``{"starts": .., "final": ..}`` where
    ``final`` maps each still-served viewer to its server-side playhead
    at ``duration_s``."""
    sim, deployment, viewers, observer = build_scale_rig(
        n_clients,
        batch_window_s,
        n_servers=3,
        seed=seed,
        movie_duration_s=duration_s + 60.0,
        connect_window_s=0.0,
        mode=mode,
        session_mux=True,
        prebuffer_frames=330,
    )
    trace = ConformanceTrace()
    deployment.add_server_observer(trace)
    if crash_at is not None:
        sim.call_at(crash_at, make_crash_most_loaded(deployment, observer))
    sim.run_until(duration_s)
    final: Dict[str, int] = {}
    for server in deployment.live_servers():
        for client, session in server.sessions.items():
            final[client.name] = int(session.position)
        for cohort in server._cohorts.values():
            for client in cohort.rows:
                final[client.name] = int(cohort.position_of(client))
    return {
        "starts": {name: trace.starts[name] for name in sorted(trace.starts)},
        "final": {name: final[name] for name in sorted(final)},
        "failover_latencies": sorted(observer.latencies),
    }


def build_edge_lan(
    sim: Simulator,
    n_servers: int,
    n_edges: int,
    server_link: LinkParams = SERVER_LINK,
    edge_link: LinkParams = EDGE_LINK,
) -> Topology:
    """One core switch, ``n_servers`` head-end hosts, ``n_edges``
    concentrator hosts.  ``hosts[:n_servers]`` are the server slots,
    ``hosts[n_servers:]`` the edges."""
    network = Network(sim)
    core = network.add_node("core")
    topology = Topology(network=network, infrastructure=[core.node_id])
    for index in range(n_servers):
        host = network.add_node(f"headend{index}")
        network.add_link(host.node_id, core.node_id, server_link)
        topology.hosts.append(host.node_id)
    for index in range(n_edges):
        edge = network.add_node(f"edge{index}")
        network.add_link(edge.node_id, core.node_id, edge_link)
        topology.hosts.append(edge.node_id)
    return topology


def build_scale_rig(
    n_clients: int,
    batch_window_s: float,
    n_servers: int = 3,
    seed: int = 77,
    movie_duration_s: float = 120.0,
    connect_window_s: float = 2.0,
    clients_per_edge: int = CLIENTS_PER_EDGE,
    mode: str = "full",
    session_mux: bool = False,
    prebuffer_frames: int = 0,
):
    """A service with ``n_clients`` viewers connecting over the first
    ``connect_window_s`` seconds of the run.

    Connects start at t=0, before the movie group's first view exists:
    the servers' admission queue absorbs the flood and admits it once
    the view settles, so the join-regime recompute never sees a growing
    record set (the old rig delayed connects instead — a workaround).

    ``mode="full"`` attaches one :class:`VoDClient` per viewer and
    returns ``(sim, deployment, clients, observer)``; ``session_mux`` /
    ``prebuffer_frames`` configure those clients (the conformance rig
    uses mux + a prebuffer deep enough that flow control stays silent).
    ``mode="flyweight"`` registers the viewers as rows of one
    :class:`~repro.client.flyweight.FlyweightPool` instead and returns
    the pool in the clients slot; servers always run mux in this mode
    (a promoted row needs it)."""
    if mode not in ("full", "flyweight"):
        raise ValueError(f"unknown scale-rig mode {mode!r}")
    flyweight = mode == "flyweight"
    sim = Simulator(seed=seed)
    n_edges = max(1, -(-n_clients // clients_per_edge))
    topology = build_edge_lan(sim, n_servers, n_edges)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=movie_duration_s)]
    )
    from repro.client.player import ClientConfig
    from repro.placement import PlacementContext, ServerProfile, StaticKWay

    mux = session_mux or flyweight
    # Fully replicated feature as a derived placement (k = n_servers):
    # the rig's crash point needs every survivor able to adopt any
    # share of the flood.
    profiles = [ServerProfile(name=f"server{i}") for i in range(n_servers)]
    plan = StaticKWay(k=n_servers).build(
        PlacementContext(catalog=catalog, servers=profiles, k=n_servers)
    )
    deployment = Deployment.from_placement(
        topology,
        plan,
        catalog,
        server_hosts={profile.name: i for i, profile in enumerate(profiles)},
        server_config=ServerConfig(
            batch_window_s=batch_window_s, session_mux=mux
        ),
        client_config=ClientConfig(
            session_mux=mux, prebuffer_frames=prebuffer_frames
        ),
        replicate_all=True,
    )
    observer = _FailoverObserver(sim)
    deployment.add_server_observer(observer)

    if flyweight:
        from repro.client.flyweight import FlyweightConfig

        pool = deployment.attach_flyweight(
            "feature",
            config=FlyweightConfig(senders_max=min(4, n_edges)),
        )
        for index in range(n_clients):
            pool.add_viewer(n_servers + index % n_edges)
        pool.connect_all(connect_window_s)
        return sim, deployment, pool, observer

    edge_endpoints: Dict[int, object] = {}
    clients: List[VoDClient] = []
    for index in range(n_clients):
        edge_index = index % n_edges
        host_index = n_servers + edge_index
        node_id = topology.host(host_index)
        endpoint = edge_endpoints.get(node_id)
        if endpoint is None:
            endpoint = deployment.domain.create_endpoint(node_id)
            edge_endpoints[node_id] = endpoint
        client = deployment.attach_client(
            host_index, endpoint=endpoint, video_port=None
        )
        clients.append(client)
        offset = (index * connect_window_s) / max(1, n_clients)
        sim.call_at(offset, client.request_movie, "feature")
    return sim, deployment, clients, observer


def run_scale_point(
    n_clients: int,
    batch_window_s: float,
    duration_s: float = 12.0,
    crash_at: Optional[float] = None,
    seed: int = 77,
    n_servers: int = 3,
    telemetry_path: Optional[str] = None,
    flyweight: bool = False,
    wall_budget_s: Optional[float] = None,
    invariants: bool = False,
    flight: bool = False,
    flight_config=None,
) -> ScalePoint:
    """Run one population point and return its measurements.

    ``crash_at`` (default: mid-run) terminates the most-loaded server;
    its clients fail over to the survivors.  ``telemetry_path`` streams
    a JSONL export — only use it for artifact runs, as the export makes
    wall-clock figures meaningless.  ``flyweight`` runs the population
    as pool rows (see module docstring).  ``wall_budget_s`` bounds the
    wall clock: the run advances in one-second simulated slices and
    stops early once the budget is spent (the returned point then
    covers ``sim.now`` seconds, not ``duration_s`` — a CI guard, not a
    measurement mode).  ``invariants`` installs a
    :class:`~repro.faulting.InvariantChecker` for the run and reports
    its violation count on the point — note its sampling timer adds
    (deterministic) events, so only compare event counts across runs
    with the same setting.  ``flight`` attaches a bounded
    :class:`~repro.telemetry.FlightRecorder` — a pure bus subscriber,
    so the simulated outcome (events, frames, failover latencies) is
    byte-identical with it on or off; the point then carries the
    assembled incidents and the recorder's self-metering."""
    if crash_at is None:
        crash_at = duration_s / 2.0
    sim, deployment, viewers, observer = build_scale_rig(
        n_clients,
        batch_window_s,
        n_servers=n_servers,
        seed=seed,
        movie_duration_s=duration_s + 60.0,
        mode="flyweight" if flyweight else "full",
    )
    exporter = None
    if telemetry_path is not None:
        from repro.telemetry.export import JsonlExporter

        exporter = JsonlExporter(sim.telemetry, telemetry_path)
        exporter.meta(
            experiment="scale",
            n_clients=n_clients,
            batch_window_s=batch_window_s,
            mode="flyweight" if flyweight else "full",
            seed=seed,
            duration_s=duration_s,
        )

    recorder = None
    if flight:
        from repro.telemetry.flight import FlightRecorder

        recorder = FlightRecorder(sim.telemetry, flight_config)

    sim.call_at(crash_at, make_crash_most_loaded(deployment, observer))

    checker = None
    if invariants:
        from repro.faulting import InvariantChecker

        checker = InvariantChecker(deployment).install()

    # The sim heap is cycle-free (profiling found 859 collector passes
    # freeing zero objects over a 20k-viewer run), so automatic cyclic
    # GC only adds wall time — ~33% at N=20k.  Pause it for the
    # measured section.
    started = time.perf_counter()
    with paused_gc():
        if wall_budget_s is None:
            events = sim.run_until(duration_s)
        else:
            events = 0
            while sim.now < duration_s:
                events += sim.run_until(min(sim.now + 1.0, duration_s))
                if time.perf_counter() - started > wall_budget_s:
                    break
    wall = time.perf_counter() - started
    if checker is not None:
        checker.stop()

    if flyweight:
        frames = viewers.frames_served()
    else:
        frames = sum(client.stats.received for client in viewers)
    point = ScalePoint(
        n_clients=n_clients,
        batch_window_s=batch_window_s,
        duration_s=duration_s,
        events=events,
        wall_s=wall,
        frames_delivered=frames,
        failover_latencies=list(observer.latencies),
        takeovers=len(observer.latencies),
        flyweight=flyweight,
        violations=len(checker.violations) if checker is not None else 0,
    )
    abandoned_spans = None
    if recorder is not None:
        # Abandoned takeover spans are incident triggers, so sweep open
        # spans before closing the recorder; the exporter (if any) then
        # finds none itself, so hand it the list explicitly.
        abandoned_spans = sim.telemetry.abandon_open_spans(
            reason="export-close"
        )
        point.incidents = [i.as_dict() for i in recorder.finish(sim.now)]
        point.flight = recorder.metering()
    if exporter is not None:
        summary = dict(
            frames_delivered=frames,
            takeovers=point.takeovers,
            max_failover_s=point.max_failover_s,
        )
        if abandoned_spans is not None:
            summary["open_spans"] = [
                {"span": s.kind, "key": s.key, "start": s.start}
                for s in abandoned_spans
            ]
        exporter.close(**summary)
    return point


def _scale_shard_worker(task: ShardTask) -> Dict:
    """One shared-nothing shard of a sharded scale point.

    Top-level by design: spawned workers import this by module path and
    rebuild everything from the plain-data :class:`ShardTask`.  Each
    shard is a complete independent head-end — ``run_scale_point`` in
    flyweight mode under the shard's derived seed — and returns plain
    mergeable facts plus a :class:`ScoreHistogram` QoE summary (on the
    rig's clean links a row never stalls, so a viewer's score is 100
    minus the migration penalty of its takeovers — here 0 or 1)."""
    params = task.params
    point = run_scale_point(
        task.n_viewers,
        float(params.get("batch_window_s", 1.0)),
        duration_s=float(params.get("duration_s", 12.0)),
        crash_at=params.get("crash_at"),
        seed=task.seed,
        flyweight=True,
        wall_budget_s=params.get("wall_budget_s"),
        invariants=bool(params.get("invariants", False)),
        flight=bool(params.get("flight", False)),
    )
    histogram = ScoreHistogram()
    clean = max(0, point.n_clients - point.takeovers)
    if clean:
        histogram.add(100.0, clean)
    if point.takeovers:
        histogram.add(99.0, point.takeovers)
    return {
        "shard_id": task.shard_id,
        "seed": task.seed,
        "n_clients": point.n_clients,
        "events": point.events,
        "wall_s": point.wall_s,
        "frames": point.frames_delivered,
        "failover_latencies": list(point.failover_latencies),
        "takeovers": point.takeovers,
        "violations": point.violations,
        "qoe": histogram.as_dict(),
        "incidents": point.incidents,
        "flight": point.flight,
    }


def run_sharded_scale_point(
    n_clients: int,
    batch_window_s: float,
    duration_s: float = 12.0,
    crash_at: Optional[float] = None,
    seed: int = 77,
    n_shards: int = 4,
    workers: Optional[int] = None,
    inline: bool = False,
    wall_budget_s: Optional[float] = None,
    invariants: bool = False,
    flight: bool = False,
) -> ScalePoint:
    """Run one population as ``n_shards`` shared-nothing head-ends.

    The population splits evenly across shards (plus one viewer for the
    first ``n % n_shards``); every shard runs the flyweight scale rig
    to ``duration_s`` under its content-addressed seed and crashes its
    own most-loaded server at ``crash_at``.  The merged point sums
    events/frames/takeovers/violations, unions failover latencies,
    folds the per-shard QoE histograms and evaluates the paper's SLO
    rules over the merged facts.  ``wall_s`` is the coordinator-side
    makespan; per-shard walls ride along in ``shard_walls``.

    The merge is re-applied over the reversed shard order and compared;
    ``merge_deterministic`` records that order-independence held (the
    shard gate asserts it).  With ``flight`` every shard runs its own
    bounded flight recorder; the per-shard incidents merge through
    :func:`repro.shard.merge.merge_incidents` (also checked reversed)
    and the point carries the merged incidents plus per-shard recorder
    metering."""
    plan = ShardPlan(n_shards=n_shards, seed=seed)
    tasks = plan.tasks(
        n_clients,
        params={
            "batch_window_s": batch_window_s,
            "duration_s": duration_s,
            "crash_at": crash_at,
            "wall_budget_s": wall_budget_s,
            "invariants": invariants,
            "flight": flight,
        },
    )
    started = time.perf_counter()
    shard_results = run_shards(
        tasks, _scale_shard_worker, workers=workers, inline=inline
    )
    wall = time.perf_counter() - started

    histograms = [ScoreHistogram.from_dict(r["qoe"]) for r in shard_results]
    qoe = merge_score_histograms(histograms)
    qoe_reversed = merge_score_histograms(reversed(histograms))
    latencies = merge_failovers(r["failover_latencies"] for r in shard_results)
    latencies_reversed = merge_failovers(
        r["failover_latencies"] for r in reversed(shard_results)
    )
    incidents: List[Dict] = []
    flight_meter: Optional[Dict] = None
    incidents_deterministic = True
    if flight:
        from repro.shard.merge import merge_incidents

        pairs = [(r["shard_id"], r["incidents"]) for r in shard_results]
        merged = merge_incidents(pairs)
        merged_reversed = merge_incidents(list(reversed(pairs)))
        incidents_deterministic = (
            [i.as_dict() for i in merged]
            == [i.as_dict() for i in merged_reversed]
        )
        incidents = [i.as_dict() for i in merged]
        flight_meter = {
            "shards": {r["shard_id"]: r["flight"] for r in shard_results}
        }
    deterministic = (
        qoe.as_dict() == qoe_reversed.as_dict()
        and latencies == latencies_reversed
        and incidents_deterministic
    )
    if not deterministic:
        raise MergeError(
            "sharded merge produced order-dependent results; the merge "
            "layer's commutativity contract is broken"
        )
    slo = sharded_slo_summary(
        n_clients=sum(r["n_clients"] for r in shard_results),
        duration_s=duration_s,
        failover_latencies=latencies,
    )
    return ScalePoint(
        n_clients=sum(r["n_clients"] for r in shard_results),
        batch_window_s=batch_window_s,
        duration_s=duration_s,
        events=sum(r["events"] for r in shard_results),
        wall_s=wall,
        frames_delivered=sum(r["frames"] for r in shard_results),
        failover_latencies=latencies,
        takeovers=sum(r["takeovers"] for r in shard_results),
        flyweight=True,
        violations=sum(r["violations"] for r in shard_results),
        n_shards=n_shards,
        shard_walls=[r["wall_s"] for r in shard_results],
        qoe=qoe.as_dict(),
        slo=slo,
        merge_deterministic=deterministic,
        incidents=incidents,
        flight=flight_meter,
    )


def _point_payload(row: ScalePoint) -> Dict:
    """One benchmark-JSON row; sharded points carry their extra facts."""
    payload = {
        "n_clients": row.n_clients,
        "mode": row.mode,
        "events": row.events,
        "wall_s": row.wall_s,
        "events_per_s": row.events_per_s,
        "frames_delivered": row.frames_delivered,
        "frames_per_wall_s": row.frames_per_wall_s,
        "takeovers": row.takeovers,
        "max_failover_s": row.max_failover_s,
        "failover_latencies": row.failover_latencies,
    }
    if row.n_shards > 1:
        payload.update(
            n_shards=row.n_shards,
            shard_walls=row.shard_walls,
            violations=row.violations,
            qoe=row.qoe,
            slo=row.slo,
            merge_deterministic=row.merge_deterministic,
        )
    if row.flight is not None:
        payload.update(
            n_incidents=len(row.incidents),
            incidents=row.incidents,
            flight=row.flight,
        )
    return payload


def run(spec: ExperimentSpec) -> ExperimentResult:
    """Entry point for ``ExperimentSpec(name="scale")``.

    Params: ``sizes`` (populations to sweep), ``duration`` (simulated
    seconds per point), ``window`` (batch window, seconds; the per-frame
    baseline always uses 0), ``compare_max`` (largest N that also runs
    the per-frame baseline), ``flyweight_sizes`` (populations to run in
    flyweight mode — this is where 20 000..100 000 live),
    ``sharded_sizes`` (populations to run shared-nothing across
    ``shards`` worker processes — this is where 1 000 000 lives),
    ``shards`` (shard count for those, default 4), ``workers``
    (process-pool cap, default one per core), ``shard_inline`` (run
    shards sequentially in-process — determinism checks on small
    boxes), ``wall_budget`` (optional wall-clock ceiling per flyweight
    point, seconds), ``telemetry_n`` (population of the
    telemetry-artifact run; ignored without ``spec.telemetry_path``),
    ``flight`` (attach a flight recorder to flyweight and sharded
    points; the points then carry incidents and recorder metering).
    """
    params = spec.params
    sizes = tuple(params.get("sizes", DEFAULT_SIZES))
    duration = float(params.get("duration", 12.0))
    window = float(params.get("window", 1.0))
    compare_max = int(params.get("compare_max", COMPARE_MAX))
    flyweight_sizes = tuple(params.get("flyweight_sizes", ()))
    sharded_sizes = tuple(params.get("sharded_sizes", ()))
    n_shards = int(params.get("shards", 4))
    workers = params.get("workers")
    workers = None if workers is None else int(workers)
    shard_inline = bool(params.get("shard_inline", False))
    wall_budget = params.get("wall_budget")
    wall_budget = None if wall_budget is None else float(wall_budget)
    flight = bool(params.get("flight", False))
    seed = spec.seed if spec.seed is not None else 77

    points: List[ScalePoint] = []
    baselines: Dict[int, ScalePoint] = {}
    for n_clients in sizes:
        fast = run_scale_point(
            n_clients, window, duration_s=duration, seed=seed
        )
        points.append(fast)
        if n_clients <= compare_max:
            baselines[n_clients] = run_scale_point(
                n_clients, 0.0, duration_s=duration, seed=seed
            )
    for n_clients in flyweight_sizes:
        points.append(
            run_scale_point(
                n_clients, window, duration_s=duration, seed=seed,
                flyweight=True, wall_budget_s=wall_budget, flight=flight,
            )
        )
    for n_clients in sharded_sizes:
        points.append(
            run_sharded_scale_point(
                n_clients, window, duration_s=duration, seed=seed,
                n_shards=n_shards, workers=workers, inline=shard_inline,
                wall_budget_s=wall_budget, flight=flight,
            )
        )

    artifacts: Dict[str, str] = {}
    benchmark_json = params.get("benchmark_json")
    if benchmark_json:
        directory = os.path.dirname(benchmark_json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = {
            "experiment": "scale",
            "seed": seed,
            "duration_s": duration,
            "window_s": window,
            "points": [
                _point_payload(row)
                for row in list(baselines.values()) + points
            ],
        }
        with open(benchmark_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        artifacts["benchmark_json"] = benchmark_json
    if spec.telemetry_path is not None:
        telemetry_n = int(params.get("telemetry_n", min(sizes)))
        run_scale_point(
            telemetry_n, window, duration_s=duration, seed=seed,
            telemetry_path=spec.telemetry_path,
        )
        artifacts["telemetry"] = spec.telemetry_path

    table = Table(
        f"Scale — batched fast path, {duration:.0f}s, crash mid-run",
        [
            "clients", "mode", "events", "wall (s)", "events/s",
            "frames/wall-s", "takeovers", "max failover (s)",
        ],
    )
    for point in points:
        baseline = None if point.flyweight else baselines.get(point.n_clients)
        for row in filter(None, (baseline, point)):
            table.add_row(
                row.n_clients,
                row.mode,
                row.events,
                f"{row.wall_s:.2f}",
                f"{row.events_per_s:,.0f}",
                f"{row.frames_per_wall_s:,.0f}",
                row.takeovers,
                f"{row.max_failover_s:.3f}",
            )

    blocks = [table.render()]
    speedups = []
    for point in points:
        baseline = None if point.flyweight else baselines.get(point.n_clients)
        if baseline is not None and point.wall_s > 0:
            speedups.append(
                f"N={point.n_clients}: "
                f"{baseline.wall_s / point.wall_s:.2f}x wall, "
                f"{point.frames_per_wall_s / max(baseline.frames_per_wall_s, 1e-9):.2f}x "
                f"frame throughput"
            )
    if speedups:
        blocks.append("Fast-path speedup vs per-frame: " + "; ".join(speedups))
    failovers = [p.max_failover_s for p in points if p.takeovers]
    if len(failovers) >= 2:
        blocks.append(
            "Failover latency across populations: "
            + ", ".join(f"{v:.3f}s" for v in failovers)
            + " (flat in N: takeover is per-client state lookup)"
        )
    for point in points:
        if point.n_shards > 1 and point.qoe is not None:
            slo_ok = all(
                state.get("breaches", 0) == 0
                for state in (point.slo or {}).values()
            )
            blocks.append(
                f"Sharded N={point.n_clients:,} ({point.n_shards} shards): "
                f"QoE mean {point.qoe['mean']:.2f} / p10 "
                f"{point.qoe['p10']:.0f}, SLO "
                f"{'clean' if slo_ok else 'BREACHED'}, "
                f"{point.violations} invariant violations, makespan "
                f"{point.wall_s:.1f}s (shard walls "
                + ", ".join(f"{w:.1f}s" for w in point.shard_walls)
                + ")"
                + (
                    f", {len(point.incidents)} incident(s) recorded"
                    if point.flight is not None
                    else ""
                )
            )
    return ExperimentResult(spec=spec, blocks=blocks, data=points,
                            artifacts=artifacts)
