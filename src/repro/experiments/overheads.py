"""Quantitative claims from the paper's text, verified as tables.

* **T-sync** (Sections 1 and 5.2): server synchronization every half a
  second costs "less than one thousandth of the total communication
  bandwidth used by the VoD service", "a few dozens of bytes" per
  client.
* **T-emergency** (Section 4.1): the emergency refill adds at most 40%
  of the mean bandwidth; decay q=12, f=0.8 delivers 43 extra frames
  (q=6 delivers ~15).
* **T-buffer** (Section 4.2): take-over time ~0.5 s average on a LAN;
  buffers of ~2.4 s with the low water mark at 73% cover an ~1.7 s
  irregularity period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.scenarios import LAN_SCENARIO, run_scenario
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.server.rate_controller import EmergencyConfig
from repro.service.deployment import Deployment
from repro.service.protocol import EmergencyLevel
from repro.sim.core import Simulator


# ----------------------------------------------------------------------
# T-sync: control-plane overhead vs video bandwidth
# ----------------------------------------------------------------------
@dataclass
class SyncOverheadResult:
    n_clients: int
    duration_s: float
    video_bytes: int
    control_bytes: int
    sync_bytes: int

    @property
    def control_fraction(self) -> float:
        return self.control_bytes / max(1, self.video_bytes)

    @property
    def sync_fraction(self) -> float:
        return self.sync_bytes / max(1, self.video_bytes)

    def table(self) -> Table:
        table = Table(
            "T-sync — synchronization overhead vs video bandwidth",
            ["quantity", "paper", "measured"],
        )
        table.add_row(
            "state-sync bytes / video bytes", "< 1/1000",
            f"{self.sync_fraction:.6f}",
        )
        table.add_row(
            "total GCS control bytes / video bytes", "(not broken out)",
            f"{self.control_fraction:.6f}",
        )
        table.add_row("clients", "-", str(self.n_clients))
        return table


def measure_sync_overhead(
    n_clients: int = 4, duration_s: float = 60.0, seed: int = 21
) -> SyncOverheadResult:
    """Run a steady LAN deployment and compare traffic volumes."""
    sim = Simulator(seed=seed)
    topology = build_lan(sim, n_hosts=2 + n_clients)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=duration_s + 30)]
    )
    deployment = Deployment(topology, catalog, server_nodes=[0, 1])
    clients = []
    for index in range(n_clients):
        client = deployment.attach_client(2 + index)
        client.request_movie("feature")
        clients.append(client)
    sim.run_until(duration_s)

    video_bytes = sum(s.video_bytes_sent for s in deployment.servers.values())
    control_bytes = sum(
        s.endpoint.control_bytes_sent for s in deployment.servers.values()
    ) + sum(c.endpoint.control_bytes_sent for c in clients)
    # State-sync volume alone (the paper's "synchronization" traffic).
    sync_bytes = sum(
        server.state_sync_bytes_sent for server in deployment.servers.values()
    )
    return SyncOverheadResult(
        n_clients=n_clients,
        duration_s=duration_s,
        video_bytes=video_bytes,
        control_bytes=control_bytes,
        sync_bytes=sync_bytes,
    )


# ----------------------------------------------------------------------
# T-emergency: decay sequences and added bandwidth
# ----------------------------------------------------------------------
@dataclass
class EmergencyResult:
    severe_sequence: List[int]
    mild_sequence: List[int]
    peak_rate_fraction: float  # measured peak/mean received rate

    def table(self) -> Table:
        table = Table(
            "T-emergency — decaying refill quota (Section 4.1)",
            ["quantity", "paper", "measured"],
        )
        table.add_row(
            "severe sequence (q=12, f=0.8)", "sums to 43",
            f"{self.severe_sequence} = {sum(self.severe_sequence)}",
        )
        table.add_row(
            "mild sequence (q=6, f=0.8)", "sums to ~15",
            f"{self.mild_sequence} = {sum(self.mild_sequence)}",
        )
        table.add_row(
            "peak/mean bandwidth during refill", "<= 1.4",
            f"{self.peak_rate_fraction:.2f}",
        )
        return table


def measure_emergency(seed: int = 11) -> EmergencyResult:
    """Sequences analytically + peak/mean bandwidth from the LAN run."""
    config = EmergencyConfig()
    result = run_scenario(LAN_SCENARIO, seed=seed)
    series = result.client.stats.received_bytes_cum
    crash = result.crash_times[0]

    # Mean rate over a steady window; peak 1 s rate during the refill.
    steady = series.increase_over(20.0, 35.0) / 15.0
    peak = 0.0
    t = crash
    while t < crash + 10.0:
        rate = series.increase_over(t, t + 1.0)
        peak = max(peak, rate)
        t += 0.25
    return EmergencyResult(
        severe_sequence=config.sequence(EmergencyLevel.SEVERE),
        mild_sequence=config.sequence(EmergencyLevel.MILD),
        peak_rate_fraction=peak / max(1.0, steady),
    )


# ----------------------------------------------------------------------
# T-buffer: take-over time
# ----------------------------------------------------------------------
@dataclass
class TakeoverResult:
    takeover_times: List[float]
    irregularity_gaps: List[float]

    @property
    def mean_takeover(self) -> float:
        return sum(self.takeover_times) / len(self.takeover_times)

    def table(self) -> Table:
        table = Table(
            "T-buffer — take-over time on a LAN (Section 4.2)",
            ["quantity", "paper", "measured"],
        )
        table.add_row(
            "mean take-over time (s)", "~0.5",
            f"{self.mean_takeover:.2f} over {len(self.takeover_times)} trials",
        )
        table.add_row(
            "worst irregularity (transmission gap, s)",
            "<= sync skew (0.5) + take-over",
            f"{max(self.irregularity_gaps):.2f}",
        )
        table.add_row(
            "covered by low-water-mark buffer (s)", "~1.7",
            "yes" if max(self.irregularity_gaps) <= 1.7 else "NO",
        )
        return table


def measure_takeover(n_trials: int = 5, base_seed: int = 100) -> TakeoverResult:
    """Crash the serving server repeatedly; measure detection+takeover."""
    takeovers: List[float] = []
    gaps: List[float] = []
    for trial in range(n_trials):
        result = run_scenario(LAN_SCENARIO, seed=base_seed + trial)
        crash = result.crash_times[0]
        migration = next(
            (t for t, _old, new in result.client.stats.migrations
             if t >= crash and new is not None),
            None,
        )
        if migration is None:
            continue
        takeovers.append(migration - crash)
        # Irregularity = crash .. first frame from the new server.
        series = result.client.stats.received_bytes_cum
        t = crash
        gap_end = crash
        while t < crash + 5.0:
            if series.increase_over(t, t + 0.25) > 0:
                gap_end = t
                break
            t += 0.25
        gaps.append(max(0.0, gap_end - crash))
    return TakeoverResult(takeover_times=takeovers, irregularity_gaps=gaps)


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`).

    ``params["measure"]`` picks the claim: ``sync``, ``emergency``,
    ``takeover`` or ``all``.
    """
    from repro.experiments.api import ExperimentResult
    from repro.errors import ReproError

    measure = spec.params.get("measure", "all")
    result = ExperimentResult(spec=spec)
    data = {}
    if measure not in ("sync", "emergency", "takeover", "all"):
        raise ReproError(f"unknown overheads measure {measure!r}")
    if measure in ("sync", "all"):
        sync = measure_sync_overhead(
            n_clients=int(spec.params.get("clients", 4))
        )
        data["sync"] = sync
        result.blocks.append(sync.table().render())
    if measure in ("emergency", "all"):
        kwargs = {} if spec.seed is None else {"seed": spec.seed}
        emergency = measure_emergency(**kwargs)
        data["emergency"] = emergency
        result.blocks.append(emergency.table().render())
    if measure in ("takeover", "all"):
        kwargs = {} if spec.seed is None else {"base_seed": spec.seed}
        takeover = measure_takeover(
            n_trials=int(spec.params.get("trials", 5)), **kwargs
        )
        data["takeover"] = takeover
        result.blocks.append(takeover.table().render())
    result.data = data if measure == "all" else data[measure]
    return result
