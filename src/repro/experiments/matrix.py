"""Composable scenario matrix: axes x axes -> seeded ScenarioSpecs.

The paper measures two hand-built scenarios (Section 6's LAN and WAN
runs).  This module grows them into a *matrix*: small declarative
:class:`Axis` objects — topology, workload, fault schedule, client mix
— crossed into a deterministic grid of
:class:`~repro.experiments.scenarios.ScenarioSpec` cells, each with a
stable identity and its own derived seed.

Determinism contract:

* a cell's identity (:attr:`Cell.cell_id`) is the sorted
  ``axis=value`` pairs, so it cannot depend on the order axes were
  declared in;
* :meth:`ScenarioMatrix.cells` enumerates the cross product over axes
  *sorted by name*, so the cell list is identical under axis
  reordering;
* a cell's seed is ``crc32(f"{matrix_seed}:{cell_id}")`` —
  content-addressed, platform-independent (never Python's randomized
  ``hash``), and unchanged by adding unrelated axes values elsewhere.

``run(spec)`` (the ``repro-vod matrix`` experiment) sweeps a preset
sub-matrix with the QoE/SLO observers and an
:class:`~repro.faulting.invariants.InvariantChecker` attached, renders
a per-cell verdict table, runs the reject-vs-degrade admission faceoff
and can dump everything as a benchmark JSON for the CI gate
(:mod:`repro.experiments.matrix_gate`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.client.player import ClientConfig
from repro.errors import ServiceError
from repro.experiments.api import ExperimentResult, ExperimentSpec
from repro.experiments.scenarios import (
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from repro.faulting.invariants import InvariantChecker
from repro.faulting.plan import FaultPlan
from repro.metrics.report import Table
from repro.net.link import LinkFault
from repro.server.admission import AdmissionSpec
from repro.telemetry.slo import quantile

#: Known values per axis, in default-first order.
TOPOLOGIES = ("lan", "wan", "hierarchy")
WORKLOADS = ("single", "flash-crowd", "diurnal", "vcr-storm")
FAULTS = ("crash-recover", "none")
CLIENT_MIXES = ("hardware", "software", "small-buffers", "lossy-lastmile")

#: What a population cell's admission policy looks like (degrade under
#: overload; resumes stay exempt so fault tolerance is never throttled).
POPULATION_ADMISSION = AdmissionSpec(
    mode="degrade", rate_per_s=0.5, burst=3.0, degraded_fps=12
)


@dataclass(frozen=True)
class Axis:
    """One named dimension of the matrix and its candidate values."""

    name: str
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ServiceError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ServiceError(f"axis {self.name!r} has duplicate values")


@dataclass(frozen=True)
class Cell:
    """One point of the cross product: axis name -> chosen value."""

    coords: Tuple[Tuple[str, str], ...]

    @classmethod
    def of(cls, **coords: str) -> "Cell":
        return cls(coords=tuple(sorted(coords.items())))

    def value(self, axis: str, default: str) -> str:
        for name, value in self.coords:
            if name == axis:
                return value
        return default

    @property
    def cell_id(self) -> str:
        """Stable identity: sorted ``axis=value`` pairs."""
        return ",".join(
            f"{name}={value}" for name, value in sorted(self.coords)
        )

    def seed(self, matrix_seed: int) -> int:
        """Content-addressed per-cell seed (no Python ``hash``)."""
        digest = zlib.crc32(f"{matrix_seed}:{self.cell_id}".encode("utf-8"))
        return digest & 0x7FFFFFFF


@dataclass(frozen=True)
class ScenarioMatrix:
    """A cross product of axes, enumerated deterministically."""

    axes: Tuple[Axis, ...]

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate axis names in {names}")

    def cells(self) -> List[Cell]:
        """Every axis combination exactly once, in an order independent
        of how the axes were declared (axes sorted by name)."""
        ordered = sorted(self.axes, key=lambda axis: axis.name)
        names = [axis.name for axis in ordered]
        return [
            Cell(coords=tuple(zip(names, combo)))
            for combo in product(*(axis.values for axis in ordered))
        ]

    def __len__(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size


def default_matrix() -> ScenarioMatrix:
    """The full ``repro-vod matrix`` sweep: 3 x 4 x 2 = 24 cells."""
    return ScenarioMatrix(
        axes=(
            Axis("topology", TOPOLOGIES),
            Axis("workload", WORKLOADS),
            Axis("faults", FAULTS),
            Axis("clients", ("hardware",)),
        )
    )


def gate_matrix() -> ScenarioMatrix:
    """The CI sub-matrix: 3 x 2 x 2 = 12 cells, fast enough per push."""
    return ScenarioMatrix(
        axes=(
            Axis("topology", TOPOLOGIES),
            Axis("workload", ("single", "flash-crowd")),
            Axis("faults", FAULTS),
        )
    )


# ----------------------------------------------------------------------
# Cell -> ScenarioSpec
# ----------------------------------------------------------------------
def _client_mix(clients: str) -> Optional[ClientConfig]:
    if clients in ("hardware", "lossy-lastmile"):
        return None  # prototype defaults; lossy adds a link fault instead
    if clients == "software":
        return ClientConfig.software_decoder()
    if clients == "small-buffers":
        base = ClientConfig()
        return ClientConfig(
            sw_capacity_frames=max(8, base.sw_capacity_frames // 2),
            hw_capacity_bytes=base.hw_capacity_bytes // 2,
        )
    raise ServiceError(f"unknown client mix {clients!r}")


def _workload_spec(workload: str) -> Optional[WorkloadSpec]:
    if workload == "single":
        return None
    if workload == "flash-crowd":
        return WorkloadSpec(kind="flash-crowd", n_viewers=8, at_s=6.0)
    if workload == "diurnal":
        return WorkloadSpec(
            kind="diurnal",
            n_viewers=6,
            at_s=2.0,
            base_rate_per_s=0.05,
            peak_rate_per_s=0.4,
            window_s=40.0,
        )
    if workload == "vcr-storm":
        return WorkloadSpec(
            kind="poisson",
            n_viewers=6,
            at_s=2.0,
            peak_rate_per_s=0.3,
            window_s=30.0,
            profile="vcr-storm",
        )
    raise ServiceError(f"unknown workload {workload!r}")


def spec_for_cell(cell: Cell, matrix_seed: int = 11) -> ScenarioSpec:
    """Translate a cell into a runnable :class:`ScenarioSpec`.

    Axis values are applied in a fixed semantic order (topology,
    workload, faults, clients), independent of the cell's coordinate
    order, so equal cells always produce equal specs.  The all-default
    cell (lan / single / crash-recover / hardware) reproduces
    :data:`~repro.experiments.scenarios.LAN_SCENARIO` exactly, modulo
    name and seed — the conformance anchor.
    """
    topology = cell.value("topology", "lan")
    workload = cell.value("workload", "single")
    faults = cell.value("faults", "crash-recover")
    clients = cell.value("clients", "hardware")
    if topology not in TOPOLOGIES:
        raise ServiceError(f"unknown topology {topology!r}")
    if faults not in FAULTS:
        raise ServiceError(f"unknown fault schedule {faults!r}")

    n_initial_servers = 2
    workload_spec = _workload_spec(workload)
    if workload_spec is None:
        n_client_hosts = 1
        admission = None
        if topology == "lan":
            duration_s, crash_at, up_at = 240.0, 38.0, 62.0
        else:
            duration_s, crash_at, up_at = 100.0, 35.0, 60.0
    else:
        n_client_hosts = workload_spec.n_viewers + 1
        admission = POPULATION_ADMISSION
        duration_s, crash_at, up_at = 70.0, 30.0, 45.0

    schedule: Tuple[Tuple[float, str], ...] = ()
    if faults == "crash-recover":
        schedule = ((crash_at, "crash-serving"), (up_at, "server-up"))

    seed = cell.seed(matrix_seed)
    plan = None
    if clients == "lossy-lastmile":
        # The schedule plus a degraded last-mile link under the measured
        # client needs the full FaultPlan DSL (mirrors plan_for_spec's
        # schedule translation, then adds the impairment).
        plan = FaultPlan(name=cell.cell_id, seed=seed)
        next_server_slot = n_initial_servers
        for at, action in schedule:
            if action == "crash-serving":
                plan = plan.crash_serving(at)
            else:
                plan = plan.server_up(at, host=next_server_slot)
                next_server_slot += 1
        client_host = n_initial_servers + 2 + n_client_hosts - 1
        plan = plan.impair_host(
            0.0,
            host=client_host,
            fault=LinkFault(drop_prob=0.02, extra_delay_s=0.005),
        )

    return ScenarioSpec(
        name=cell.cell_id,
        network=topology,
        movie_duration_s=duration_s,
        run_duration_s=duration_s,
        n_initial_servers=n_initial_servers,
        schedule=schedule,
        plan=plan,
        seed=seed,
        client_config=_client_mix(clients),
        workload=workload_spec,
        admission=admission,
        n_client_hosts=n_client_hosts,
    )


# ----------------------------------------------------------------------
# Running cells
# ----------------------------------------------------------------------
def run_cell(cell: Cell, matrix_seed: int = 11) -> Dict:
    """Run one cell with observers + invariant checker; return its verdict."""
    from repro.experiments.scenarios import prepare_scenario

    spec = spec_for_cell(cell, matrix_seed)
    live = prepare_scenario(spec, observe=True)
    checker = InvariantChecker(live.result.deployment).install()
    try:
        with live:
            live.step(spec.run_duration_s)
    finally:
        checker.stop()
    result = live.result
    scores = sorted(card.score() for card in result.qoe.values())
    rejects = sum(card.admission_rejects for card in result.qoe.values())
    degrades = sum(
        1 for card in result.qoe.values() if card.degrade_fraction > 0
    )
    breaches = sum(item.get("breaches", 0) for item in result.slo.values())
    violations = len(checker.violations)
    return {
        "cell": cell.cell_id,
        "seed": spec.seed,
        "clients": len(scores),
        "qoe_mean": sum(scores) / len(scores) if scores else 0.0,
        "qoe_p10": quantile(scores, 0.10) if scores else 0.0,
        "displayed": result.client.displayed_total,
        "rejects": rejects,
        "degrades": degrades,
        "slo_breaches": breaches,
        "violations": violations,
        "verdict": "ok" if (breaches == 0 and violations == 0) else "breach",
    }


def _run_cell_task(task: Tuple[Cell, int]) -> Dict:
    """Spawn-importable wrapper: one ``(cell, matrix_seed)`` work item.

    Top-level by design — the parallel matrix ships these through the
    shard worker pool, and spawned processes import the worker by
    module path and rebuild all simulation state from the (frozen,
    picklable) cell."""
    cell, matrix_seed = task
    return run_cell(cell, matrix_seed)


def run_matrix(
    matrix: Optional[ScenarioMatrix] = None,
    matrix_seed: int = 11,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Run every cell; returns one verdict dict per cell, in cell order.

    ``workers=None`` keeps the historical serial in-process sweep.  An
    integer fans the cells out over that many spawned worker processes
    (the pool of :mod:`repro.shard.runner`); cells are independent
    seeded simulations, so the parallel sweep returns byte-identical
    verdicts in the same cell order — the scenario-matrix CI gate runs
    parallel and asserts against a serially-generated baseline."""
    if matrix is None:
        matrix = default_matrix()
    if workers is None:
        return [run_cell(cell, matrix_seed) for cell in matrix.cells()]
    from repro.shard.runner import map_tasks

    tasks = [(cell, matrix_seed) for cell in matrix.cells()]
    return map_tasks(_run_cell_task, tasks, workers=workers)


# ----------------------------------------------------------------------
# Admission faceoff: reject-only vs degrade at equal capacity
# ----------------------------------------------------------------------
def run_faceoff(matrix_seed: int = 11) -> Dict:
    """Flash crowd at fixed capacity: reject-only vs degrade policy.

    Same topology, workload, seed and token-bucket capacity; only the
    overload *action* differs.  The p10 QoE is the headline — a reject
    storm bottoms out the unlucky tail, while degrading keeps everyone
    on the air at reduced quality.
    """
    seed = zlib.crc32(f"{matrix_seed}:faceoff".encode("utf-8")) & 0x7FFFFFFF
    workload = WorkloadSpec(kind="flash-crowd", n_viewers=10, at_s=6.0)
    outcomes: Dict[str, Dict] = {}
    for mode in ("reject", "degrade"):
        spec = ScenarioSpec(
            name=f"faceoff-{mode}",
            network="lan",
            movie_duration_s=60.0,
            run_duration_s=60.0,
            seed=seed,
            workload=workload,
            admission=AdmissionSpec(
                mode=mode, rate_per_s=0.4, burst=2.0, degraded_fps=12
            ),
            n_client_hosts=workload.n_viewers + 1,
        )
        result = run_scenario(spec, observe=True)
        scores = sorted(card.score() for card in result.qoe.values())
        outcomes[mode] = {
            "qoe_mean": sum(scores) / len(scores) if scores else 0.0,
            "qoe_p10": quantile(scores, 0.10) if scores else 0.0,
            "rejects": sum(
                card.admission_rejects for card in result.qoe.values()
            ),
            "degrades": sum(
                1 for card in result.qoe.values()
                if card.degrade_fraction > 0
            ),
            "clients": len(scores),
        }
    return {
        "seed": seed,
        "reject": outcomes["reject"],
        "degrade": outcomes["degrade"],
    }


# ----------------------------------------------------------------------
# Rendering + experiment entry point
# ----------------------------------------------------------------------
def render_matrix(verdicts: List[Dict], title: str) -> str:
    table = Table(
        title,
        ["cell", "clients", "qoe mean", "qoe p10", "rejects", "degrades",
         "slo breaches", "violations", "verdict"],
    )
    for verdict in verdicts:
        table.add_row(
            verdict["cell"],
            verdict["clients"],
            f"{verdict['qoe_mean']:.1f}",
            f"{verdict['qoe_p10']:.1f}",
            verdict["rejects"],
            verdict["degrades"],
            verdict["slo_breaches"],
            verdict["violations"],
            verdict["verdict"],
        )
    return table.render()


def render_faceoff(faceoff: Dict) -> str:
    table = Table(
        "Admission faceoff: flash crowd at equal capacity",
        ["policy", "clients", "qoe mean", "qoe p10", "rejects", "degrades"],
    )
    for mode in ("reject", "degrade"):
        item = faceoff[mode]
        table.add_row(
            mode,
            item["clients"],
            f"{item['qoe_mean']:.1f}",
            f"{item['qoe_p10']:.1f}",
            item["rejects"],
            item["degrades"],
        )
    lines = [table.render()]
    gain = faceoff["degrade"]["qoe_p10"] - faceoff["reject"]["qoe_p10"]
    lines.append(
        f"degrade p10 QoE beats reject-only by {gain:+.1f} points "
        "at identical token-bucket capacity."
    )
    return "\n".join(lines)


def benchmark_dict(
    preset: str, matrix_seed: int, verdicts: List[Dict], faceoff: Dict
) -> Dict:
    """The committed-baseline shape for the scenario-matrix CI gate."""
    return {
        "preset": preset,
        "seed": matrix_seed,
        "tolerances": {
            "qoe_rel": 0.15,
            "qoe_floor": 25.0,
        },
        "cells": {verdict["cell"]: verdict for verdict in verdicts},
        "faceoff": faceoff,
    }


def run(spec: ExperimentSpec) -> ExperimentResult:
    """``repro-vod matrix``: sweep a preset sub-matrix + the faceoff.

    ``params["workers"]`` fans the cells out across that many spawned
    processes (verdicts stay byte-identical to the serial sweep)."""
    preset = spec.params.get("preset", "full")
    if preset == "full":
        matrix = default_matrix()
    elif preset == "gate":
        matrix = gate_matrix()
    else:
        raise ServiceError(f"unknown matrix preset {preset!r}")
    matrix_seed = spec.seed if spec.seed is not None else 11
    workers = spec.params.get("workers")
    workers = None if workers is None else int(workers)
    verdicts = run_matrix(matrix, matrix_seed, workers=workers)
    faceoff = run_faceoff(matrix_seed)
    title = (
        f"Scenario matrix ({preset} preset, {len(verdicts)} cells, "
        f"seed {matrix_seed})"
    )
    result = ExperimentResult(
        spec=spec,
        blocks=[render_matrix(verdicts, title), render_faceoff(faceoff)],
        data={
            "preset": preset,
            "seed": matrix_seed,
            "cells": {verdict["cell"]: verdict for verdict in verdicts},
            "faceoff": faceoff,
        },
    )
    benchmark_json = spec.params.get("benchmark_json")
    if benchmark_json:
        import json
        import os

        directory = os.path.dirname(benchmark_json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(benchmark_json, "w") as handle:
            json.dump(
                benchmark_dict(preset, matrix_seed, verdicts, faceoff),
                handle,
                indent=1,
                sort_keys=True,
            )
        result.artifacts["benchmark"] = benchmark_json
    return result
