"""E-qos — the Section 8 extension, evaluated.

The paper's conclusion plans an ATM port: "the video material will be
transmitted via native ATM connections", with Section 4.1 already sizing
the reservation (CBR for the stream + a VBR channel of at most 40% for
emergencies).  This experiment runs the WAN scenario with and without
such reservations and quantifies what the reservation buys:

* without QoS: steady frame loss (never retransmitted) shows up as
  skipped frames for the whole run;
* with QoS: the stream rides loss-free reserved slots; the only skips
  left are the startup refill's overflow discards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.player import VoDClient
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_wan
from repro.server.server import ServerConfig
from repro.service.deployment import Deployment
from repro.sim.core import Simulator


@dataclass
class QosTrial:
    qos: bool
    skipped: int
    late: int
    overflow: int
    displayed: int
    stall_s: float
    reserved_bps: float


def run_wan_trial(
    use_qos: bool,
    duration_s: float = 120.0,
    crash_at: float = 60.0,
    seed: int = 5,
) -> QosTrial:
    """One WAN run (7 hops, ~1% loss) with a mid-movie crash."""
    sim = Simulator(seed=seed)
    topology = build_wan(sim, 2, 1)
    catalog = MovieCatalog([Movie.synthetic("feature", duration_s=duration_s)])
    deployment = Deployment(
        topology,
        catalog,
        server_nodes=[0, 1],
        server_config=ServerConfig(use_qos=use_qos),
        enable_qos=use_qos,
    )
    client: VoDClient = deployment.attach_client(2)
    client.request_movie("feature")

    def crash_serving() -> None:
        for server in deployment.live_servers():
            if server.process == client.serving_server:
                server.crash()
                return

    sim.call_at(crash_at, crash_serving)
    sim.run_until(duration_s + 10.0)
    client.decoder.end_stall(sim.now)
    reserved = 0.0
    if deployment.qos is not None:
        reserved = sum(
            r.total_bps for r in deployment.qos.reservations.values()
        )
    return QosTrial(
        qos=use_qos,
        skipped=client.skipped_total,
        late=client.late_total,
        overflow=client.stats.overflow_discards,
        displayed=client.displayed_total,
        stall_s=client.decoder.stats.stall_time_s,
        reserved_bps=reserved,
    )


def qos_comparison_table(best_effort: QosTrial, reserved: QosTrial) -> Table:
    table = Table(
        "E-qos — WAN playback, best-effort UDP vs CBR+VBR reservation "
        "(the paper's Section 8 plan)",
        ["quantity", "best effort", "with reservation"],
    )
    table.add_row("skipped frames", best_effort.skipped, reserved.skipped)
    table.add_row(
        "skips from network loss",
        best_effort.skipped - best_effort.overflow,
        reserved.skipped - reserved.overflow,
    )
    table.add_row("late frames", best_effort.late, reserved.late)
    table.add_row("visible stall (s)",
                  f"{best_effort.stall_s:.2f}", f"{reserved.stall_s:.2f}")
    table.add_row("frames displayed", best_effort.displayed, reserved.displayed)
    return table


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`)."""
    from repro.experiments.api import ExperimentResult

    kwargs = {}
    if spec.seed is not None:
        kwargs["seed"] = spec.seed
    best_effort = run_wan_trial(False, **kwargs)
    reserved = run_wan_trial(True, **kwargs)
    return ExperimentResult(
        spec=spec,
        blocks=[qos_comparison_table(best_effort, reserved).render()],
        data=(best_effort, reserved),
    )
