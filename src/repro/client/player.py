"""The VoD client: session management, playback, flow control, VCR.

The client is deliberately thin (the paper's was ~400 lines of C): it
connects through the abstract server group without knowing any server
identity, buffers and re-orders frames, streams them into the hardware
decoder, and emits flow-control requests per Figure 2.  Server migration
is invisible here by construction — the client just keeps reading its
session group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.client.buffers import (
    DEFAULT_SW_CAPACITY_FRAMES,
    InsertOutcome,
    SoftwareBuffer,
)
from repro.client.flow_control import FlowControlConfig, FlowControlPolicy
from repro.errors import SessionError
from repro.gcs.domain import GcsDomain
from repro.gcs.endpoint import GcsEndpoint, GroupListener
from repro.gcs.view import ProcessId, View
from repro.media.decoder import DEFAULT_HW_CAPACITY_BYTES, HardwareDecoder
from repro.net.address import VIDEO_PORT
from repro.net.packet import Datagram
from repro.net.udp import UdpSocket
from repro.service.protocol import (
    SERVER_GROUP,
    ConnectRequest,
    EndOfStream,
    FlowControlMsg,
    FlowKind,
    FrameBurst,
    FramePacket,
    ListMoviesReply,
    ListMoviesRequest,
    QualityNotice,
    VcrCommand,
    VcrOp,
    session_group,
)
from repro.sim.process import Timer
from repro.telemetry.series import Probe, TimeSeries


@dataclass(frozen=True)
class ClientConfig:
    """Client tunables, defaulted to the paper's prototype values."""

    sw_capacity_frames: int = DEFAULT_SW_CAPACITY_FRAMES
    hw_capacity_bytes: int = DEFAULT_HW_CAPACITY_BYTES
    fps: int = 30
    mean_frame_bytes: int = 5833  # 1.4 Mbps / 30 fps
    flow: FlowControlConfig = field(default_factory=FlowControlConfig)
    connect_retry_s: float = 1.0
    emergency_repeat_s: float = 0.5
    # After an emergency request the refill is expected to arrive over
    # several seconds (the decaying quota); while the software buffer is
    # visibly recovering the client does not re-request, bounding the
    # refill overshoot (and hence overflow discards) per event.
    emergency_refill_window_s: float = 4.0
    # How long the pump waits at a missing frame for a re-ordered late
    # arrival before giving the frame up (network losses are never
    # recovered — Section 2 — so waiting longer only drains the
    # decoder).  Sized to cover WAN route-flap detours (~120 ms).
    reorder_patience_s: float = 0.25
    # Silence threshold after which the client re-sends its connect
    # request through the server group (last-resort self-repair).
    reconnect_after_s: float = 6.0
    probe_period_s: float = 0.25

    # Session-group multiplexing: when true the client joins no
    # per-client session group at all.  It learns (and tracks) its
    # serving server from the ``server`` field of arriving frames and
    # sends flow control / VCR commands point-to-point to it.  One
    # group per *movie* (the servers') replaces N groups per client —
    # the control-plane cost of a viewer drops to zero GCS state.
    session_mux: bool = False
    # Frames to accumulate before starting playback.  While prebuffering
    # the flow-control policy stays silent (the rising buffer is the
    # point, not a congestion signal); playback and watermark steering
    # begin once the buffer reaches this level (or EOS arrives first).
    prebuffer_frames: int = 0

    # Decode capability: None models a hardware MPEG card (decodes at
    # stream rate); a number models a software decoder that can only
    # decode this many frames per second (Section 4.3: "if they do not
    # have hardware video decoders").  Such a client automatically
    # requests reduced-quality video at its decode rate, and any excess
    # frames that still arrive are dropped at the decode stage.
    max_decode_fps: Optional[int] = None

    def hw_capacity_frames(self) -> int:
        """Hardware capacity expressed in (mean-size) frames."""
        return int(self.hw_capacity_bytes / self.mean_frame_bytes)

    def combined_capacity_frames(self) -> int:
        return self.sw_capacity_frames + self.hw_capacity_frames()

    @classmethod
    def software_decoder(cls, max_decode_fps: int = 12, **overrides):
        """Preset for a client decoding in software (no MPEG card).

        The 'hardware' buffer shrinks to a small decode pipeline and the
        decode rate is capped; the client asks the server for
        reduced-quality video to match."""
        defaults = dict(
            hw_capacity_bytes=64 * 1024,
            sw_capacity_frames=64,
            max_decode_fps=max_decode_fps,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class ClientStats:
    """Counters and time series behind Figures 4 and 5."""

    received: int = 0
    received_bytes: int = 0
    late_frames: int = 0
    duplicates: int = 0
    overflow_discards: int = 0
    overflow_discarded_intra: int = 0
    stale_epoch: int = 0
    flow_messages: int = 0
    emergencies_sent: int = 0
    reconnects: int = 0
    decode_overruns: int = 0
    migrations: List[Tuple[float, Optional[ProcessId], Optional[ProcessId]]] = field(
        default_factory=list
    )
    # Time series (sampled by the probe)
    sw_occupancy: Optional[TimeSeries] = None
    hw_occupancy_bytes: Optional[TimeSeries] = None
    combined_occupancy: Optional[TimeSeries] = None
    skipped_cum: Optional[TimeSeries] = None
    late_cum: Optional[TimeSeries] = None
    overflow_cum: Optional[TimeSeries] = None
    received_bytes_cum: Optional[TimeSeries] = None
    displayed_cum: Optional[TimeSeries] = None


class VoDClient:
    """A client of the fault-tolerant VoD service."""

    def __init__(
        self,
        domain: GcsDomain,
        node_id: int,
        name: str,
        config: Optional[ClientConfig] = None,
        endpoint: Optional[GcsEndpoint] = None,
        video_port: Optional[int] = VIDEO_PORT,
    ) -> None:
        self.domain = domain
        self.sim = domain.sim
        self.name = name
        self.config = config or ClientConfig()
        self._owns_endpoint = endpoint is None
        self.endpoint = endpoint or domain.create_endpoint(node_id)
        self.process = self.endpoint.process_id(name)
        self.node_id = self.endpoint.daemon_id

        # ``video_port=None`` binds an ephemeral port, letting many
        # clients share one node (the server learns the port from the
        # connect request, so any port works).
        self.video_socket = UdpSocket(
            self.domain.network.node(self.node_id),
            video_port,
            on_receive=self._on_video_datagram,
        )
        self.software_buffer = SoftwareBuffer(self.config.sw_capacity_frames)
        self.decoder = HardwareDecoder(self.config.hw_capacity_bytes)
        self.flow = FlowControlPolicy(
            self.config.flow,
            self.config.combined_capacity_frames(),
            sw_capacity_frames=self.config.sw_capacity_frames,
        )
        self.stats = ClientStats()

        self.movie_title: Optional[str] = None
        self.session_name: Optional[str] = None
        self.session_handle = None
        self.serving_server: Optional[ProcessId] = None
        self.epoch = 0
        self.paused = False
        self.playback_started = False
        self.finished = False
        self.eos_received = False
        self.quality_fps: Optional[int] = None
        self.playback_speed = 1.0

        self._decoder_timer: Optional[Timer] = None
        self._connect_timer: Optional[Timer] = None
        self._watchdog = Timer(
            self.sim, 0.25, self._watchdog_tick, start_delay=0.25
        )
        self._last_emergency_at = float("-inf")
        self._occ_at_last_emergency = 0
        self._last_frame_at = 0.0
        # Frame indices the client itself discarded on overflow: the
        # pump must not wait for them (they will never arrive again).
        self._discarded_indices = set()
        # Re-ordering window state: the gap index the pump is holding
        # for, and since when.
        self._gap_waiting_for = None
        self._gap_since = 0.0
        # Display playhead: the movie position (frame index) currently
        # on screen.  Advances one index per frame period while content
        # is available; the head frame displays when it is due.
        self._playhead = 0
        self._playhead_frac = 0.0
        self._resync_playhead = True
        self._decode_credit = 0.0
        self._probe = Probe(self.sim, self.config.probe_period_s, owner=name)
        self._init_series()
        # Telemetry edge-detection state (no effect on behaviour).
        self._session_span = None
        self._wm_band: Optional[str] = None
        self._was_stalled = False
        self._skips_seen = 0
        # After a mid-playback migration the next frame that arrives is
        # the observable "stream resumed" moment; carry the migration's
        # cause over to it.
        self._await_resume = False
        self._resume_cause: Optional[str] = None
        self.endpoint.register_p2p_handler(name, self._on_p2p)
        self._movie_list_callback: Optional[Callable[[Tuple[str, ...]], None]] = None

    # ==================================================================
    # Public API
    # ==================================================================
    def request_movie(self, title: str, quality_fps: Optional[int] = None) -> None:
        """Connect to the service and start watching ``title``."""
        if self.movie_title is not None:
            raise SessionError(f"client {self.name} is already watching a movie")
        self.movie_title = title
        if quality_fps is None and self.config.max_decode_fps is not None:
            # A software decoder cannot keep up with the full stream:
            # ask for reduced quality matching its capability (§4.3).
            # The server transmits every I frame *in addition to* the
            # requested rate, so leave ~20% headroom for them.
            quality_fps = max(1, int(self.config.max_decode_fps * 0.8))
        self.quality_fps = quality_fps
        self.session_name = session_group(self.name)
        if not self.config.session_mux:
            listener = GroupListener(
                on_view=self._on_session_view, on_message=lambda s, p: None
            )
            self.session_handle = self.endpoint.join(
                self.session_name, self.name, listener
            )
        tel = self.sim.telemetry
        if tel.active:
            self._session_span = tel.span(
                "client.session", key=self.name, movie=title
            )
        self._send_connect()
        self._connect_timer = Timer(
            self.sim, self.config.connect_retry_s, self._connect_retry
        )

    def adopt_session(
        self,
        title: str,
        serving_server: ProcessId,
        offset: int,
        epoch: int = 0,
        buffered: Sequence[Any] = (),
    ) -> None:
        """Resume an in-flight session without a connect handshake.

        Used when a flyweight row is promoted to a full client: the
        serving server has already converted the row into a real
        per-client session streaming toward this client's video
        endpoint, so the client starts mid-movie at ``offset`` with the
        frames the row notionally buffered (``buffered``, in ascending
        index order, ending just below ``offset``) pre-loaded.  Only
        meaningful under ``session_mux`` — there is no session group to
        join, and the serving server is handed over directly instead of
        being learnt from the first arriving frame."""
        if self.movie_title is not None:
            raise SessionError(f"client {self.name} is already watching a movie")
        if not self.config.session_mux:
            raise SessionError("adopt_session requires a session_mux client")
        self.movie_title = title
        self.session_name = session_group(self.name)
        self.epoch = epoch
        tel = self.sim.telemetry
        if tel.active:
            self._session_span = tel.span(
                "client.session", key=self.name, movie=title
            )
        self._note_server(serving_server)
        first = buffered[0].index if buffered else offset
        self.decoder.reposition(first)
        for frame in buffered:
            self.software_buffer.insert(frame)
        self._resync_playhead = True
        self._pump()
        self._last_frame_at = self.sim.now
        self._start_playback()

    def list_movies(self, callback: Callable[[Tuple[str, ...]], None]) -> None:
        """Ask the service for its catalog; ``callback`` gets the titles."""
        self._movie_list_callback = callback
        self.endpoint.send_to_group(
            SERVER_GROUP,
            ListMoviesRequest(self.process),
            payload_bytes=16,
            sender_name=self.name,
        )

    # ------------------------------------------------------------------
    # VCR controls (ATM Forum VoD-style)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        self._require_session()
        if self.paused:
            return
        self.paused = True
        self.decoder.end_stall(self.sim.now)
        self._send_vcr(VcrCommand(VcrOp.PAUSE, epoch=self.epoch))

    def resume(self) -> None:
        self._require_session()
        if not self.paused:
            return
        self.paused = False
        self._send_vcr(VcrCommand(VcrOp.RESUME, epoch=self.epoch))

    def seek(self, position_s: float) -> None:
        """Random access within the movie."""
        self._require_session()
        self.epoch += 1
        target_index = max(1, int(position_s * self.config.fps) + 1)
        self.software_buffer.clear()
        self._discarded_indices.clear()
        self.decoder.flush()
        self.decoder.reposition(target_index)
        self._playhead = target_index - 1
        self._resync_playhead = True
        self.flow.reset_cadence()
        self.eos_received = False
        self._send_vcr(
            VcrCommand(VcrOp.SEEK, position_s=position_s, epoch=self.epoch)
        )

    def set_quality(self, quality_fps: Optional[int]) -> None:
        """Request reduced-rate video (all I frames are always kept)."""
        self._require_session()
        self.quality_fps = quality_fps
        self._send_vcr(
            VcrCommand(VcrOp.QUALITY, quality_fps=quality_fps, epoch=self.epoch)
        )

    def set_speed(self, speed: float) -> None:
        """VCR speed control: fast-forward / slow motion.

        The server covers movie positions at ``speed`` times the normal
        pace, thinning transmitted frames (always keeping I frames) so
        the wire rate stays within the stream budget — the classic VCR
        cue/review experience."""
        self._require_session()
        self.playback_speed = speed
        self._send_vcr(VcrCommand(VcrOp.SPEED, speed=speed, epoch=self.epoch))

    def stop(self) -> None:
        """Tear the client down (leave groups, stop timers)."""
        self._end_session_span()
        if self.session_handle is not None:
            self.session_handle.leave()
            self.session_handle = None
        for timer in (self._decoder_timer, self._connect_timer, self._watchdog):
            if timer is not None:
                timer.cancel()
        self._probe.stop()
        self.decoder.end_stall(self.sim.now)
        if not self.video_socket.closed:
            self.video_socket.close()
        if self._owns_endpoint and not self.endpoint.closed:
            self.endpoint.shutdown()

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def combined_occupancy(self) -> int:
        return self.software_buffer.occupancy + self.decoder.occupancy_frames

    @property
    def skipped_total(self) -> int:
        """Frames never displayed (the Figure 4a/5a 'skipped' metric)."""
        return self.decoder.stats.skipped_gaps

    @property
    def late_total(self) -> int:
        return self.stats.late_frames

    @property
    def displayed_total(self) -> int:
        return self.decoder.stats.displayed

    # ==================================================================
    # Connection establishment
    # ==================================================================
    def _send_connect(self) -> None:
        resume = 1
        if self.playback_started:
            resume = max(1, self.decoder.stats.last_displayed_index + 1)
        request = ConnectRequest(
            client=self.process,
            movie=self.movie_title,
            video_endpoint=self.video_socket.endpoint,
            session=self.session_name,
            quality_fps=self.quality_fps,
            resume_offset=resume,
            resume_epoch=self.epoch,
        )
        self.endpoint.send_to_group(
            SERVER_GROUP, request, payload_bytes=request.wire_bytes(),
            sender_name=self.name,
        )

    def _connect_retry(self) -> None:
        if self.serving_server is not None or self.finished:
            if self._connect_timer is not None:
                self._connect_timer.cancel()
                self._connect_timer = None
            return
        self._send_connect()

    def _on_session_view(self, view: View) -> None:
        servers = [member for member in view.members if member != self.process]
        self._note_server(min(servers) if servers else None)

    def _note_server(self, new_server: Optional[ProcessId]) -> None:
        """Record a serving-server transition (from the session-group
        view, or — under ``session_mux`` — from the ``server`` field of
        an arriving frame)."""
        if new_server != self.serving_server:
            tel = self.sim.telemetry
            if tel.active:
                # The cause was attributed to this client by the crashed
                # / rebalancing server; the ambient cause covers the case
                # where this view install runs synchronously under it.
                cause = tel.cause_for(f"client:{self.process}")
                fields = dict(
                    client=self.name,
                    from_server=str(self.serving_server),
                    to_server=str(new_server),
                )
                if cause is not None:
                    fields["cause"] = cause
                tel.emit("client.migrate", **fields)
                tel.count("client.migrations")
                if self.serving_server is not None and new_server is not None:
                    self._await_resume = True
                    self._resume_cause = cause
            self.stats.migrations.append(
                (self.sim.now, self.serving_server, new_server)
            )
            self.serving_server = new_server
            self.flow.reset_cadence()

    # ==================================================================
    # Video reception
    # ==================================================================
    def _on_video_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if isinstance(payload, EndOfStream):
            if payload.epoch == self.epoch:
                self.eos_received = True
                if not self.playback_started and self.combined_occupancy:
                    # A movie shorter than the prebuffer target: play
                    # out whatever arrived.
                    self._start_playback()
            return
        if isinstance(payload, FrameBurst):
            # Coalesced window (wire fallback): process members exactly
            # as if they had arrived one by one — flow-control watermark
            # accounting is per frame either way.
            for packet in payload.packets:
                self._on_frame(packet)
            return
        if not isinstance(payload, FramePacket):
            return
        self._on_frame(payload)

    def _on_frame(self, packet: FramePacket) -> None:
        if self.finished:
            return
        if packet.epoch != self.epoch:
            self.stats.stale_epoch += 1
            return
        if self.config.session_mux and packet.server != self.serving_server:
            # No session group to announce migrations: the stream itself
            # is the signal.  A frame from a new server IS the takeover.
            self._note_server(packet.server)
        frame = packet.frame
        self.stats.received += 1
        self.stats.received_bytes += frame.size_bytes
        self._last_frame_at = self.sim.now

        if frame.index <= self.decoder.highest_pushed_index:
            # Too late to re-order: successors already went to hardware.
            # Duplicates from migration overlap land here too.
            self.stats.late_frames += 1
        else:
            eviction = self.software_buffer.insert(frame)
            if eviction.outcome == InsertOutcome.DUPLICATE:
                self.stats.duplicates += 1
                self.stats.late_frames += 1
            elif eviction.outcome == InsertOutcome.STORED_EVICTED:
                self.stats.overflow_discards += 1
                self._discarded_indices.add(eviction.victim.index)
                if eviction.victim.is_intra:
                    self.stats.overflow_discarded_intra += 1

        self._pump()
        if not self.playback_started and self._prebuffer_ready():
            self._start_playback()
        tel = self.sim.telemetry
        if tel.active:
            if self._await_resume:
                # First frame since the migration: the stream resumed.
                fields = dict(client=self.name, frame=frame.index)
                if self._resume_cause is not None:
                    fields["cause"] = self._resume_cause
                tel.emit("client.resume", **fields)
                tel.count("client.resumes")
                self._await_resume = False
                self._resume_cause = None
            self._note_telemetry_edges()
        self._flow_control_step()

    def _flow_control_step(self) -> None:
        if not self.playback_started and self.config.prebuffer_frames > 0:
            return  # the prebuffer fills at stream rate by design
        message = self.flow.on_frame_received(
            self.combined_occupancy, self.software_buffer.occupancy
        )
        if message is None:
            return
        self._send_flow(message)

    def _send_flow(self, message: FlowControlMsg) -> None:
        if self.config.session_mux:
            if self.serving_server is None:
                return
        elif self.session_handle is None or not self.session_handle.is_member:
            return
        if message.kind == FlowKind.EMERGENCY and not self._emergency_allowed():
            return
        self.stats.flow_messages += 1
        if message.kind == FlowKind.EMERGENCY:
            self.stats.emergencies_sent += 1
            self._last_emergency_at = self.sim.now
            self._occ_at_last_emergency = self.software_buffer.occupancy
        tel = self.sim.telemetry
        if tel.active:
            tel.emit(
                "client.flow",
                client=self.name,
                message=message.kind.value,
                level=None if message.level is None else int(message.level),
                occupancy=message.occupancy,
            )
            tel.count("client.flow_messages")
        if self.config.session_mux:
            self.endpoint.send_p2p(
                self.serving_server, message, message.wire_bytes(),
                sender_name=self.name,
            )
        else:
            self.session_handle.multicast(message, message.wire_bytes())

    def _emergency_allowed(self) -> bool:
        """Pace emergency requests: re-request quickly only when the
        refill shows no progress (the server may be gone); while frames
        are visibly flowing back in, wait out the refill window."""
        elapsed = self.sim.now - self._last_emergency_at
        if elapsed < self.config.emergency_repeat_s:
            return False
        if elapsed >= self.config.emergency_refill_window_s:
            return True
        return self.software_buffer.occupancy <= self._occ_at_last_emergency

    # ==================================================================
    # Playback
    # ==================================================================
    def _prebuffer_ready(self) -> bool:
        need = self.config.prebuffer_frames
        return need <= 0 or self.combined_occupancy >= need

    def _start_playback(self) -> None:
        self.playback_started = True
        tel = self.sim.telemetry
        if tel.active:
            tel.emit("client.playback.start", client=self.name)
        self._decoder_timer = Timer(
            self.sim, 1.0 / self.config.fps, self._decoder_tick
        )

    def _decoder_tick(self) -> None:
        if self.paused or self.finished:
            return
        if self.eos_received and self.combined_occupancy == 0:
            self._finish()
            return
        if self.config.max_decode_fps is not None:
            self._decode_credit = min(
                2.0,
                self._decode_credit + self.config.max_decode_fps / self.config.fps,
            )
        head = self.decoder.peek_head_index()
        if head is None:
            # Dry decoder: the display freezes (a stall) and the
            # playhead does not advance.
            self.decoder.consume_one(self.sim.now)
            self._resync_playhead = True
        else:
            if self._resync_playhead:
                # Recovering from a dry spell (or the first frame):
                # resume the playhead at the next available frame.
                self._playhead = head - 1
                self._resync_playhead = False
                self._playhead_frac = 0.0
            # The playhead advances at the VCR speed (fractional speeds
            # accumulate across ticks: 0.5x advances every other tick).
            self._playhead_frac += self.playback_speed
            step = int(self._playhead_frac)
            self._playhead_frac -= step
            self._playhead += step
            if head <= self._playhead and self._decode_budget_available():
                self.decoder.consume_one(self.sim.now)
                self._playhead = self.decoder.stats.last_displayed_index
            # else: the head frame is not due yet (reduced-quality
            # stream): the previous image stays on screen — by design,
            # not a stall.
        self._pump()
        if self.sim.telemetry.active:
            self._note_telemetry_edges()

    def _pump(self) -> None:
        """Stream frames from the software buffer into the decoder.

        Frames move in display order.  A missing frame (sequence gap)
        holds the pump back — that is the re-ordering window — until the
        decoder is about to run dry, at which point the gap is skipped
        for good and any late arrival of it will be discarded.
        """
        while True:
            frame = self.software_buffer.peek_next()
            if frame is None or not self.decoder.has_space_for(frame):
                return
            next_needed = self.decoder.highest_pushed_index + 1
            contiguous = frame.index == next_needed or all(
                index in self._discarded_indices
                for index in range(next_needed, frame.index)
            )
            if not contiguous and not self._gap_expired(next_needed):
                return
            self._gap_waiting_for = None
            self.decoder.push(self.software_buffer.pop_next())
            if self._discarded_indices:
                self._discarded_indices = {
                    index
                    for index in self._discarded_indices
                    if index > self.decoder.highest_pushed_index
                }

    def _gap_expired(self, next_needed: int) -> bool:
        """True once the re-ordering window for ``next_needed`` is over.

        The window also closes early when the software buffer is full:
        holding on would only force overflow discards."""
        if self.quality_fps is not None:
            # Reduced-quality streams have intentional gaps at every
            # server-skipped frame: nothing to wait for.
            return True
        if self._gap_waiting_for != next_needed:
            self._gap_waiting_for = next_needed
            self._gap_since = self.sim.now
            return self.software_buffer.is_full
        if self.software_buffer.is_full:
            return True
        return self.sim.now - self._gap_since >= self.config.reorder_patience_s

    def _decode_budget_available(self) -> bool:
        """Token bucket modelling a software decoder's CPU limit.

        Credit accrues per decoder tick (see :meth:`_decoder_tick`), so
        the sustained decode rate is capped at ``max_decode_fps``."""
        if self.config.max_decode_fps is None:
            return True
        if self._decode_credit >= 1.0:
            self._decode_credit -= 1.0
            return True
        self.stats.decode_overruns += 1
        return False

    def _finish(self) -> None:
        self.finished = True
        self.decoder.end_stall(self.sim.now)
        if self._decoder_timer is not None:
            self._decoder_timer.cancel()
        self._end_session_span()

    def _end_session_span(self) -> None:
        span = self._session_span
        if span is not None and not span.ended:
            span.end(
                displayed=self.decoder.stats.displayed,
                skipped=self.decoder.stats.skipped_gaps,
                late=self.stats.late_frames,
            )

    def _note_telemetry_edges(self) -> None:
        """Emit watermark-band / stall / skip transition events.

        Pure edge detection over state the client already maintains —
        called only while the bus is active, never mutating anything the
        protocol reads.
        """
        tel = self.sim.telemetry
        sw = self.software_buffer.occupancy
        combined = self.combined_occupancy
        if sw <= self.flow.critical_severe:
            band = "critical-severe"
        elif sw <= self.flow.critical_mild:
            band = "critical-mild"
        elif combined < self.flow.low_water:
            band = "below-low"
        elif combined < self.flow.high_water:
            band = "between"
        else:
            band = "above-high"
        if band != self._wm_band:
            tel.emit(
                "client.watermark",
                client=self.name,
                band=band,
                sw_frames=sw,
                combined_frames=combined,
            )
            self._wm_band = band
        stalled = self.decoder.is_stalled
        if stalled != self._was_stalled:
            tel.emit(
                "client.stall.begin" if stalled else "client.stall.end",
                client=self.name,
            )
            if stalled:
                tel.count("client.stalls")
            self._was_stalled = stalled
        skips = self.decoder.stats.skipped_gaps
        if skips > self._skips_seen:
            tel.emit(
                "client.skip",
                client=self.name,
                count=skips - self._skips_seen,
                total=skips,
            )
            self._skips_seen = skips
        elif skips < self._skips_seen:
            self._skips_seen = skips

    # ==================================================================
    # Watchdog: emergency fallback when frames stop arriving
    # ==================================================================
    def _watchdog_tick(self) -> None:
        if not self.playback_started or self.paused or self.finished:
            return
        if self.eos_received:
            return
        # Reconnect fallback: the service normally repairs lost sessions
        # on its own (orphan records are re-admitted), but if nothing
        # has arrived for a long stretch the client re-announces itself
        # through the abstract server group, exactly like at startup.
        if (
            not self.endpoint.closed
            and self.sim.now - self._last_frame_at
            > self.config.reconnect_after_s
        ):
            self._last_frame_at = self.sim.now  # pace re-announcements
            self.stats.reconnects += 1
            self._send_connect()
        sw_occupancy = self.software_buffer.occupancy
        if sw_occupancy >= self.flow.critical_mild:
            return
        if self.sim.now - self._last_emergency_at < self.config.emergency_repeat_s:
            return
        message = self.flow.decide(self.combined_occupancy, sw_occupancy)
        if message is not None and message.kind == FlowKind.EMERGENCY:
            self._send_flow(message)

    # ==================================================================
    # Misc plumbing
    # ==================================================================
    def _send_vcr(self, command: VcrCommand) -> None:
        if self.config.session_mux:
            if self.serving_server is not None:
                self.endpoint.send_p2p(
                    self.serving_server, command, command.wire_bytes(),
                    sender_name=self.name,
                )
            return
        self.session_handle.multicast(command, command.wire_bytes())

    def _on_p2p(self, sender: ProcessId, payload: Any) -> None:
        if isinstance(payload, ListMoviesReply):
            callback = self._movie_list_callback
            if callback is not None:
                self._movie_list_callback = None
                callback(payload.titles)
        elif isinstance(payload, QualityNotice):
            # Admission degraded this session: adopt the granted quality
            # so the pump treats server-skipped frames as intentional
            # gaps and reconnects re-request the same stream.
            if payload.movie == self.movie_title and not self.finished:
                self.quality_fps = payload.quality_fps

    def _require_session(self) -> None:
        if self.config.session_mux:
            if self.movie_title is None:
                raise SessionError(
                    f"client {self.name} has no session; "
                    "call request_movie first"
                )
            return
        if self.session_handle is None:
            raise SessionError(
                f"client {self.name} has no session; call request_movie first"
            )

    def _init_series(self) -> None:
        stats = self.stats
        stats.sw_occupancy = self._probe.watch(
            "software_buffer_frames", lambda: self.software_buffer.occupancy
        )
        stats.hw_occupancy_bytes = self._probe.watch(
            "hardware_buffer_bytes", lambda: self.decoder.occupancy_bytes
        )
        stats.combined_occupancy = self._probe.watch(
            "combined_frames", lambda: self.combined_occupancy
        )
        stats.skipped_cum = self._probe.watch(
            "skipped_cumulative", lambda: self.decoder.stats.skipped_gaps
        )
        stats.late_cum = self._probe.watch(
            "late_cumulative", lambda: self.stats.late_frames
        )
        stats.overflow_cum = self._probe.watch(
            "overflow_cumulative", lambda: self.stats.overflow_discards
        )
        stats.received_bytes_cum = self._probe.watch(
            "received_bytes_cumulative", lambda: self.stats.received_bytes
        )
        stats.displayed_cum = self._probe.watch(
            "displayed_cumulative", lambda: self.displayed_total
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VoDClient {self.name} movie={self.movie_title!r} "
            f"server={self.serving_server} occ={self.combined_occupancy}>"
        )
