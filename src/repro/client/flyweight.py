"""Flyweight viewers: steady-state clients as columnar rows.

A steady-state viewer on a clean link exercises none of the client
machinery that makes :class:`~repro.client.player.VoDClient` expensive
at scale — no per-client timers, sockets, buffers or GCS state.  Its
whole observable footprint is (a) the connect handshake and (b) a
playhead the serving server advances deterministically.  The
:class:`FlyweightPool` therefore keeps such viewers as *rows* in
columnar arrays (name, node, video endpoint, epoch, buffer level) and
lets each server's :class:`~repro.server.streamer.CohortSession`
advance the playheads arithmetically per batch window.

Rows still speak the real protocol where it matters: every row sends a
genuine :class:`~repro.service.protocol.ConnectRequest` through the
abstract server group (with the same 1 s application-level retry the
full client uses), so servers admit flyweight and full-object viewers
through the identical deferred-admission path and arrive at the
identical placement.  To keep the GCS domain small at 100k viewers the
pool concentrates those sends through a bounded number of edge daemons
(``senders_max``) instead of one daemon per edge node — an open-group
send is broadcast to every daemon in the domain, so daemon count, not
viewer count, is what the connect path scales with.

Interaction is the escape hatch: :meth:`FlyweightPool.promote` turns a
row into a full :class:`VoDClient` (real socket on the row's node and
port, software buffer seeded with the frames the row notionally holds)
served by a real per-client session, and :meth:`FlyweightPool.demote`
folds the client back into a row, capturing its offset, epoch, pause
state and buffer level.  Steady-state viewing costs O(1) per batch
window; VCR ops, emergencies and debugging cost the full price only
while they last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.client.player import ClientConfig, VoDClient
from repro.errors import ServiceError, SessionError
from repro.gcs.view import ProcessId
from repro.net.address import Endpoint
from repro.service.protocol import SERVER_GROUP, ConnectRequest, session_group

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.deployment import Deployment

#: First fabricated video port per node — clear of the well-known ports
#: (7000/8000 range) and of the ephemeral allocator (49152+), so a
#: promoted row can bind its fabricated port as a real socket.
ROW_PORT_BASE = 30000


@dataclass(frozen=True)
class FlyweightConfig:
    """Pool tunables (mirroring the full client's connect behaviour)."""

    fps: int = 30
    connect_retry_s: float = 1.0  # = ClientConfig.connect_retry_s
    # Frames a steady-state row notionally buffers (seeded into the
    # software buffer at promotion).  Keep it at or below the client's
    # software-buffer capacity or promotion truncates it.
    buffer_target_frames: int = 300
    # Edge daemons used as connect concentrators.  Open-group sends
    # broadcast to every daemon in the domain, so this bounds the
    # domain size (and the per-connect fan-out) independently of N.
    senders_max: int = 4


class FlyweightPool:
    """Columnar registry of steady-state viewers for one movie."""

    def __init__(
        self,
        deployment: "Deployment",
        movie: str,
        config: Optional[FlyweightConfig] = None,
        client_config: Optional[ClientConfig] = None,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.movie_title = movie
        self.config = config or FlyweightConfig()
        # Configuration a promoted row's full client is built with.
        self.client_config = client_config or ClientConfig(session_mux=True)
        if not self.client_config.session_mux:
            raise ServiceError(
                "flyweight pools require session_mux clients (a promoted "
                "row cannot join a session group the servers ignore)"
            )
        # Columnar row state.  Identity columns are immutable after
        # add_viewer; playheads live in the serving cohorts and only
        # land back here at finish/demote time.
        self.names: List[str] = []
        self.procs: List[ProcessId] = []
        self.video_endpoints: List[Endpoint] = []
        self.epochs: List[int] = []
        self.buffer_frames: List[int] = []
        self.last_offsets: List[int] = []
        self.started: List[bool] = []
        self.finished: List[bool] = []
        self.serving: List[Optional[ProcessId]] = []
        self._senders: List[int] = []  # row -> sender endpoint node
        self._index: Dict[ProcessId, int] = {}
        self._by_name: Dict[str, int] = {}
        self._promoted: Dict[int, VoDClient] = {}
        self._sender_endpoints: Dict[int, object] = {}  # node -> GcsEndpoint
        self._ports_on_node: Dict[int, int] = {}
        self.connects_sent = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_viewer(self, host_index: int, name: Optional[str] = None) -> int:
        """Register one viewer row on ``topology.hosts[host_index]``.

        Returns the row index.  No objects, sockets or timers are
        created: the row exists as one entry in each column."""
        index = len(self.names)
        if name is None:
            name = f"client{index}"
        if name in self._by_name:
            raise ServiceError(f"flyweight viewer {name!r} already exists")
        node_id = self.deployment.topology.host(host_index)
        port = self._ports_on_node.get(node_id, ROW_PORT_BASE)
        self._ports_on_node[node_id] = port + 1
        process = ProcessId(node_id, name)
        self.names.append(name)
        self.procs.append(process)
        self.video_endpoints.append(Endpoint(node_id, port))
        self.epochs.append(0)
        self.buffer_frames.append(0)
        self.last_offsets.append(1)
        self.started.append(False)
        self.finished.append(False)
        self.serving.append(None)
        self._senders.append(self._sender_node_for(index))
        self._index[process] = index
        self._by_name[name] = index
        return index

    def _sender_node_for(self, index: int) -> int:
        """Pick (and lazily start) the connect-concentrator daemon.

        While sender slots remain, each populated edge gets its own
        daemon — at small N the GCS domain is then identical to a
        full-object run (one shared endpoint per edge).  Past the cap,
        rows round-robin over the existing daemons: the domain stays
        ``senders_max`` wide no matter how many edges carry viewers."""
        candidate = self.procs[index].node
        if candidate in self._sender_endpoints:
            return candidate
        if len(self._sender_endpoints) < self.config.senders_max:
            self._sender_endpoints[candidate] = (
                self.deployment.domain.create_endpoint(candidate)
            )
            return candidate
        nodes = sorted(self._sender_endpoints)
        return nodes[index % len(nodes)]

    def connect_all(self, connect_window_s: float = 0.0) -> None:
        """Send every row's ConnectRequest, spread over the window
        (offset ``i * window / N`` — the scale rig's schedule)."""
        n = len(self.names)
        for index in range(n):
            offset = (index * connect_window_s) / max(1, n)
            self.sim.call_at(offset, self._send_connect, index)

    def _send_connect(self, index: int) -> None:
        """One connect attempt; self-rearms every ``connect_retry_s``
        until the row is served (the full client's retry loop)."""
        if self.started[index] or self.finished[index] or index in self._promoted:
            return
        endpoint = self._sender_endpoints[self._senders[index]]
        request = ConnectRequest(
            client=self.procs[index],
            movie=self.movie_title,
            video_endpoint=self.video_endpoints[index],
            session=session_group(self.names[index]),
            quality_fps=None,
            resume_offset=self.last_offsets[index],
            resume_epoch=self.epochs[index],
        )
        endpoint.send_to_group(
            SERVER_GROUP, request, payload_bytes=request.wire_bytes(),
            sender_name=self.names[index],
        )
        self.connects_sent += 1
        self.sim.call_after(
            self.config.connect_retry_s, self._send_connect, index
        )

    # ------------------------------------------------------------------
    # Cohort callbacks (server side)
    # ------------------------------------------------------------------
    def owns(self, client: ProcessId) -> bool:
        index = self._index.get(client)
        return index is not None and index not in self._promoted

    def row_of(self, client: ProcessId) -> int:
        return self._index[client]

    def client_of(self, index: int) -> ProcessId:
        return self.procs[index]

    def record_fields(self, client: ProcessId):
        index = self._index[client]
        return (
            session_group(self.names[index]),
            self.video_endpoints[index],
            None,
        )

    def epoch_of(self, client: ProcessId) -> int:
        return self.epochs[self._index[client]]

    def last_offset(self, client: ProcessId) -> int:
        return self.last_offsets[self._index[client]]

    def note_started(self, client: ProcessId, server: ProcessId) -> None:
        index = self._index[client]
        self.started[index] = True
        self.serving[index] = server
        target = self.config.buffer_target_frames
        if self.buffer_frames[index] < target:
            self.buffer_frames[index] = target

    def note_finished(self, client: ProcessId, offset: int) -> None:
        index = self._index[client]
        self.finished[index] = True
        self.serving[index] = None
        self.last_offsets[index] = offset

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def _cohorts(self):
        for server in self.deployment.servers.values():
            if not server.running:
                continue
            cohort = server._cohorts.get(self.movie_title)
            if cohort is not None:
                yield cohort

    def positions(self) -> Dict[str, int]:
        """Current playhead per viewer (live rows read their serving
        cohort; finished/unstarted rows their last known offset)."""
        out = {}
        for cohort in self._cohorts():
            for client in cohort.rows:
                out[client.name] = cohort.position_of(client)
        for index, client in self._promoted.items():
            out[self.names[index]] = client.decoder.stats.last_displayed_index + 1
        for name, index in self._by_name.items():
            if name not in out:
                out[name] = self.last_offsets[index]
        return out

    def frames_served(self) -> int:
        """Frames the service has (arithmetically) delivered to rows."""
        total = 0
        seen = set()
        for cohort in self._cohorts():
            for client in cohort.rows:
                total += cohort.position_of(client) - 1
                seen.add(client)
        for index in range(len(self.names)):
            if self.procs[index] not in seen and self.started[index]:
                total += self.last_offsets[index] - 1
        return total

    def serving_counts(self) -> Dict[str, int]:
        return {
            cohort.server.name: len(cohort.rows) for cohort in self._cohorts()
        }

    # ------------------------------------------------------------------
    # Promotion / demotion
    # ------------------------------------------------------------------
    def promote(self, name: str) -> VoDClient:
        """Inflate a row into a full client for interaction.

        The serving server converts the cohort row into a real
        per-client session in place (same offset, same epoch); the new
        client binds the row's advertised video endpoint and has its
        software buffer seeded with the frames the row notionally
        holds, so playback continues without a connect handshake."""
        index = self._by_name.get(name)
        if index is None:
            raise SessionError(f"no flyweight viewer named {name!r}")
        if index in self._promoted:
            raise SessionError(f"viewer {name!r} is already promoted")
        process = self.procs[index]
        server = self._server_of(process)
        if server is None:
            raise SessionError(f"viewer {name!r} is not currently served")
        node_id = process.node
        endpoint = self._sender_endpoints.get(node_id)
        if endpoint is None or endpoint.closed:
            endpoint = self.deployment.domain.create_endpoint(node_id)
            self._sender_endpoints[node_id] = endpoint
        client = VoDClient(
            self.deployment.domain,
            node_id,
            name,
            config=self.client_config,
            endpoint=endpoint,
            video_port=self.video_endpoints[index].port,
        )
        # Mark promoted before the server swaps the row for a session,
        # so owns() already answers False for the in-flight record.
        self._promoted[index] = client
        record = server.promote_flyweight(process)
        movie = self.deployment.catalog.movie(self.movie_title)
        buffered = []
        depth = min(
            self.buffer_frames[index],
            self.client_config.sw_capacity_frames,
            record.offset - 1,
        )
        for frame_index in range(record.offset - depth, record.offset):
            buffered.append(movie.frame(frame_index))
        client.adopt_session(
            self.movie_title,
            serving_server=record.server,
            offset=record.offset,
            epoch=record.epoch,
            buffered=buffered,
        )
        return client

    def demote(self, client: VoDClient) -> int:
        """Fold a promoted client back into its row.

        Captures offset, epoch, pause state and buffer level from the
        live session, tears the full client down, and re-seats the row
        in the serving server's cohort.  Returns the row index."""
        index = self._by_name.get(client.name)
        if index is None or self._promoted.get(index) is not client:
            raise SessionError(f"{client.name!r} is not a promoted viewer")
        process = self.procs[index]
        server = self._server_of(process)
        if server is None:
            raise SessionError(
                f"viewer {client.name!r} has no live server to return to"
            )
        self.buffer_frames[index] = min(
            client.combined_occupancy, self.config.buffer_target_frames
        )
        self.epochs[index] = client.epoch
        del self._promoted[index]
        record = server.demote_to_flyweight(process)
        self.epochs[index] = record.epoch
        self.last_offsets[index] = record.offset
        client.stop()
        return index

    def _server_of(self, process: ProcessId):
        """The live server whose session or cohort holds this viewer."""
        for server in self.deployment.live_servers():
            if process in server.sessions:
                return server
            cohort = server._cohorts.get(self.movie_title)
            if cohort is not None and process in cohort.rows:
                return server
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlyweightPool {self.movie_title!r} rows={len(self.names)} "
            f"promoted={len(self._promoted)}>"
        )
