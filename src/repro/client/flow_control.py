"""The client flow-control policy — the paper's Figure 2, verbatim.

The client never tries to deduce the server's transmission rate; it only
watches the occupancy of its own buffers (software + hardware, counted
in frames) and asks for one-frame-per-second adjustments:

====================  ==================  =========  ============
buffer occupancy       extra condition    frequency   request
====================  ==================  =========  ============
0 .. critical                             f_urgent    emergency
critical .. LWM-1                         f_urgent    increase
LWM .. HWM-1          occ < previous      f_normal    increase
LWM .. HWM-1          occ > previous      f_normal    decrease
LWM .. HWM-1          occ == previous     f_normal    (none)
HWM .. full                               f_urgent    decrease
====================  ==================  =========  ============

"Frequency" counts *received frames*: one message per 8 frames between
the water marks, one per 4 frames outside them ("the frequency is
doubled").  Section 4.1's refinement adds a second critical threshold:
below 15% occupancy the emergency is severe (base quantity 12), between
15% and 30% it is mild (base quantity 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError
from repro.service.protocol import EmergencyLevel, FlowControlMsg, FlowKind


@dataclass(frozen=True)
class FlowControlConfig:
    """Flow-control thresholds.

    The water marks are fractions of the *combined* buffer capacity
    (software + hardware): the paper derives the 1.7 s irregularity
    coverage from 73% of the total 2.4 s of buffering.  The critical
    thresholds are fractions of the *software* buffer: it is the shock
    absorber in front of the decoder, and the paper's emergencies fire
    exactly when it runs dry (crash: drops to 0 -> severe; load
    balance: drops to ~1/4 -> mild).
    """

    low_water_frac: float = 0.73
    high_water_frac: float = 0.88
    critical_mild_frac: float = 0.30
    critical_severe_frac: float = 0.15
    normal_every_frames: int = 8
    urgent_every_frames: int = 4

    def validate(self) -> None:
        if not 0 <= self.critical_severe_frac <= self.critical_mild_frac <= 1.0:
            raise ServiceError(
                "critical thresholds must satisfy 0 <= severe <= mild <= 1"
            )
        if not 0 < self.low_water_frac <= self.high_water_frac <= 1.0:
            raise ServiceError(
                "water marks must satisfy 0 < low <= high <= 1"
            )
        if self.normal_every_frames < 1 or self.urgent_every_frames < 1:
            raise ServiceError("flow-control frequencies must be >= 1 frame")


class FlowControlPolicy:
    """Stateful evaluator of the Figure 2 policy.

    Call :meth:`on_frame_received` once per received video frame with
    the current combined occupancy; it returns the
    :class:`FlowControlMsg` to send, or None when the cadence or the
    policy says to stay quiet.
    """

    def __init__(
        self,
        config: FlowControlConfig,
        capacity_frames: int,
        sw_capacity_frames: Optional[int] = None,
    ) -> None:
        config.validate()
        if capacity_frames < 4:
            raise ServiceError(
                f"combined capacity too small: {capacity_frames!r} frames"
            )
        if sw_capacity_frames is None:
            sw_capacity_frames = capacity_frames
        self.config = config
        self.capacity_frames = capacity_frames
        self.sw_capacity_frames = sw_capacity_frames
        self.low_water = int(round(config.low_water_frac * capacity_frames))
        self.high_water = int(round(config.high_water_frac * capacity_frames))
        # "falls below 30% / 15%": strict float thresholds, so a buffer
        # sitting exactly at 16% of capacity is a *mild* emergency.
        self.critical_mild = config.critical_mild_frac * sw_capacity_frames
        self.critical_severe = config.critical_severe_frac * sw_capacity_frames
        # Occupancy when the previous request was sent (the "previous
        # occupancy" column of Figure 2).
        self.previous_occupancy: Optional[int] = None
        self._frames_since_message = 0
        self.sent_total = 0

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def on_frame_received(
        self, occupancy: int, sw_occupancy: Optional[int] = None
    ) -> Optional[FlowControlMsg]:
        self._frames_since_message += 1
        if self._frames_since_message < self._current_period(occupancy, sw_occupancy):
            return None
        message = self.decide(occupancy, sw_occupancy)
        self._frames_since_message = 0
        if message is not None:
            self.previous_occupancy = occupancy
            self.sent_total += 1
        return message

    def decide(
        self, occupancy: int, sw_occupancy: Optional[int] = None
    ) -> Optional[FlowControlMsg]:
        """The Figure 2 decision for a given occupancy (stateless w.r.t.
        cadence; uses ``previous_occupancy`` for the mid-band rows).

        ``occupancy`` is the combined frame count; ``sw_occupancy`` is
        the software-buffer share, checked against the critical
        thresholds (defaults to the combined value for callers that do
        not split buffers).
        """
        if sw_occupancy is None:
            sw_occupancy = occupancy
        # The rows are exclusive along one occupancy axis in the paper;
        # with split buffers the overflow row must win over the
        # emergency row: a client whose *combined* buffers sit above the
        # high-water mark is over-supplied even while the hardware
        # buffer starves the software buffer of frames, and asking for
        # an emergency refill would only force overflow discards.
        if occupancy >= self.high_water:
            return FlowControlMsg(FlowKind.DECREASE, occupancy=occupancy)
        if sw_occupancy < self.critical_mild:
            level = (
                EmergencyLevel.SEVERE
                if sw_occupancy < self.critical_severe
                else EmergencyLevel.MILD
            )
            return FlowControlMsg(FlowKind.EMERGENCY, level, occupancy)
        if occupancy < self.low_water:
            return FlowControlMsg(FlowKind.INCREASE, occupancy=occupancy)
        # Between the water marks: steer by the occupancy trend.
        previous = self.previous_occupancy
        if previous is None or occupancy == previous:
            return None
        if occupancy < previous:
            return FlowControlMsg(FlowKind.INCREASE, occupancy=occupancy)
        return FlowControlMsg(FlowKind.DECREASE, occupancy=occupancy)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _current_period(
        self, occupancy: int, sw_occupancy: Optional[int] = None
    ) -> int:
        if sw_occupancy is None:
            sw_occupancy = occupancy
        # The critical band is keyed off the *software* buffer (the
        # emergency rows of Figure 2): a drained software buffer must
        # report at the urgent cadence even while the combined occupancy
        # still sits between the water marks.
        if sw_occupancy < self.critical_mild:
            return self.config.urgent_every_frames
        if self.low_water <= occupancy < self.high_water:
            return self.config.normal_every_frames
        return self.config.urgent_every_frames

    def in_normal_band(self, occupancy: int) -> bool:
        return self.low_water <= occupancy < self.high_water

    def reset_cadence(self) -> None:
        """Forget trend state (used after seeks/migrations)."""
        self.previous_occupancy = None
        self._frames_since_message = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowControlPolicy cap={self.capacity_frames} "
            f"lwm={self.low_water} hwm={self.high_water} "
            f"crit={self.critical_severe}/{self.critical_mild}>"
        )
