"""The VoD client.

Mirrors the paper's client (Section 3-4): a software reorder buffer in
front of a hardware decoder buffer, the water-mark flow-control policy
of Figure 2 with two-tier emergency requests, full VCR control, and the
statistics the evaluation section plots.
"""

from repro.client.buffers import InsertOutcome, SoftwareBuffer
from repro.client.flow_control import FlowControlConfig, FlowControlPolicy
from repro.client.player import ClientConfig, ClientStats, VoDClient

__all__ = [
    "ClientConfig",
    "ClientStats",
    "FlowControlConfig",
    "FlowControlPolicy",
    "InsertOutcome",
    "SoftwareBuffer",
    "VoDClient",
]
