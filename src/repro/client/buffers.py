"""The client's software frame buffer.

Received frames are first stored here, re-ordered into display order,
and then streamed into the hardware decoder.  On overflow the buffer
discards a frame to make room for the new arrival, preferring an
incremental (non-I) frame — the policy behind the paper's "none of the
skipped frames was an I frame" observation in Figure 4(a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import MediaError
from repro.media.frames import Frame

#: The paper's software allocation: 37 frames (~1.7 Mbit at the test
#: stream's mean frame size, ~1.2 s of video).
DEFAULT_SW_CAPACITY_FRAMES = 37


class InsertOutcome(enum.Enum):
    STORED = "stored"
    DUPLICATE = "duplicate"  # the index is already buffered
    STORED_EVICTED = "stored-evicted"  # stored, another frame discarded


@dataclass
class Eviction:
    """Result of an insert: outcome plus the discarded victim, if any."""

    outcome: InsertOutcome
    victim: Optional[Frame] = None


class SoftwareBuffer:
    """A bounded, index-ordered frame buffer with I-frame-sparing eviction."""

    def __init__(self, capacity_frames: int = DEFAULT_SW_CAPACITY_FRAMES) -> None:
        if capacity_frames < 1:
            raise MediaError(
                f"software buffer needs capacity >= 1, got {capacity_frames!r}"
            )
        self.capacity_frames = capacity_frames
        self._frames: Dict[int, Frame] = {}

    # ------------------------------------------------------------------
    # Insertion (network side)
    # ------------------------------------------------------------------
    def insert(self, frame: Frame) -> Eviction:
        """Store a frame, evicting per the overflow policy when full."""
        if frame.index in self._frames:
            return Eviction(InsertOutcome.DUPLICATE)
        if len(self._frames) < self.capacity_frames:
            self._frames[frame.index] = frame
            return Eviction(InsertOutcome.STORED)
        victim_index = self._pick_victim()
        victim = self._frames.pop(victim_index)
        self._frames[frame.index] = frame
        return Eviction(InsertOutcome.STORED_EVICTED, victim)

    def _pick_victim(self) -> int:
        """Highest-index incremental frame; highest-index frame if all I.

        Discarding from the far end of the buffer keeps the imminent
        display window intact, and sparing I frames keeps the image
        recoverable (incremental frames are undecodable without them
        anyway).
        """
        non_intra = [
            index for index, frame in self._frames.items() if not frame.is_intra
        ]
        if non_intra:
            return max(non_intra)
        return max(self._frames)

    # ------------------------------------------------------------------
    # Draining (decoder side)
    # ------------------------------------------------------------------
    def peek_next(self) -> Optional[Frame]:
        """The lowest-index buffered frame (next in display order)."""
        if not self._frames:
            return None
        return self._frames[min(self._frames)]

    def pop_next(self) -> Frame:
        if not self._frames:
            raise MediaError("pop from empty software buffer")
        return self._frames.pop(min(self._frames))

    def clear(self) -> int:
        """Drop everything (random access).  Returns the count dropped."""
        dropped = len(self._frames)
        self._frames.clear()
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._frames)

    @property
    def is_full(self) -> bool:
        return len(self._frames) >= self.capacity_frames

    def __contains__(self, index: int) -> bool:
        return index in self._frames

    def indices(self):
        return sorted(self._frames)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SoftwareBuffer {len(self._frames)}/{self.capacity_frames}>"
