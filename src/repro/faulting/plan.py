"""The fault-plan DSL: declarative, deterministic fault schedules.

A :class:`FaultPlan` is an immutable description of *what goes wrong and
when*: server crashes and restarts, network partitions and merges, link
impairments (drop / delay / duplication via
:class:`~repro.net.link.LinkFault`) and false failure-detector
suspicions.  Plans are pure data — they never touch a simulator — so the
same plan can be printed, compared, replayed against different
deployments, or regenerated bit-for-bit from a seed.

Two ways to build a plan:

* the fluent builder API (each call returns a new plan)::

      plan = (FaultPlan(name="figure5")
              .server_up(at=25.0)
              .crash_serving(at=47.0))

* :meth:`FaultPlan.random` — a seeded generator that composes a
  recoverable chaos schedule (every crash is followed by a replacement
  server, every partition heals, the plan ends with a settle window), so
  the service-level invariants are expected to hold for *every* seed.

All node-valued fields hold **host indices** into
``Topology.hosts`` — not raw node ids — so plans stay meaningful across
topologies of the same shape.  The
:class:`~repro.faulting.injector.FaultInjector` resolves them at fire
time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.net.link import LinkFault


# ======================================================================
# Actions
# ======================================================================
@dataclass(frozen=True)
class FaultAction:
    """One scheduled action; ``at`` is virtual time in seconds."""

    at: float

    def validate(self) -> None:
        if not isinstance(self.at, (int, float)) or not self.at >= 0.0:
            raise FaultError(f"action time must be >= 0, got {self.at!r}")

    def describe(self) -> str:
        return f"{type(self).__name__}"


@dataclass(frozen=True)
class CrashServing(FaultAction):
    """Crash whichever live server currently serves ``client``.

    ``client`` is a client name from the deployment; None means the
    injector's default client (the first one attached)."""

    client: Optional[str] = None

    def describe(self) -> str:
        target = self.client or "<default client>"
        return f"crash server serving {target}"


@dataclass(frozen=True)
class CrashServer(FaultAction):
    """Fail-stop a named server together with its host node."""

    server: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.server:
            raise FaultError("CrashServer needs a server name")

    def describe(self) -> str:
        return f"crash {self.server}"


@dataclass(frozen=True)
class StopServer(FaultAction):
    """Gracefully shut a named server down (it leaves its groups)."""

    server: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.server:
            raise FaultError("StopServer needs a server name")

    def describe(self) -> str:
        return f"shutdown {self.server}"


@dataclass(frozen=True)
class ServerUp(FaultAction):
    """Start a new server.

    ``host`` is a host index; None lets the injector pick — the host of
    the earliest crashed/stopped server that has no live replacement
    yet, else a fresh host slot."""

    host: Optional[int] = None

    def describe(self) -> str:
        where = "auto host" if self.host is None else f"host {self.host}"
        return f"server up on {where}"


@dataclass(frozen=True)
class RestartServer(FaultAction):
    """Bring a server back up on the host where ``server`` ran."""

    server: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.server:
            raise FaultError("RestartServer needs a server name")

    def describe(self) -> str:
        return f"restart host of {self.server}"


@dataclass(frozen=True)
class Partition(FaultAction):
    """Cut every direct link between two sets of hosts."""

    side_a: Tuple[int, ...] = ()
    side_b: Tuple[int, ...] = ()

    def validate(self) -> None:
        super().validate()
        if not self.side_a or not self.side_b:
            raise FaultError("Partition needs two non-empty sides")
        if set(self.side_a) & set(self.side_b):
            raise FaultError("Partition sides overlap")

    def describe(self) -> str:
        return f"partition {list(self.side_a)} | {list(self.side_b)}"


@dataclass(frozen=True)
class IsolateHost(FaultAction):
    """Take down every link terminating at one host (NIC dies)."""

    host: int = 0

    def describe(self) -> str:
        return f"isolate host {self.host}"


@dataclass(frozen=True)
class HealHost(FaultAction):
    """Undo :class:`IsolateHost`: restore the host's links."""

    host: int = 0

    def describe(self) -> str:
        return f"heal host {self.host}"


@dataclass(frozen=True)
class HealAll(FaultAction):
    """Merge all partitions: every link back up."""

    def describe(self) -> str:
        return "heal all partitions"


@dataclass(frozen=True)
class ImpairLink(FaultAction):
    """Install a :class:`LinkFault` on the direct link between two
    hosts (None clears it)."""

    host_a: int = 0
    host_b: int = 0
    fault: Optional[LinkFault] = None

    def validate(self) -> None:
        super().validate()
        if self.fault is not None:
            self.fault.validate()

    def describe(self) -> str:
        what = "clear" if self.fault is None else repr(self.fault)
        return f"impair link {self.host_a}-{self.host_b}: {what}"


@dataclass(frozen=True)
class ImpairHost(FaultAction):
    """Install a :class:`LinkFault` on every link of one host — a flaky
    NIC or a congested access link (None clears them)."""

    host: int = 0
    fault: Optional[LinkFault] = None

    def validate(self) -> None:
        super().validate()
        if self.fault is not None:
            self.fault.validate()

    def describe(self) -> str:
        what = "clear" if self.fault is None else repr(self.fault)
        return f"impair host {self.host}: {what}"


@dataclass(frozen=True)
class ClearImpairments(FaultAction):
    """Remove every installed link fault."""

    def describe(self) -> str:
        return "clear impairments"


@dataclass(frozen=True)
class FalseSuspicion(FaultAction):
    """Make every other daemon wrongly suspect the daemon on ``host``
    (and ignore its heartbeats for ``mute_for_s``), exercising the
    remove-then-rejoin path without any real failure."""

    host: int = 0
    mute_for_s: float = 0.5

    def validate(self) -> None:
        super().validate()
        if self.mute_for_s < 0.0:
            raise FaultError("mute_for_s must be >= 0")

    def describe(self) -> str:
        return f"falsely suspect host {self.host} (mute {self.mute_for_s}s)"


# ======================================================================
# The plan
# ======================================================================
@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered schedule of :class:`FaultAction` objects."""

    name: str = "plan"
    seed: Optional[int] = None
    actions: Tuple[FaultAction, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Builder API (each method returns a new plan)
    # ------------------------------------------------------------------
    def _with(self, action: FaultAction) -> "FaultPlan":
        action.validate()
        return replace(self, actions=self.actions + (action,))

    def crash_serving(self, at: float, client: Optional[str] = None) -> "FaultPlan":
        return self._with(CrashServing(at, client=client))

    def crash(self, at: float, server: str) -> "FaultPlan":
        return self._with(CrashServer(at, server=server))

    def stop(self, at: float, server: str) -> "FaultPlan":
        return self._with(StopServer(at, server=server))

    def server_up(self, at: float, host: Optional[int] = None) -> "FaultPlan":
        return self._with(ServerUp(at, host=host))

    def restart(self, at: float, server: str) -> "FaultPlan":
        return self._with(RestartServer(at, server=server))

    def partition(
        self, at: float, side_a: Sequence[int], side_b: Sequence[int]
    ) -> "FaultPlan":
        return self._with(
            Partition(at, side_a=tuple(side_a), side_b=tuple(side_b))
        )

    def isolate(self, at: float, host: int) -> "FaultPlan":
        return self._with(IsolateHost(at, host=host))

    def heal_host(self, at: float, host: int) -> "FaultPlan":
        return self._with(HealHost(at, host=host))

    def heal_all(self, at: float) -> "FaultPlan":
        return self._with(HealAll(at))

    def impair_link(
        self, at: float, host_a: int, host_b: int, fault: Optional[LinkFault]
    ) -> "FaultPlan":
        return self._with(ImpairLink(at, host_a=host_a, host_b=host_b, fault=fault))

    def impair_host(
        self, at: float, host: int, fault: Optional[LinkFault]
    ) -> "FaultPlan":
        return self._with(ImpairHost(at, host=host, fault=fault))

    def clear_impairments(self, at: float) -> "FaultPlan":
        return self._with(ClearImpairments(at))

    def false_suspicion(
        self, at: float, host: int, mute_for_s: float = 0.5
    ) -> "FaultPlan":
        return self._with(FalseSuspicion(at, host=host, mute_for_s=mute_for_s))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sorted_actions(self) -> List[FaultAction]:
        """Actions in firing order (stable for equal times)."""
        return sorted(self.actions, key=lambda action: action.at)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled action (0 for an empty plan)."""
        return max((action.at for action in self.actions), default=0.0)

    def validate(self) -> None:
        for action in self.actions:
            action.validate()

    def describe(self) -> List[str]:
        return [
            f"t={action.at:7.2f}s  {action.describe()}"
            for action in self.sorted_actions()
        ]

    def __len__(self) -> int:
        return len(self.actions)

    # ------------------------------------------------------------------
    # Canned and random plans
    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(
        cls,
        schedule: Sequence[Tuple[float, str]],
        name: str = "schedule",
    ) -> "FaultPlan":
        """Build a plan from the legacy ``(time, action)`` tuples used by
        the experiment scenarios ("crash-serving" / "server-up")."""
        plan = cls(name=name)
        for at, action in schedule:
            if action == "crash-serving":
                plan = plan.crash_serving(at)
            elif action == "server-up":
                plan = plan.server_up(at)
            else:
                raise FaultError(f"unknown schedule action {action!r}")
        return plan

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float,
        server_hosts: Sequence[int],
        client_host: int,
        name: Optional[str] = None,
        start_s: float = 20.0,
        settle_s: float = 20.0,
        intensity: float = 1.0,
    ) -> "FaultPlan":
        """A seeded random chaos plan that the service should survive.

        Disturbances are drawn one after another on a non-overlapping
        timeline (so at most one is in flight), every crash is paired
        with a replacement ``server_up`` a few seconds later, every
        isolation heals within seconds, and the last recovery lands at
        least ``settle_s`` before ``duration_s`` — giving takeover and
        rebalancing time to converge.  Identical arguments always yield
        an identical plan.
        """
        if duration_s <= start_s + settle_s:
            raise FaultError(
                f"duration {duration_s}s leaves no room between start "
                f"{start_s}s and settle window {settle_s}s"
            )
        if not server_hosts:
            raise FaultError("need at least one server host")
        rng = random.Random(seed)
        plan = cls(name=name or f"chaos-{seed}", seed=seed)
        deadline = duration_s - settle_s
        t = start_s

        kinds = [
            "crash-serving",
            "crash-any",
            "isolate-client",
            "isolate-server",
            "impair-client",
            "impair-server",
            "false-suspicion",
        ]
        while True:
            t += rng.uniform(4.0, 10.0) / max(intensity, 0.1)
            kind = rng.choice(kinds)
            if kind == "crash-serving":
                # Crash the serving server, then bring a replacement up
                # on the vacated host a few seconds later.
                up_at = t + rng.uniform(5.0, 10.0)
                if up_at > deadline:
                    break
                plan = plan.crash_serving(t).server_up(up_at)
                t = up_at
            elif kind == "crash-any":
                # Crash a random *non-serving* host by index; the
                # injector resolves the server living there (if it is
                # the serving one, fine too — takeover handles it).
                host = rng.choice(list(server_hosts))
                up_at = t + rng.uniform(5.0, 10.0)
                if up_at > deadline:
                    break
                plan = plan._with(_CrashHost(t, host=host)).server_up(up_at)
                t = up_at
            elif kind in ("isolate-client", "isolate-server"):
                host = (
                    client_host
                    if kind == "isolate-client"
                    else rng.choice(list(server_hosts))
                )
                heal_at = t + rng.uniform(0.5, 2.5)
                if heal_at > deadline:
                    break
                plan = plan.isolate(t, host).heal_host(heal_at, host)
                t = heal_at
            elif kind in ("impair-client", "impair-server"):
                host = (
                    client_host
                    if kind == "impair-client"
                    else rng.choice(list(server_hosts))
                )
                fault = LinkFault(
                    drop_prob=rng.uniform(0.02, 0.20),
                    extra_delay_s=rng.uniform(0.0, 0.010),
                    jitter_s=rng.uniform(0.0, 0.015),
                    duplicate_prob=rng.uniform(0.0, 0.05),
                )
                clear_at = t + rng.uniform(4.0, 10.0)
                if clear_at > deadline:
                    break
                plan = plan.impair_host(t, host, fault).impair_host(
                    clear_at, host, None
                )
                t = clear_at
            else:  # false-suspicion
                host = rng.choice(list(server_hosts))
                if t > deadline:
                    break
                plan = plan.false_suspicion(
                    t, host, mute_for_s=rng.uniform(0.3, 1.0)
                )
        return plan


@dataclass(frozen=True)
class _CrashHost(FaultAction):
    """Crash whichever live server runs on host index ``host`` (no-op if
    the host has no live server).  Used by random plans, which know
    hosts but not server names."""

    host: int = 0

    def describe(self) -> str:
        return f"crash server on host {self.host}"
