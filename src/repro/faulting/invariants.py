"""Service-level invariant checking under injected faults.

The checker encodes the paper's fault-tolerance contract as runtime
assertions over a running deployment:

1. **Exactly-one adoption** — after a serving replica crashes or
   detaches, each of its clients is re-adopted by exactly one surviving
   replica (within a grace period); no client is left orphaned while a
   reachable replica holds its movie, and no two replicas keep serving
   the same client.
2. **Offset continuity** — adopting an orphan resumes from the downed
   server's last position: the new offset neither regresses nor skips
   ahead of it by more than the multicast-state staleness bound (0.5 s
   of frames at the emergency-inflated rate).  Spurious takeovers by a
   partitioned minority are excluded — their knowledge is legitimately
   staler, and rules 1 and 3 govern how they resolve.
3. **No double delivery** — the display sequence is strictly monotone:
   the client never shows more frames than its playhead advanced over.
4. **Underrun => glitch** — whenever playback runs completely dry the
   decoder must have an open stall (the glitch is *recorded*, never
   silently swallowed), and the stall bookkeeping stays consistent.

The checker is a read-only observer: it samples client/server state on
a fixed cadence, subscribes to server lifecycle events and GCS view
installations, draws no random numbers and mutates nothing — attaching
it does not perturb the simulation it watches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.process import Timer


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    time: float
    rule: str
    client: Optional[str]
    detail: str

    def __str__(self) -> str:
        who = f" client={self.client}" if self.client else ""
        return f"[t={self.time:8.3f}s] {self.rule}{who}: {self.detail}"


@dataclass
class _ClientTrack:
    """Per-client rolling state between samples."""

    max_offset: int = 0
    prev_displayed: int = 0
    prev_index: int = 0
    prev_stall_events: int = 0
    prev_epoch: int = 0
    prev_sampled: bool = False
    prev_dry: bool = False
    zero_serving_since: Optional[float] = None
    zero_reported: bool = False
    double_serving_since: Optional[float] = None
    double_reported: bool = False
    awaiting_adoption_since: Optional[float] = None
    # Offset the downed server had streamed to when it went away — the
    # authoritative baseline for the next (orphan-adopting) takeover.
    down_offset: Optional[int] = None


class InvariantChecker:
    """Watches a deployment and records :class:`Violation` objects.

    Parameters
    ----------
    deployment:
        The deployment under test.  Call :meth:`install` once it (and
        ideally before any client) is built.
    staleness_bound_s:
        The paper's multicast-state staleness: servers synchronize every
        half second, so a takeover offset may legitimately differ from
        the best-known offset by up to this much transmission time.
    orphan_grace_s:
        How long a client may go unserved (while a replica is reachable)
        before rule 1 fires.  Covers failure detection, view agreement,
        the 3-sync-period orphan repair and the session handshake.
    double_serve_grace_s:
        How long two replicas may transiently serve the same client
        (connect races resolve via the session-group view) before
        rule 1 fires.
    """

    def __init__(
        self,
        deployment: Any,
        staleness_bound_s: float = 0.5,
        orphan_grace_s: float = 8.0,
        double_serve_grace_s: float = 6.0,
        sample_period_s: float = 0.25,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.network = deployment.network
        self.staleness_bound_s = staleness_bound_s
        self.orphan_grace_s = orphan_grace_s
        self.double_serve_grace_s = double_serve_grace_s
        self.sample_period_s = sample_period_s
        # Frames a takeover offset may differ from the best shared
        # offset: the staleness bound at the emergency-inflated rate
        # (40% extra bandwidth) plus a little merge slack.
        rate = deployment.server_config.default_rate_fps
        self.offset_bound_frames = int(math.ceil(1.4 * rate * staleness_bound_s)) + 4

        self.violations: List[Violation] = []
        self.takeovers: List[Tuple[float, str, str, int]] = []
        self.samples = 0
        self.view_log: List[Tuple[float, int, str, int]] = []
        self._tracks: Dict[str, _ClientTrack] = {}
        self._timer: Optional[Timer] = None
        self._installed = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self) -> "InvariantChecker":
        if self._installed:
            return self
        self._installed = True
        self.deployment.add_server_observer(self)
        self.deployment.domain.add_view_observer(self._on_view_installed)
        self._timer = Timer(
            self.sim,
            self.sample_period_s,
            self._sample,
            start_delay=self.sample_period_s,
        )
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _violation(self, rule: str, client: Optional[str], detail: str) -> None:
        self.violations.append(Violation(self.sim.now, rule, client, detail))
        tel = self.sim.telemetry
        if tel.active:
            # The flight recorder treats a violation as an incident
            # trigger; the checker stays a pure observer (the emission
            # draws no randomness and schedules nothing).
            tel.emit(
                "invariant.violation", rule=rule, client=client, detail=detail
            )

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if not self.violations:
            return f"OK: 0 violations over {self.samples} samples"
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [str(violation) for violation in self.violations]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Server lifecycle observers (read-only)
    # ------------------------------------------------------------------
    def on_server_crash(self, server: Any, clients: Tuple[Any, ...]) -> None:
        self._note_server_down(server, clients)

    def on_server_shutdown(self, server: Any, clients: Tuple[Any, ...]) -> None:
        self._note_server_down(server, clients)

    def _note_server_down(self, server: Any, clients: Tuple[Any, ...]) -> None:
        for process in clients:
            client = self._client_by_process(process)
            if client is None or client.finished:
                continue
            track = self._track(client.name)
            if track.awaiting_adoption_since is None:
                track.awaiting_adoption_since = self.sim.now
                # movie_states survives crash()/shutdown() into the
                # notification, so the downed server's own record is the
                # authoritative last-streamed position for this client.
                state = server.movie_states.get(client.movie_title)
                record = state.record_of(process) if state else None
                track.down_offset = record.offset if record else None

    def on_session_start(self, server: Any, record: Any, takeover: bool) -> None:
        client = self._client_by_process(record.client)
        if client is None:
            return
        track = self._track(client.name)
        adopting_orphan = track.awaiting_adoption_since is not None
        track.awaiting_adoption_since = None
        if takeover:
            self.takeovers.append(
                (self.sim.now, client.name, server.name, record.offset)
            )
            if adopting_orphan:
                self._check_takeover_offset(record, client, track)
        track.down_offset = None
        track.max_offset = max(track.max_offset, record.offset)

    def on_session_end(self, server: Any, client: Any, departed: bool) -> None:
        """Present for completeness; sampling covers the aftermath."""

    def _check_takeover_offset(
        self, record: Any, client: Any, track: _ClientTrack
    ) -> None:
        # The downed server's own record is the authoritative position:
        # the adopter resumes from state at most one sync interval
        # staler, so the adopted offset must sit within the staleness
        # bound of it.  Nothing streams the client between the crash and
        # the adoption, so the baseline cannot move in the meantime.
        base = track.down_offset
        if base is None or base <= 0:
            return  # no shared history yet: nothing to compare against
        if record.offset < base - self.offset_bound_frames:
            self._violation(
                "takeover-offset-regression",
                client.name,
                f"resumed at {record.offset}, downed server was at {base} "
                f"(bound {self.offset_bound_frames} frames)",
            )
        elif record.offset > base + self.offset_bound_frames:
            self._violation(
                "takeover-offset-skip",
                client.name,
                f"resumed at {record.offset}, downed server was at {base} "
                f"(bound {self.offset_bound_frames} frames)",
            )

    # ------------------------------------------------------------------
    # GCS view observer (diagnostics context)
    # ------------------------------------------------------------------
    def _on_view_installed(self, daemon_id: int, group: str, view: Any) -> None:
        self.view_log.append((self.sim.now, daemon_id, group, len(view.members)))
        if len(self.view_log) > 500:
            del self.view_log[:-250]

    # ------------------------------------------------------------------
    # Periodic sampling
    # ------------------------------------------------------------------
    def _track(self, name: str) -> _ClientTrack:
        track = self._tracks.get(name)
        if track is None:
            track = self._tracks[name] = _ClientTrack()
        return track

    def _client_by_process(self, process: Any) -> Optional[Any]:
        for client in self.deployment.clients.values():
            if client.process == process:
                return client
        return None

    def _servers_serving(self, client: Any) -> List[Any]:
        return [
            server
            for server in self.deployment.live_servers()
            if client.process in server.sessions
        ]

    def _replica_reachable(self, client: Any) -> bool:
        title = client.movie_title
        for server in self.deployment.live_servers():
            if title in server.movie_states and self.network.reachable(
                client.node_id, server.node_id
            ):
                return True
        return False

    def _sample(self) -> None:
        self.samples += 1
        for client in list(self.deployment.clients.values()):
            self._sample_client(client)

    def _sample_client(self, client: Any) -> None:
        track = self._track(client.name)
        # A closed video socket means the viewer tore itself down
        # (stopped/abandoned) — it departed on purpose, it is not an
        # orphan the service failed to re-adopt.
        if (
            client.movie_title is None
            or client.finished
            or client.video_socket.closed
        ):
            track.prev_sampled = False
            track.zero_serving_since = None
            track.double_serving_since = None
            track.awaiting_adoption_since = None
            track.down_offset = None
            return

        now = self.sim.now
        serving = self._servers_serving(client)
        self._check_adoption(client, track, serving, now)
        self._refresh_max_offset(client, track)

        stats = client.decoder.stats
        epoch_stable = track.prev_sampled and track.prev_epoch == client.epoch
        if epoch_stable:
            delta_displayed = stats.displayed - track.prev_displayed
            delta_index = stats.last_displayed_index - track.prev_index
            if delta_displayed > 0 and delta_index < delta_displayed:
                self._violation(
                    "double-delivery",
                    client.name,
                    f"displayed {delta_displayed} frames but the playhead "
                    f"advanced only {delta_index} indices "
                    f"(to {stats.last_displayed_index})",
                )
            self._check_underrun(client, track, stats, delta_displayed)
        if stats.stall_events != len(stats.stall_starts):
            self._violation(
                "glitch-bookkeeping",
                client.name,
                f"{stats.stall_events} stall events but "
                f"{len(stats.stall_starts)} recorded stall starts",
            )

        track.prev_displayed = stats.displayed
        track.prev_index = stats.last_displayed_index
        track.prev_stall_events = stats.stall_events
        track.prev_epoch = client.epoch
        track.prev_dry = client.combined_occupancy == 0
        track.prev_sampled = True

    def _check_adoption(
        self, client: Any, track: _ClientTrack, serving: List[Any], now: float
    ) -> None:
        count = len(serving)
        if count == 0 and self._replica_reachable(client):
            if track.zero_serving_since is None:
                track.zero_serving_since = now
            elif (
                not track.zero_reported
                and now - track.zero_serving_since > self.orphan_grace_s
            ):
                track.zero_reported = True
                self._violation(
                    "orphaned-client",
                    client.name,
                    f"no live server has served the client for "
                    f"{now - track.zero_serving_since:.2f}s although a "
                    f"replica of {client.movie_title!r} is reachable",
                )
        else:
            track.zero_serving_since = None
            track.zero_reported = False
        if count >= 2:
            if track.double_serving_since is None:
                track.double_serving_since = now
            elif (
                not track.double_reported
                and now - track.double_serving_since > self.double_serve_grace_s
            ):
                track.double_reported = True
                names = sorted(server.name for server in serving)
                self._violation(
                    "multiple-adoption",
                    client.name,
                    f"served by {count} replicas {names} for "
                    f"{now - track.double_serving_since:.2f}s",
                )
        else:
            track.double_serving_since = None
            track.double_reported = False

    def _refresh_max_offset(self, client: Any, track: _ClientTrack) -> None:
        for server in self.deployment.live_servers():
            state = server.movie_states.get(client.movie_title)
            record = state.record_of(client.process) if state else None
            if record is not None and record.offset > track.max_offset:
                track.max_offset = record.offset

    def _check_underrun(
        self, client: Any, track: _ClientTrack, stats: Any, delta_displayed: int
    ) -> None:
        """Rule 4: a dry spell must carry an open, recorded stall.

        Only clear-cut windows are judged: plain playback (speed 1, full
        quality, hardware decode), both this and the previous sample dry
        with nothing displayed in between — by then the decoder tick has
        certainly run on an empty pipeline, so a stall must be open.
        """
        plain_playback = (
            client.playback_started
            and not client.paused
            and not client.eos_received
            and client.playback_speed == 1.0
            and client.quality_fps is None
            and client.config.max_decode_fps is None
        )
        dry = client.combined_occupancy == 0
        if (
            plain_playback
            and dry
            and track.prev_dry
            and delta_displayed == 0
            and not client.decoder.is_stalled
        ):
            self._violation(
                "underrun-without-glitch",
                client.name,
                "playback ran dry across a full sample window but no "
                "stall is recorded",
            )

    # ------------------------------------------------------------------
    # End-of-run check
    # ------------------------------------------------------------------
    def final_check(self) -> List[Violation]:
        """Run the settle-time assertions; returns all violations."""
        for client in self.deployment.clients.values():
            if (
                client.movie_title is None
                or client.finished
                or client.video_socket.closed
            ):
                continue
            track = self._track(client.name)
            serving = self._servers_serving(client)
            if track.awaiting_adoption_since is not None and not serving:
                self._violation(
                    "client-never-readopted",
                    client.name,
                    f"its server went down at "
                    f"t={track.awaiting_adoption_since:.2f}s and no "
                    f"survivor adopted the client",
                )
            elif len(serving) != 1 and self._replica_reachable(client):
                names = sorted(server.name for server in serving)
                self._violation(
                    "final-adoption-count",
                    client.name,
                    f"served by {len(serving)} replicas {names} at the end "
                    f"of the run (expected exactly 1)",
                )
            stats = client.decoder.stats
            if stats.stall_events != len(stats.stall_starts):
                self._violation(
                    "glitch-bookkeeping",
                    client.name,
                    f"{stats.stall_events} stall events but "
                    f"{len(stats.stall_starts)} recorded stall starts",
                )
        return self.violations
