"""The fault injector: applies a :class:`FaultPlan` to a deployment.

The injector is the single place where the declarative plan meets the
running system.  It schedules every action at its virtual time, resolves
symbolic targets at fire time ("the server serving client0", "the host
of the crashed server"), and records what actually fired so experiments
can report crash/recovery times without re-deriving them.

Determinism: the injector draws no random numbers of its own; every
handler is a deterministic function of the deployment state at fire
time, so a (plan, seed) pair replays byte-for-byte.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import FaultError
from repro.faulting.plan import (
    ClearImpairments,
    CrashServer,
    CrashServing,
    FalseSuspicion,
    FaultAction,
    FaultPlan,
    HealAll,
    HealHost,
    ImpairHost,
    ImpairLink,
    IsolateHost,
    Partition,
    RestartServer,
    ServerUp,
    StopServer,
    _CrashHost,
)
from repro.testing import crash_serving_server


class FaultInjector:
    """Schedules and executes a :class:`FaultPlan` against a Deployment.

    Parameters
    ----------
    deployment:
        The :class:`~repro.service.deployment.Deployment` under test.
    plan:
        The fault plan; call :meth:`start` (before or during the run) to
        schedule it.
    client:
        Default victim-resolution client for :class:`CrashServing`
        actions without an explicit client name.  Defaults to the first
        attached client at fire time.
    """

    def __init__(
        self,
        deployment: Any,
        plan: FaultPlan,
        client: Optional[Any] = None,
    ) -> None:
        plan.validate()
        self.deployment = deployment
        self.plan = plan
        self.sim = deployment.sim
        self.topology = deployment.topology
        self.network = deployment.network
        self._default_client = client
        self._started = False
        # What actually happened, for reports and assertions.
        self.fired: List[Tuple[float, str]] = []
        self.crash_times: List[float] = []
        self.server_up_times: List[float] = []
        # Host slots vacated by crashes/stops, FIFO — ServerUp(host=None)
        # refills the earliest vacancy before claiming fresh hosts.
        self._vacant_hosts: List[int] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Schedule every plan action on the simulator (idempotent)."""
        if self._started:
            return self
        self._started = True
        for action in self.plan.sorted_actions():
            at = max(action.at, self.sim.now)
            self.sim.call_at(at, self._fire, action)
        return self

    def _fire(self, action: FaultAction) -> None:
        handler = self._HANDLERS.get(type(action))
        if handler is None:
            raise FaultError(f"no handler for {type(action).__name__}")
        tel = self.sim.telemetry
        cause = None
        if tel.active:
            # Every fault episode is a causal root: the ambient cause is
            # set for the (synchronous) handler so server.crash, the
            # takeover spans it opens, etc. all tag themselves with it,
            # and crash handlers additionally attribute the dead node /
            # orphaned clients so asynchronous consequences (suspicion,
            # the client's resume) can look the cause back up.
            cause = tel.new_cause(f"fault.{type(action).__name__}")
            tel.cause = cause
        try:
            detail = handler(self, action)
        finally:
            if cause is not None:
                tel.cause = None
        note = action.describe() if detail is None else detail
        self.fired.append((self.sim.now, note))
        if tel.active:
            tel.emit(
                "fault.fired", action=type(action).__name__, note=note,
                cause=cause,
            )
            tel.count("faults.fired")

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _client(self, name: Optional[str]) -> Any:
        if name is not None:
            return self.deployment.client(name)
        if self._default_client is not None:
            return self._default_client
        clients = self.deployment.clients
        if not clients:
            raise FaultError("CrashServing fired but no client is attached")
        return next(iter(clients.values()))

    def _host_of_server(self, server: Any) -> int:
        try:
            return self.topology.hosts.index(server.node_id)
        except ValueError:
            raise FaultError(
                f"server {server.name} runs on a non-host node"
            ) from None

    def _note_down(self, server: Optional[Any]) -> None:
        if server is None:
            return
        host = self._host_of_server(server)
        if host not in self._vacant_hosts:
            self._vacant_hosts.append(host)

    def _next_host_slot(self) -> int:
        if self._vacant_hosts:
            return self._vacant_hosts.pop(0)
        # Fresh slot: the first host index no server (live or dead)
        # occupies.  Host indices used by clients are skipped too.
        used = {
            self._host_of_server(server)
            for server in self.deployment.servers.values()
        }
        used |= {
            self.topology.hosts.index(client.node_id)
            for client in self.deployment.clients.values()
            if client.node_id in self.topology.hosts
        }
        for index in range(len(self.topology.hosts)):
            if index not in used:
                return index
        raise FaultError("no free host slot for a new server")

    # ------------------------------------------------------------------
    # Handlers (deterministic; no RNG draws)
    # ------------------------------------------------------------------
    def _do_crash_serving(self, action: CrashServing) -> str:
        client = self._client(action.client)
        server = crash_serving_server(self.deployment, client)
        self._note_down(server)
        if server is not None:
            self.crash_times.append(self.sim.now)
            return f"crashed {server.name} (serving {client.name})"
        return f"no server serving {client.name}; nothing crashed"

    def _do_crash_server(self, action: CrashServer) -> str:
        server = self.deployment.server(action.server)
        if server.running:
            self._note_down(server)
            server.crash()
            self.crash_times.append(self.sim.now)
            return f"crashed {server.name}"
        return f"{server.name} already down"

    def _do_crash_host(self, action: _CrashHost) -> str:
        node_id = self.topology.host(action.host)
        for server in self.deployment.live_servers():
            if server.node_id == node_id:
                self._note_down(server)
                server.crash()
                self.crash_times.append(self.sim.now)
                return f"crashed {server.name} on host {action.host}"
        return f"no live server on host {action.host}"

    def _do_stop_server(self, action: StopServer) -> str:
        server = self.deployment.server(action.server)
        if server.running:
            self._note_down(server)
            server.shutdown()
            return f"stopped {server.name}"
        return f"{server.name} already down"

    def _do_server_up(self, action: ServerUp) -> str:
        host = action.host if action.host is not None else self._next_host_slot()
        if host in self._vacant_hosts:
            self._vacant_hosts.remove(host)
        server = self.deployment.add_server(host)
        self.server_up_times.append(self.sim.now)
        tel = self.sim.telemetry
        if tel.active and tel.cause is not None:
            # The join-triggered view change (and any rebalance it causes)
            # happens asynchronously; park the cause on the new node.
            tel.attribute(f"node:{server.node_id}", tel.cause)
        return f"started {server.name} on host {host}"

    def _do_restart_server(self, action: RestartServer) -> str:
        old = self.deployment.server(action.server)
        host = self._host_of_server(old)
        if host in self._vacant_hosts:
            self._vacant_hosts.remove(host)
        server = self.deployment.add_server(host)
        self.server_up_times.append(self.sim.now)
        tel = self.sim.telemetry
        if tel.active and tel.cause is not None:
            tel.attribute(f"node:{server.node_id}", tel.cause)
        return f"started {server.name} on host {host} (was {old.name})"

    def _do_partition(self, action: Partition) -> str:
        side_a = [self.topology.host(index) for index in action.side_a]
        side_b = [self.topology.host(index) for index in action.side_b]
        self.network.partition(side_a, side_b)
        return action.describe()

    def _do_isolate(self, action: IsolateHost) -> str:
        self.network.partition_node(self.topology.host(action.host))
        return action.describe()

    def _do_heal_host(self, action: HealHost) -> str:
        self.network.heal_node(self.topology.host(action.host))
        return action.describe()

    def _do_heal_all(self, action: HealAll) -> str:
        self.network.heal()
        return action.describe()

    def _do_impair_link(self, action: ImpairLink) -> str:
        self.network.set_link_fault(
            self.topology.host(action.host_a),
            self.topology.host(action.host_b),
            action.fault,
        )
        return action.describe()

    def _do_impair_host(self, action: ImpairHost) -> str:
        self.network.set_node_fault(
            self.topology.host(action.host), action.fault
        )
        return action.describe()

    def _do_clear_impairments(self, action: ClearImpairments) -> str:
        self.network.clear_link_faults()
        return action.describe()

    def _do_false_suspicion(self, action: FalseSuspicion) -> str:
        victim = self.topology.host(action.host)
        domain = self.deployment.domain
        accusers = 0
        for node_id in domain.daemon_nodes():
            if node_id == victim:
                continue
            endpoint = domain.endpoint(node_id)
            if endpoint.closed:
                continue
            if endpoint.fd.force_suspect(victim, mute_for_s=action.mute_for_s):
                accusers += 1
        return (
            f"falsely suspected daemon {victim} at {accusers} peers "
            f"(muted {action.mute_for_s:.2f}s)"
        )

    _HANDLERS = {
        CrashServing: _do_crash_serving,
        CrashServer: _do_crash_server,
        _CrashHost: _do_crash_host,
        StopServer: _do_stop_server,
        ServerUp: _do_server_up,
        RestartServer: _do_restart_server,
        Partition: _do_partition,
        IsolateHost: _do_isolate,
        HealHost: _do_heal_host,
        HealAll: _do_heal_all,
        ImpairLink: _do_impair_link,
        ImpairHost: _do_impair_host,
        ClearImpairments: _do_clear_impairments,
        FalseSuspicion: _do_false_suspicion,
    }
