"""Deterministic fault injection and invariant checking.

This package turns the ad-hoc fault scripting of the experiments into a
first-class subsystem:

* :mod:`repro.faulting.plan` — the :class:`FaultPlan` DSL: immutable,
  seeded, replayable schedules of crashes, restarts, partitions, link
  impairments and false suspicions.
* :mod:`repro.faulting.injector` — :class:`FaultInjector` applies a
  plan to a running deployment, resolving symbolic targets at fire
  time.
* :mod:`repro.faulting.invariants` — :class:`InvariantChecker` asserts
  the paper's fault-tolerance contract at runtime (exactly-one
  adoption, offset continuity within the 0.5 s staleness bound, no
  double delivery, every underrun recorded as a glitch).
* :mod:`repro.faulting.chaos` — seeded random sweeps: N plans, zero
  expected violations.
"""

from repro.faulting.chaos import (
    ChaosResult,
    chaos_table,
    run_chaos_sweep,
    run_chaos_trial,
    total_violations,
)
from repro.faulting.injector import FaultInjector
from repro.faulting.invariants import InvariantChecker, Violation
from repro.faulting.plan import (
    ClearImpairments,
    CrashServer,
    CrashServing,
    FalseSuspicion,
    FaultAction,
    FaultPlan,
    HealAll,
    HealHost,
    ImpairHost,
    ImpairLink,
    IsolateHost,
    Partition,
    RestartServer,
    ServerUp,
    StopServer,
)

__all__ = [
    "ChaosResult",
    "ClearImpairments",
    "CrashServer",
    "CrashServing",
    "FalseSuspicion",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "HealAll",
    "HealHost",
    "ImpairHost",
    "ImpairLink",
    "InvariantChecker",
    "IsolateHost",
    "Partition",
    "RestartServer",
    "ServerUp",
    "StopServer",
    "Violation",
    "chaos_table",
    "run_chaos_sweep",
    "run_chaos_trial",
    "total_violations",
]
