"""Randomized chaos sweeps: many seeded fault plans, zero violations.

Each trial deploys the standard k-replica LAN service, generates a
recoverable random :class:`~repro.faulting.plan.FaultPlan` from the
trial seed, runs it under an
:class:`~repro.faulting.invariants.InvariantChecker`, and reports every
violation.  Because plans are recoverable by construction (crashes are
replaced, partitions heal, the run ends with a settle window), the
expected violation count is zero for *every* seed — any non-empty
report is a bug in either the service or the invariant.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.faulting.injector import FaultInjector
from repro.faulting.invariants import InvariantChecker, Violation
from repro.faulting.plan import FaultPlan
from repro.media.catalog import MovieCatalog
from repro.media.movie import Movie
from repro.metrics.report import Table
from repro.net.topologies import build_lan
from repro.service.deployment import Deployment
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.qoe import QoEScorecard


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos trial."""

    seed: int
    plan: FaultPlan
    violations: List[Violation]
    fired: List[Tuple[float, str]]
    takeovers: int
    crashes: int
    stall_time_s: float
    skipped: int
    displayed: int
    samples: int = 0
    events: List[str] = field(default_factory=list)
    # Filled when the trial attached observers (telemetry export on).
    qoe: Dict[str, "QoEScorecard"] = field(default_factory=dict)
    slo: Dict[str, Dict] = field(default_factory=dict)
    failovers: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos_trial(
    seed: int,
    duration_s: float = 90.0,
    k: int = 3,
    intensity: float = 1.0,
    plan: Optional[FaultPlan] = None,
    telemetry_path: Optional[str] = None,
    observe: Optional[bool] = None,
) -> ChaosResult:
    """Run one seeded chaos plan against a k-replica LAN deployment.

    ``telemetry_path`` streams the trial's telemetry to a JSONL file;
    ``observe`` attaches the QoE/SLO observers (default: whenever
    telemetry is exported).  All are pure observers, so trial outcomes
    are identical with or without them.
    """
    sim = Simulator(seed=seed)
    exporter = None
    if telemetry_path is not None:
        from repro.telemetry.export import JsonlExporter

        exporter = JsonlExporter(sim.telemetry, telemetry_path)
        exporter.meta(
            scenario="chaos", seed=seed, k=k,
            intensity=intensity, run_duration_s=duration_s,
        )
    qoe_collector = None
    slo_monitor = None
    if observe is None:
        observe = telemetry_path is not None
    if observe:
        from repro.telemetry.qoe import QoECollector
        from repro.telemetry.slo import SloMonitor

        qoe_collector = QoECollector(sim.telemetry)
        slo_monitor = SloMonitor(sim.telemetry)
    topology = build_lan(sim, n_hosts=k + 1)
    catalog = MovieCatalog(
        [Movie.synthetic("feature", duration_s=duration_s + 60.0)]
    )
    deployment = Deployment(topology, catalog, server_nodes=list(range(k)))
    checker = InvariantChecker(deployment).install()
    client = deployment.attach_client(k)
    client.request_movie("feature")

    if plan is None:
        plan = FaultPlan.random(
            seed=seed,
            duration_s=duration_s,
            server_hosts=list(range(k)),
            client_host=k,
            intensity=intensity,
        )
    injector = FaultInjector(deployment, plan, client=client).start()

    qoe: Dict[str, "QoEScorecard"] = {}
    slo: Dict[str, Dict] = {}
    failovers: List[float] = []
    # The exporter-as-context-manager guarantees the summary trailer is
    # written (with ``crashed``/``error``) even if the trial raises.
    with exporter if exporter is not None else nullcontext():
        sim.run_until(duration_s)
        checker.final_check()
        checker.stop()
        client.decoder.end_stall(sim.now)
        if qoe_collector is not None:
            qoe = qoe_collector.finish(sim.now)
        if slo_monitor is not None:
            slo_monitor.finish(sim.now)
            slo = slo_monitor.summary()
            failovers = list(slo_monitor.failovers)
        if exporter is not None:
            exporter.close(
                violations=len(checker.violations),
                faults_fired=len(injector.fired),
                tracer_dropped=sim.tracer.dropped,
                slo_breaches=(
                    slo_monitor.total_breaches
                    if slo_monitor is not None else 0
                ),
            )

    return ChaosResult(
        seed=seed,
        plan=plan,
        violations=list(checker.violations),
        fired=list(injector.fired),
        takeovers=len(checker.takeovers),
        crashes=len(injector.crash_times),
        stall_time_s=client.decoder.stats.stall_time_s,
        skipped=client.skipped_total,
        displayed=client.displayed_total,
        samples=checker.samples,
        events=[f"t={t:7.2f}s  {note}" for t, note in injector.fired],
        qoe=qoe,
        slo=slo,
        failovers=failovers,
    )


def run_chaos_sweep(
    n_plans: int = 20,
    base_seed: int = 1000,
    duration_s: float = 90.0,
    k: int = 3,
    intensity: float = 1.0,
) -> List[ChaosResult]:
    """Run ``n_plans`` seeded chaos trials (seeds ``base_seed + i``)."""
    return [
        run_chaos_trial(
            seed=base_seed + index,
            duration_s=duration_s,
            k=k,
            intensity=intensity,
        )
        for index in range(n_plans)
    ]


def chaos_table(results: List[ChaosResult]) -> Table:
    """The sweep report: one row per seed, violations called out."""
    table = Table(
        "Chaos sweep — seeded random fault plans vs service invariants",
        [
            "seed",
            "actions",
            "crashes",
            "takeovers",
            "stall (s)",
            "skipped",
            "displayed",
            "violations",
        ],
    )
    for result in results:
        table.add_row(
            result.seed,
            len(result.plan),
            result.crashes,
            result.takeovers,
            f"{result.stall_time_s:.1f}",
            result.skipped,
            result.displayed,
            len(result.violations) if result.violations else "none",
        )
    return table


def total_violations(results: List[ChaosResult]) -> List[Violation]:
    return [violation for result in results for violation in result.violations]


def run(spec) -> "ExperimentResult":
    """Unified entry point (see :mod:`repro.experiments.api`).

    When ``spec.telemetry_path`` is set the first trial of the sweep
    streams its telemetry there (one representative artifact; exporting
    all N plans into one file would interleave unrelated runs).
    """
    from repro.experiments.api import ExperimentResult, attach_observability

    base_seed = spec.seed if spec.seed is not None else 1000
    n_plans = int(spec.params.get("plans", 20))
    duration_s = float(spec.params.get("duration_s", 90.0))
    k = int(spec.params.get("k", 3))
    intensity = float(spec.params.get("intensity", 1.0))

    results = []
    for index in range(n_plans):
        results.append(
            run_chaos_trial(
                seed=base_seed + index,
                duration_s=duration_s,
                k=k,
                intensity=intensity,
                telemetry_path=spec.telemetry_path if index == 0 else None,
            )
        )
    result = ExperimentResult(
        spec=spec, blocks=[chaos_table(results).render()], data=results
    )
    if spec.telemetry_path:
        result.artifacts["telemetry"] = spec.telemetry_path
        # Trial 0 was the observed one; surface its QoE/SLO outcome.
        attach_observability(result, results[0].qoe, results[0].slo)
    violations = total_violations(results)
    if violations:
        lines = [f"{len(violations)} invariant violation(s):"]
        lines.extend(f"  {violation}" for violation in violations)
        result.blocks.append("\n".join(lines))
    else:
        result.blocks.append(
            f"all {len(results)} seeded plans held every invariant"
        )
    return result
