"""Process identities and group views."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.address import NodeId


@dataclass(frozen=True, order=True)
class ProcessId:
    """A process registered with the GCS: (node, local name).

    Ordering is total (node id, then name), which the membership protocol
    uses to pick coordinators deterministically and which the VoD layer
    uses for deterministic client re-distribution.
    """

    node: NodeId
    name: str

    def __str__(self) -> str:
        return f"{self.name}@{self.node}"


@dataclass(frozen=True)
class ViewId:
    """Totally ordered view identifier: (epoch counter, proposer)."""

    counter: int
    proposer: ProcessId

    def __lt__(self, other: "ViewId") -> bool:
        return (self.counter, self.proposer) < (other.counter, other.proposer)

    def __le__(self, other: "ViewId") -> bool:
        return self == other or self < other

    def next(self, proposer: ProcessId) -> "ViewId":
        return ViewId(self.counter + 1, proposer)

    def __str__(self) -> str:
        return f"v{self.counter}/{self.proposer}"


@dataclass(frozen=True)
class View:
    """An installed membership view of one group.

    ``members`` is sorted, so all members that install the view see the
    identical sequence — the basis for deterministic takeover decisions.
    ``prior`` is the proposer's membership before this change; since the
    commit carries it, every member (including fresh joiners) derives
    the *same* joined/departed sets, which the VoD layer needs to decide
    between orphan takeover and even re-distribution.
    """

    group: str
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    prior: Tuple[ProcessId, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(sorted(self.members)))
        object.__setattr__(self, "prior", tuple(sorted(self.prior)))

    @property
    def joined(self) -> Tuple[ProcessId, ...]:
        """Members that were not in the proposer's previous view."""
        prior = set(self.prior)
        return tuple(m for m in self.members if m not in prior)

    @property
    def departed(self) -> Tuple[ProcessId, ...]:
        """Prior members no longer present."""
        members = set(self.members)
        return tuple(m for m in self.prior if m not in members)

    @property
    def coordinator(self) -> ProcessId:
        """The deterministic leader of this view (smallest member)."""
        return self.members[0]

    def __contains__(self, process: ProcessId) -> bool:
        return process in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        names = ", ".join(str(member) for member in self.members)
        return f"View({self.group} {self.view_id} [{names}])"
