"""Process identities and group views."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Tuple

from repro.net.address import NodeId


@dataclass(frozen=True, order=True)
class ProcessId:
    """A process registered with the GCS: (node, local name).

    Ordering is total (node id, then name), which the membership protocol
    uses to pick coordinators deterministically and which the VoD layer
    uses for deterministic client re-distribution.
    """

    node: NodeId
    name: str

    def __str__(self) -> str:
        return f"{self.name}@{self.node}"


@dataclass(frozen=True)
class ViewId:
    """Totally ordered view identifier: (epoch counter, proposer)."""

    counter: int
    proposer: ProcessId

    def __lt__(self, other: "ViewId") -> bool:
        return (self.counter, self.proposer) < (other.counter, other.proposer)

    def __le__(self, other: "ViewId") -> bool:
        return self == other or self < other

    def next(self, proposer: ProcessId) -> "ViewId":
        return ViewId(self.counter + 1, proposer)

    def __str__(self) -> str:
        return f"v{self.counter}/{self.proposer}"


@dataclass(frozen=True)
class View:
    """An installed membership view of one group.

    ``members`` is sorted, so all members that install the view see the
    identical sequence — the basis for deterministic takeover decisions.
    ``prior`` is the proposer's membership before this change; since the
    commit carries it, every member (including fresh joiners) derives
    the *same* joined/departed sets, which the VoD layer needs to decide
    between orphan takeover and even re-distribution.

    Derived membership state (``member_set``, ``joined``, ``departed``)
    is computed once at construction: views are consulted on every
    connect, sync receipt and heartbeat vector, and recomputing set
    differences per lookup is what made membership bookkeeping O(n)
    in the hot path.
    """

    group: str
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    prior: Tuple[ProcessId, ...] = ()

    if TYPE_CHECKING:  # derived attributes, set in __post_init__ —
        member_set: FrozenSet[ProcessId]  # annotating them here keeps
        joined: Tuple[ProcessId, ...]  # them out of the dataclass
        departed: Tuple[ProcessId, ...]  # field list (init/eq/repr).

    def __post_init__(self) -> None:
        members = tuple(sorted(self.members))
        prior = tuple(sorted(self.prior))
        member_set = frozenset(members)
        prior_set = frozenset(prior)
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "prior", prior)
        object.__setattr__(self, "member_set", member_set)
        object.__setattr__(
            self, "joined", tuple(m for m in members if m not in prior_set)
        )
        object.__setattr__(
            self, "departed", tuple(m for m in prior if m not in member_set)
        )

    @property
    def coordinator(self) -> ProcessId:
        """The deterministic leader of this view (smallest member)."""
        return self.members[0]

    def __contains__(self, process: ProcessId) -> bool:
        return process in self.member_set

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        names = ", ".join(str(member) for member in self.members)
        return f"View({self.group} {self.view_id} [{names}])"
