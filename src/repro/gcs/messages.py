"""Wire messages of the GCS control plane.

Sizes are estimated explicitly (we never really serialize); the estimates
matter because the paper claims the whole control plane costs less than
one thousandth of the video bandwidth, and the overhead experiment
verifies that claim against these sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.gcs.view import ProcessId, ViewId

#: Bytes we charge for the fixed part of every GCS message (type tag,
#: group name hash, sender id, checksum).
BASE_BYTES = 24
#: Bytes per process id appearing in a message.
PID_BYTES = 8
#: Bytes per (sender -> seq) vector entry.
VECTOR_ENTRY_BYTES = 12


@dataclass(frozen=True)
class Heartbeat:
    """Daemon liveness beacon; carries per-group delivered-seq vectors for
    stability tracking (positive acks piggybacked on heartbeats)."""

    sender_daemon: int
    ack_vectors: Dict[str, Dict[ProcessId, int]] = field(default_factory=dict)

    def wire_bytes(self) -> int:
        entries = sum(len(vector) for vector in self.ack_vectors.values())
        return BASE_BYTES + entries * VECTOR_ENTRY_BYTES


@dataclass(frozen=True)
class JoinRequest:
    """A process asks to join a group (broadcast to all daemons)."""

    group: str
    process: ProcessId

    def wire_bytes(self) -> int:
        return BASE_BYTES + PID_BYTES


@dataclass(frozen=True)
class LeaveRequest:
    """A process gracefully leaves a group."""

    group: str
    process: ProcessId

    def wire_bytes(self) -> int:
        return BASE_BYTES + PID_BYTES


@dataclass(frozen=True)
class Multicast:
    """A reliable FIFO multicast data message within a group."""

    group: str
    sender: ProcessId
    seq: int
    payload: Any
    payload_bytes: int

    def wire_bytes(self) -> int:
        return BASE_BYTES + PID_BYTES + self.payload_bytes


@dataclass(frozen=True)
class Nack:
    """Receiver asks ``holder`` to retransmit gaps of ``origin``'s flow."""

    group: str
    origin: ProcessId
    missing_from: int
    missing_to: int

    def wire_bytes(self) -> int:
        return BASE_BYTES + PID_BYTES + 8


@dataclass(frozen=True)
class Propose:
    """Coordinator proposes a new view and starts the flush.

    ``prior`` is the proposer's installed membership at proposal time;
    it travels to the commit so every member derives identical
    joined/departed sets for the new view.
    """

    group: str
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    prior: Tuple[ProcessId, ...] = ()

    def wire_bytes(self) -> int:
        return BASE_BYTES + 12 + PID_BYTES * (len(self.members) + len(self.prior))


@dataclass(frozen=True)
class FlushVector:
    """A member's per-sender max contiguous seq known, sent during flush."""

    group: str
    view_id: ViewId
    sender: ProcessId
    vector: Dict[ProcessId, int]

    def wire_bytes(self) -> int:
        return BASE_BYTES + 12 + PID_BYTES + VECTOR_ENTRY_BYTES * len(self.vector)


@dataclass(frozen=True)
class FlushOk:
    """A member tells the coordinator it caught up to the flush target."""

    group: str
    view_id: ViewId
    sender: ProcessId

    def wire_bytes(self) -> int:
        return BASE_BYTES + 12 + PID_BYTES


@dataclass(frozen=True)
class ViewCommit:
    """Coordinator installs the agreed view with its flush cut."""

    group: str
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    cut: Dict[ProcessId, int]
    prior: Tuple[ProcessId, ...] = ()

    def wire_bytes(self) -> int:
        return (
            BASE_BYTES
            + 12
            + PID_BYTES * (len(self.members) + len(self.prior))
            + VECTOR_ENTRY_BYTES * len(self.cut)
        )


@dataclass(frozen=True)
class Presence:
    """Periodic beacon of an installed view, broadcast by every member.

    Presence drives partition merge and repairs diverged views: a member
    that hears a beacon describing a different member set proposes the
    union (if it is the smallest live process of that union).
    """

    group: str
    view_id: ViewId
    members: Tuple[ProcessId, ...]
    sender: ProcessId
    # A counter-advertisement sent in response to a beacon.  Replies
    # never solicit further replies, or two daemons with diverged views
    # would ping-pong presence messages forever.
    is_reply: bool = False

    def wire_bytes(self) -> int:
        return BASE_BYTES + 13 + PID_BYTES * (len(self.members) + 1)


@dataclass(frozen=True)
class OpenGroupSend:
    """A message to a group from a non-member (open-group semantics).

    ``reply_to`` lets receivers answer the anonymous sender directly.
    """

    group: str
    sender: ProcessId
    payload: Any
    payload_bytes: int
    request_id: int

    def wire_bytes(self) -> int:
        return BASE_BYTES + PID_BYTES + 8 + self.payload_bytes


@dataclass(frozen=True)
class PointToPoint:
    """A reliable unicast between processes (acked, retried)."""

    sender: ProcessId
    target: ProcessId
    seq: int
    payload: Any
    payload_bytes: int

    def wire_bytes(self) -> int:
        return BASE_BYTES + 2 * PID_BYTES + 8 + self.payload_bytes


@dataclass(frozen=True)
class PointToPointAck:
    """Ack for :class:`PointToPoint`."""

    sender: ProcessId
    target: ProcessId
    seq: int

    def wire_bytes(self) -> int:
        return BASE_BYTES + 2 * PID_BYTES + 8


@dataclass(frozen=True)
class Retransmission:
    """A re-sent multicast, unicast to the process that NACKed."""

    original: Multicast
    to_daemon: Optional[int] = None

    def wire_bytes(self) -> int:
        return self.original.wire_bytes() + 4
