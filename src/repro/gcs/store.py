"""Per-group reliable-multicast bookkeeping.

For every group a daemon participates in, a :class:`GroupStore` tracks,
per sender:

* which sequence numbers have been *received* (any order);
* the contiguous *delivered* prefix handed to the application (FIFO);
* retained copies of messages for NACK retransmission, evicted once all
  current view members acknowledge delivery (stability).

The store is pure bookkeeping — no timers, no sockets — which makes it
easy to unit- and property-test in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.gcs.messages import Multicast
from repro.gcs.view import ProcessId


@dataclass
class _SenderFlow:
    """Reception state of one sender's FIFO flow."""

    delivered: int = 0  # highest seq delivered to the app (contiguous)
    max_seen: int = 0  # highest seq ever received
    pending: Dict[int, Multicast] = field(default_factory=dict)
    retained: Dict[int, Multicast] = field(default_factory=dict)
    # Virtual time at which the currently blocking gap was first noticed;
    # None when there is no gap.  Used by the endpoint to pace NACKs.
    gap_since: Optional[float] = None


class GroupStore:
    """Reliable FIFO multicast state for one group at one daemon."""

    def __init__(self, group: str, retain_limit: int = 4096) -> None:
        self.group = group
        self.retain_limit = retain_limit
        self._flows: Dict[ProcessId, _SenderFlow] = {}
        # Per-member delivered vectors learned from heartbeats, used for
        # stability-based eviction.
        self._peer_delivered: Dict[ProcessId, Dict[ProcessId, int]] = {}

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def receive(self, message: Multicast, now: float) -> List[Multicast]:
        """Record an arriving multicast; return newly deliverable messages.

        Duplicates and already-delivered sequence numbers are dropped.
        Delivery is FIFO per sender: a message is released only when the
        entire prefix before it has been released.
        """
        flow = self._flow(message.sender)
        if message.seq <= flow.delivered or message.seq in flow.pending:
            return []
        flow.pending[message.seq] = message
        flow.retained[message.seq] = message
        self._trim_retained(flow)
        if message.seq > flow.max_seen:
            flow.max_seen = message.seq

        deliverable: List[Multicast] = []
        while flow.delivered + 1 in flow.pending:
            next_seq = flow.delivered + 1
            deliverable.append(flow.pending.pop(next_seq))
            flow.delivered = next_seq
        # Track whether a gap now blocks this flow, for NACK pacing.
        if flow.max_seen > flow.delivered:
            if flow.gap_since is None:
                flow.gap_since = now
        else:
            flow.gap_since = None
        return deliverable

    def note_remote_progress(
        self, sender: ProcessId, seq: int, now: float
    ) -> None:
        """A peer advertises it delivered ``sender``'s flow up to ``seq``.

        If that is beyond what we have, a message we never saw exists —
        the classic silent-loss case a gap-driven NACK cannot detect
        (nothing arrived after the lost message).  Raising ``max_seen``
        makes the ordinary NACK machinery recover it."""
        flow = self._flow(sender)
        if seq > flow.max_seen:
            flow.max_seen = seq
        if flow.max_seen > flow.delivered and flow.gap_since is None:
            flow.gap_since = now

    def record_own(self, message: Multicast) -> None:
        """Retain a locally originated multicast for retransmission."""
        flow = self._flow(message.sender)
        flow.retained[message.seq] = message
        flow.delivered = max(flow.delivered, message.seq)
        flow.max_seen = max(flow.max_seen, message.seq)
        self._trim_retained(flow)

    # ------------------------------------------------------------------
    # Gap / NACK support
    # ------------------------------------------------------------------
    def gaps(self, now: float, min_age: float) -> List[Tuple[ProcessId, int, int]]:
        """(sender, from_seq, to_seq) ranges blocked for at least min_age."""
        result = []
        for sender, flow in self._flows.items():
            if flow.gap_since is None or now - flow.gap_since < min_age:
                continue
            missing = [
                seq
                for seq in range(flow.delivered + 1, flow.max_seen + 1)
                if seq not in flow.pending
            ]
            if missing:
                result.append((sender, missing[0], missing[-1]))
        return result

    def retained_range(
        self, sender: ProcessId, from_seq: int, to_seq: int
    ) -> Iterator[Multicast]:
        """Retained copies of ``sender``'s messages within the range."""
        flow = self._flows.get(sender)
        if flow is None:
            return iter(())
        return iter(
            [
                flow.retained[seq]
                for seq in range(from_seq, to_seq + 1)
                if seq in flow.retained
            ]
        )

    # ------------------------------------------------------------------
    # Flush support
    # ------------------------------------------------------------------
    def known_prefix_vector(self) -> Dict[ProcessId, int]:
        """Per-sender contiguous prefix this daemon can deliver."""
        return {sender: flow.delivered for sender, flow in self._flows.items()}

    def satisfies_cut(self, cut: Dict[ProcessId, int]) -> bool:
        """True when the delivered prefix reaches ``cut`` for every sender."""
        for sender, seq in cut.items():
            flow = self._flows.get(sender)
            delivered = flow.delivered if flow is not None else 0
            if delivered < seq:
                return False
        return True

    def deficits(
        self, cut: Dict[ProcessId, int]
    ) -> List[Tuple[ProcessId, int, int]]:
        """Ranges still missing to reach the cut: (sender, from, to)."""
        missing = []
        for sender, seq in cut.items():
            flow = self._flow(sender)
            if flow.delivered < seq:
                missing.append((sender, flow.delivered + 1, seq))
        return missing

    def adopt_baseline(self, cut: Dict[ProcessId, int]) -> None:
        """Fast-forward delivered prefixes to ``cut`` without delivering.

        Used by a process that joins an existing group: history before
        the join view is not delivered to it (virtual-synchrony join
        semantics), so its FIFO counters must start at the flush cut or
        the first in-view message would look like an unfillable gap.
        """
        for sender, seq in cut.items():
            flow = self._flow(sender)
            if flow.delivered >= seq:
                continue
            flow.delivered = seq
            flow.max_seen = max(flow.max_seen, seq)
            for stale in [s for s in flow.pending if s <= seq]:
                del flow.pending[stale]
            if flow.max_seen <= flow.delivered:
                flow.gap_since = None

    # ------------------------------------------------------------------
    # Stability-based eviction
    # ------------------------------------------------------------------
    def update_peer_vector(
        self, peer: ProcessId, vector: Dict[ProcessId, int]
    ) -> None:
        self._peer_delivered[peer] = dict(vector)

    def forget_peer(self, peer: ProcessId) -> None:
        self._peer_delivered.pop(peer, None)

    def evict_stable(self, members: List[ProcessId]) -> int:
        """Drop retained messages delivered by every current member."""
        vectors = [
            self._peer_delivered.get(member) for member in members
        ]
        if any(vector is None for vector in vectors):
            return 0
        evicted = 0
        for sender, flow in self._flows.items():
            stable_upto = min(vector.get(sender, 0) for vector in vectors)
            stale = [seq for seq in flow.retained if seq <= stable_upto]
            for seq in stale:
                del flow.retained[seq]
            evicted += len(stale)
        return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def delivered_seq(self, sender: ProcessId) -> int:
        flow = self._flows.get(sender)
        return flow.delivered if flow is not None else 0

    def retained_count(self) -> int:
        return sum(len(flow.retained) for flow in self._flows.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flow(self, sender: ProcessId) -> _SenderFlow:
        flow = self._flows.get(sender)
        if flow is None:
            flow = _SenderFlow()
            self._flows[sender] = flow
        return flow

    def _trim_retained(self, flow: _SenderFlow) -> None:
        # Bound memory: drop the oldest retained entries beyond the limit.
        # Unstable messages may be dropped under sustained overload; a
        # NACK for them is then answered by another member's copy.
        if len(flow.retained) <= self.retain_limit:
            return
        for seq in sorted(flow.retained)[: len(flow.retained) - self.retain_limit]:
            del flow.retained[seq]
