"""Totally-ordered ("agreed") multicast on top of a group.

Transis offered *agreed* delivery alongside FIFO; the VoD paper's
control plane only needs FIFO, but the authors note the concepts "may
be exploited to construct a variety of highly available servers" — many
of which (e.g. replicated state machines over the movie catalog) need
total order.  This layer adds it with the classic fixed-sequencer
construction:

* every agreed message is FIFO-multicast in the group, tagged with a
  local sequence id;
* the current view's **coordinator** acts as sequencer: it FIFO-
  multicasts an ordering token (sender, local id) -> global sequence
  number;
* members deliver messages in global-sequence order, holding back
  arrivals until their token (and every earlier token's message) is in.

View changes re-anchor the order: the flush protocol equalizes FIFO
streams, so all members of the next view hold the same ordered prefix;
a new coordinator simply continues assigning global numbers.  Messages
whose token never appeared (the sequencer died first) are re-proposed
to the new sequencer by their original sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.gcs.endpoint import GcsEndpoint, GroupHandle, GroupListener
from repro.gcs.view import ProcessId, View

DeliverFn = Callable[[ProcessId, Any], None]
ViewFn = Callable[[View], None]


@dataclass(frozen=True)
class _Payload:
    """An agreed message as carried inside the FIFO multicast."""

    sender: ProcessId
    local_id: int
    body: Any


@dataclass(frozen=True)
class _Token:
    """Sequencer ordering decision: (sender, local_id) gets seq."""

    sender: ProcessId
    local_id: int
    seq: int


@dataclass
class _PendingOrder:
    payloads: Dict[Tuple[ProcessId, int], _Payload] = field(default_factory=dict)
    tokens: Dict[int, _Token] = field(default_factory=dict)
    next_deliver: int = 1


class TotalOrderGroup:
    """An agreed-multicast endpoint on one group.

    Create one per process with the same group name; use
    :meth:`multicast` to send and receive ordered messages through the
    ``on_deliver`` callback.  Delivery order is identical at every
    member that stays in the group.
    """

    def __init__(
        self,
        endpoint: GcsEndpoint,
        group: str,
        process_name: str,
        on_deliver: Optional[DeliverFn] = None,
        on_view: Optional[ViewFn] = None,
    ) -> None:
        self.endpoint = endpoint
        self.group = group
        self.on_deliver = on_deliver or (lambda sender, body: None)
        self.on_view_cb = on_view or (lambda view: None)
        self._local_id = 0
        self._state = _PendingOrder()
        self._delivered: List[Tuple[ProcessId, Any]] = []
        # Sequencer-local memory of keys already given a token.  The
        # token multicast may still be queued behind a flush (blocked
        # sends are invisible locally), so dedup cannot rely on the
        # received-token set alone.
        self._assigned_keys: set = set()
        # Keys already handed to the application: a key can end up with
        # two tokens when sequencer roles change hands mid-flush; the
        # first (lowest-seq) token wins at every member, later ones are
        # consumed silently.
        self._delivered_keys: set = set()
        # Messages we sent that have no token yet: re-proposed to a new
        # sequencer after a view change.
        self._unordered_own: Dict[int, _Payload] = {}
        self._next_seq_to_assign = 1
        self.handle: GroupHandle = endpoint.join(
            group,
            process_name,
            GroupListener(on_view=self._on_view, on_message=self._on_message),
        )
        self.process = self.handle.process

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def multicast(self, body: Any, payload_bytes: int = 64) -> None:
        """Send one agreed (totally ordered) message to the group."""
        self._local_id += 1
        payload = _Payload(self.process, self._local_id, body)
        self._unordered_own[self._local_id] = payload
        self.handle.multicast(payload, payload_bytes + 16)

    @property
    def view(self) -> Optional[View]:
        return self.handle.view

    @property
    def delivered(self) -> List[Tuple[ProcessId, Any]]:
        """All agreed deliveries so far, in order (for testing/audit)."""
        return list(self._delivered)

    def leave(self) -> None:
        self.handle.leave()

    # ------------------------------------------------------------------
    # Sequencing
    # ------------------------------------------------------------------
    def _is_sequencer(self) -> bool:
        view = self.handle.view
        return view is not None and view.coordinator == self.process

    def _on_message(self, sender: ProcessId, message: Any) -> None:
        if isinstance(message, _Payload):
            key = (message.sender, message.local_id)
            if key not in self._state.payloads:
                self._state.payloads[key] = message
                if self._is_sequencer():
                    self._assign_token(message)
        elif isinstance(message, _Token):
            self._state.tokens[message.seq] = message
            self._next_seq_to_assign = max(
                self._next_seq_to_assign, message.seq + 1
            )
            if message.sender == self.process:
                self._unordered_own.pop(message.local_id, None)
        self._drain()

    def _assign_token(self, payload: _Payload) -> None:
        key = (payload.sender, payload.local_id)
        if key in self._assigned_keys:
            return
        if any(
            (token.sender, token.local_id) == key
            for token in self._state.tokens.values()
        ):
            return
        self._assigned_keys.add(key)
        token = _Token(payload.sender, payload.local_id, self._next_seq_to_assign)
        self._next_seq_to_assign += 1
        self.handle.multicast(token, 24)

    def _drain(self) -> None:
        state = self._state
        while True:
            token = state.tokens.get(state.next_deliver)
            if token is None:
                return
            payload = state.payloads.get((token.sender, token.local_id))
            if payload is None:
                return
            state.next_deliver += 1
            key = (token.sender, token.local_id)
            if key in self._delivered_keys:
                continue  # a second token for the same message
            self._delivered_keys.add(key)
            self._delivered.append((payload.sender, payload.body))
            self.on_deliver(payload.sender, payload.body)

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _on_view(self, view: View) -> None:
        # The flush equalized the FIFO streams, so every surviving
        # member holds the same payloads and tokens.  If we are the new
        # sequencer, order everything that is still unordered.
        if self._is_sequencer():
            ordered = {
                (token.sender, token.local_id)
                for token in self._state.tokens.values()
            }
            for key in sorted(self._state.payloads):
                if key not in ordered:
                    self._assign_token(self._state.payloads[key])
        # Re-propose our own unordered messages: their payload multicast
        # may have died with the old view.
        for local_id in sorted(self._unordered_own):
            payload = self._unordered_own[local_id]
            self.handle.multicast(payload, 80)
        self.on_view_cb(view)
