"""GCS domain: the configured set of daemons.

A real Transis deployment knows its daemons from configuration files;
the :class:`GcsDomain` plays that role — every endpoint created through
it can broadcast control messages to all others.  Daemons added later
(a server brought up on the fly) become visible to everyone, which
models updating the configuration out of band.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.net.network import Network
from repro.sim.core import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gcs.endpoint import GcsEndpoint
    from repro.gcs.view import View

#: (daemon node id, group name, installed view) — see ``add_view_observer``.
ViewObserver = Callable[[int, str, "View"], None]


class GcsDomain:
    """Registry of all GCS daemons in one deployment."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        fd_timeout: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.fd_timeout = fd_timeout
        self._endpoints: Dict[int, "GcsEndpoint"] = {}
        self._view_observers: List[ViewObserver] = []

    # ------------------------------------------------------------------
    # Observation hooks (used by repro.faulting.InvariantChecker)
    # ------------------------------------------------------------------
    def add_view_observer(self, observer: ViewObserver) -> None:
        """Observe every view installation by any daemon in the domain.

        Observers are read-only taps: they must not mutate GCS state.
        """
        self._view_observers.append(observer)

    def remove_view_observer(self, observer: ViewObserver) -> None:
        if observer in self._view_observers:
            self._view_observers.remove(observer)

    def notify_view_installed(self, daemon_id: int, group: str, view: "View") -> None:
        for observer in self._view_observers:
            observer(daemon_id, group, view)

    def create_endpoint(self, node_id: int) -> "GcsEndpoint":
        """Start a GCS daemon on ``node_id`` and register it domain-wide."""
        from repro.gcs.endpoint import GcsEndpoint
        from repro.gcs.failure_detector import DEFAULT_TIMEOUT

        if node_id in self._endpoints and not self._endpoints[node_id].closed:
            raise ValueError(f"node {node_id} already runs a GCS daemon")
        endpoint = GcsEndpoint(
            self,
            self.network.node(node_id),
            fd_timeout=self.fd_timeout or DEFAULT_TIMEOUT,
        )
        self._endpoints[node_id] = endpoint
        return endpoint

    def remove_endpoint(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)

    def daemon_nodes(self) -> List[int]:
        """Node ids of all registered daemons (the 'configuration file')."""
        return sorted(self._endpoints)

    def endpoint(self, node_id: int) -> "GcsEndpoint":
        return self._endpoints[node_id]

    def __len__(self) -> int:
        return len(self._endpoints)
