"""Causally-ordered multicast on top of a group.

Transis provided *causal* delivery between FIFO and agreed: a message is
delivered only after every message its sender had delivered when sending
it.  The construction is the classic vector-clock scheme:

* each member keeps a vector ``delivered[member] = count`` of messages
  delivered per sender;
* a message carries its sender's vector at send time (its causal past);
* a received message is held back until the local vector dominates the
  carried one (everything the sender had seen is delivered here too).

View changes are benign: the underlying flush equalizes FIFO streams, so
surviving members hold identical sets, and vector entries of departed
members stay frozen.  New joiners adopt the first message's vector as a
baseline (they do not receive pre-join history).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.gcs.endpoint import GcsEndpoint, GroupHandle, GroupListener
from repro.gcs.view import ProcessId, View

DeliverFn = Callable[[ProcessId, Any], None]


@dataclass(frozen=True)
class _CausalPayload:
    sender: ProcessId
    seq: int  # per-sender counter (1-based)
    past: Tuple[Tuple[ProcessId, int], ...]  # sender's vector at send
    body: Any


@dataclass
class _Held:
    payload: _CausalPayload


class CausalGroup:
    """A causal-multicast endpoint on one group."""

    def __init__(
        self,
        endpoint: GcsEndpoint,
        group: str,
        process_name: str,
        on_deliver: Optional[DeliverFn] = None,
    ) -> None:
        self.endpoint = endpoint
        self.group = group
        self.on_deliver = on_deliver or (lambda sender, body: None)
        self._delivered_count: Dict[ProcessId, int] = {}
        self._held: List[_Held] = []
        self._joined_mid_stream = True
        self.delivered: List[Tuple[ProcessId, Any]] = []
        self.handle: GroupHandle = endpoint.join(
            group,
            process_name,
            GroupListener(on_view=self._on_view, on_message=self._on_message),
        )
        self.process = self.handle.process

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def multicast(self, body: Any, payload_bytes: int = 64) -> None:
        """Send a message causally after everything delivered here."""
        seq = self._delivered_count.get(self.process, 0) + 1
        payload = _CausalPayload(
            sender=self.process,
            seq=seq,
            past=tuple(sorted(self._delivered_count.items())),
            body=body,
        )
        vector_bytes = 12 * len(payload.past)
        self.handle.multicast(payload, payload_bytes + vector_bytes + 16)

    @property
    def view(self) -> Optional[View]:
        return self.handle.view

    def vector(self) -> Dict[ProcessId, int]:
        """The current delivered-count vector (for tests/diagnostics)."""
        return dict(self._delivered_count)

    def leave(self) -> None:
        self.handle.leave()

    # ------------------------------------------------------------------
    # Delivery machinery
    # ------------------------------------------------------------------
    def _on_message(self, sender: ProcessId, message: Any) -> None:
        if not isinstance(message, _CausalPayload):
            return
        if self._joined_mid_stream:
            # First causal message after our join: anything in its past
            # predates us and will never be delivered here.  Adopt that
            # past as the baseline (virtual-synchrony join semantics).
            for member, count in message.past:
                if self._delivered_count.get(member, 0) < count:
                    self._delivered_count[member] = count
            self._joined_mid_stream = False
        self._held.append(_Held(message))
        self._drain()

    def _deliverable(self, payload: _CausalPayload) -> bool:
        # FIFO-per-sender component of causality:
        if payload.seq != self._delivered_count.get(payload.sender, 0) + 1:
            return False
        # The sender's causal past must be delivered here.
        for member, count in payload.past:
            if member == payload.sender:
                continue
            if self._delivered_count.get(member, 0) < count:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for held in list(self._held):
                payload = held.payload
                if not self._deliverable(payload):
                    continue
                self._held.remove(held)
                self._delivered_count[payload.sender] = payload.seq
                self.delivered.append((payload.sender, payload.body))
                self.on_deliver(payload.sender, payload.body)
                progressed = True

    def _on_view(self, view: View) -> None:
        # Departed members' vector entries freeze; held messages whose
        # past references only departed members' frozen counts remain
        # deliverable because the flush equalized those FIFO streams.
        self._drain()
