"""Per-group membership and reliable multicast state machine.

One :class:`GroupMember` instance manages a daemon's participation in a
single group: joining, view proposals, the flush protocol, FIFO reliable
multicast with NACK recovery, partition merge, and graceful leave.

Protocol sketch (coordinator-driven virtual synchrony):

* The *coordinator* of a view is its smallest live member.  On any
  membership change trigger (join request, leave request, suspicion,
  partition merge) the coordinator proposes a new view with a higher
  :class:`~repro.gcs.view.ViewId`.
* On ``Propose`` every member blocks its own new multicasts and
  broadcasts a *flush vector* — its per-sender contiguous delivered
  prefix.  Members holding messages a peer is missing unicast them.
* A member that has caught up to the element-wise maximum of all vectors
  sends ``FlushOk``; when the proposer holds ``FlushOk`` from everyone it
  broadcasts ``ViewCommit``, and members install the view, release
  blocked sends and notify the application.
* Control messages are re-broadcast on a fast tick until superseded, so
  the protocol tolerates message loss without per-message acks.
* If the proposer's daemon is suspected mid-flush, the smallest live
  proposed member re-proposes with a higher view id.  Concurrent
  proposals are resolved by highest view id.

The daemon (endpoint) injects its services via duck typing; see
:class:`repro.gcs.endpoint.GcsEndpoint` for the concrete provider of
``now``, ``send_to_daemon``, ``broadcast_domain``, ``suspected_daemons``
and ``daemon_of``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NotMemberError
from repro.gcs.messages import (
    FlushOk,
    FlushVector,
    JoinRequest,
    LeaveRequest,
    Multicast,
    Nack,
    Propose,
    Retransmission,
    ViewCommit,
)
from repro.gcs.store import GroupStore
from repro.gcs.view import ProcessId, View, ViewId

#: Fast control tick: drives re-broadcasts during flush and NACK pacing.
TICK_INTERVAL = 0.05
#: A joiner that hears nothing for this long forms a singleton view.
JOIN_SINGLETON_TIMEOUT = 0.4
#: Joiner re-broadcasts its JoinRequest at this period until in a view.
JOIN_RETRY_INTERVAL = 0.25
#: Proposer re-proposes (excluding newly suspected members) after this.
FLUSH_TIMEOUT = 0.8
#: Participant takes over a proposal whose proposer died after this.
COMMIT_TIMEOUT = 1.4
#: A delivery gap must persist this long before a NACK is emitted.
NACK_MIN_AGE = 0.04
#: A member whose flush deficit nobody can answer (e.g. the messages
#: were stable — and thus evicted — in another partition) gives up
#: equalizing after this long and adopts the commit cut instead.
FLUSH_STALL_ADOPT = 1.0


class MemberState(enum.Enum):
    JOINING = "joining"
    NORMAL = "normal"
    FLUSHING = "flushing"
    LEFT = "left"


@dataclass
class _Proposal:
    """Shared state of an in-progress view change (proposer & member)."""

    view_id: ViewId
    members: Tuple[ProcessId, ...]
    proposer: ProcessId
    started_at: float
    # Start of the flush *episode*: carried over from the previous
    # proposal when a re-proposal keeps the same member set, so the
    # FLUSH_STALL_ADOPT escape measures total stall time rather than
    # restarting at every FLUSH_TIMEOUT re-proposal.
    flush_since: float = 0.0
    prior: Tuple[ProcessId, ...] = ()
    vectors: Dict[ProcessId, Dict[ProcessId, int]] = field(default_factory=dict)
    flush_oks: Set[ProcessId] = field(default_factory=set)
    sent_flush_ok: bool = False
    committed: Optional[ViewCommit] = None

    def cut(self) -> Dict[ProcessId, int]:
        """Element-wise max of all received flush vectors."""
        cut: Dict[ProcessId, int] = {}
        for vector in self.vectors.values():
            for sender, seq in vector.items():
                if seq > cut.get(sender, 0):
                    cut[sender] = seq
        return cut


class GroupMember:
    """A daemon's participation in one group for one local process."""

    def __init__(
        self,
        endpoint: Any,
        group: str,
        local: ProcessId,
        on_view: Callable[[View], None],
        on_message: Callable[[ProcessId, Any], None],
    ) -> None:
        self.endpoint = endpoint
        self.group = group
        self.local = local
        self.on_view = on_view
        self.on_message = on_message

        self.state = MemberState.JOINING
        self.view: Optional[View] = None
        self.proposal: Optional[_Proposal] = None
        self.store = GroupStore(group)
        self.pending_joins: Set[ProcessId] = set()
        self.pending_leaves: Set[ProcessId] = set()
        self._next_seq = 0
        self._blocked_sends: List[Tuple[Any, int]] = []
        self._joined_at = endpoint.now
        self._last_join_retry = endpoint.now
        self.installed_views = 0
        self._last_commit: Optional[ViewCommit] = None

        self._announce_join()

    # ==================================================================
    # Application-facing operations
    # ==================================================================
    def multicast(self, payload: Any, payload_bytes: int) -> None:
        """Reliable FIFO multicast to the current view.

        During a flush the message is queued and sent right after the new
        view is installed (sending is blocked by the flush protocol).
        """
        if self.state == MemberState.LEFT:
            raise NotMemberError(f"{self.local} has left group {self.group!r}")
        if self.state != MemberState.NORMAL or self.view is None:
            self._blocked_sends.append((payload, payload_bytes))
            return
        self._send_multicast(payload, payload_bytes)

    def leave(self) -> None:
        """Gracefully leave the group."""
        if self.state == MemberState.LEFT:
            return
        self.state = MemberState.LEFT
        request = LeaveRequest(self.group, self.local)
        self.endpoint.broadcast_domain(request)
        self.endpoint.note_left_process(self.group, self.local)

    @property
    def is_member(self) -> bool:
        return self.state in (MemberState.NORMAL, MemberState.FLUSHING)

    # ==================================================================
    # Message handlers (invoked by the endpoint dispatcher)
    # ==================================================================
    def on_join_request(self, request: JoinRequest) -> None:
        if self.state == MemberState.LEFT:
            return
        if request.process == self.local:
            return
        if self.view is not None and request.process in self.view:
            return
        self.pending_joins.add(request.process)
        self.pending_leaves.discard(request.process)
        self._maybe_propose()

    def on_leave_request(self, request: LeaveRequest) -> None:
        if self.state == MemberState.LEFT or request.process == self.local:
            return
        if self.view is None or request.process not in self.view:
            self.pending_joins.discard(request.process)
            return
        self.pending_leaves.add(request.process)
        self.pending_joins.discard(request.process)
        self._maybe_propose()

    def on_propose(self, propose: Propose) -> None:
        if self.state == MemberState.LEFT:
            return
        if self.local not in propose.members:
            return  # a view that excludes us; we will rejoin if needed
        if not self._id_acceptable(propose.view_id):
            return
        current = self.proposal
        if current is not None and current.view_id == propose.view_id:
            return  # duplicate of the proposal we are already flushing
        self._start_flush(
            propose.view_id, propose.members, propose.view_id.proposer,
            propose.prior,
        )

    def on_flush_vector(self, message: FlushVector) -> None:
        proposal = self.proposal
        if proposal is None or message.view_id != proposal.view_id:
            return
        proposal.vectors[message.sender] = dict(message.vector)
        self._retransmit_deficits(message.sender, message.vector)
        self._check_flush_progress()

    def on_flush_ok(self, message: FlushOk) -> None:
        proposal = self.proposal
        if proposal is None or message.view_id != proposal.view_id:
            # A member still flushing a view we already installed lost
            # the commit (e.g. to queue drop): answer with our copy.
            last = self._last_commit
            if (
                last is not None
                and message.view_id == last.view_id
                and message.sender != self.local
            ):
                self.endpoint.send_to_daemon(
                    self.endpoint.daemon_of(message.sender), last
                )
            return
        if proposal.proposer != self.local:
            return
        proposal.flush_oks.add(message.sender)
        self._maybe_commit()

    def on_view_commit(self, commit: ViewCommit) -> None:
        if self.state == MemberState.LEFT:
            return
        if self.local not in commit.members:
            return
        installed = self.view.view_id if self.view is not None else None
        if installed is not None and commit.view_id <= installed:
            return
        self._install_view(commit)

    def on_multicast(self, message: Multicast) -> None:
        if self.state == MemberState.LEFT:
            return
        for delivered in self.store.receive(message, self.endpoint.now):
            self.on_message(delivered.sender, delivered.payload)
        if self.proposal is not None:
            # Progress during flush: our vector grew, peers may be waiting.
            self._check_flush_progress()

    def on_nack(self, nack: Nack, from_daemon: int) -> None:
        for message in self.store.retained_range(
            nack.origin, nack.missing_from, nack.missing_to
        ):
            self.endpoint.send_to_daemon(from_daemon, Retransmission(message))

    def on_presence(self, view_id: ViewId, members: Tuple[ProcessId, ...]) -> None:
        """Merge detection: a member heard a beacon of a diverged view.

        The rule is symmetric and idempotent: compute the union of the
        two member sets (restricted to live processes); the smallest live
        process of the union proposes it with a counter above both views.
        Beacons repeat every second, so a lost proposal is retried.
        """
        if self.state != MemberState.NORMAL or self.view is None:
            return
        foreign = set(members)
        ours = set(self.view.members)
        if foreign == ours:
            return
        union = self._filter_live(foreign | ours)
        union.add(self.local)
        # Note: union == ours still re-proposes (with a counter above
        # both views) — that is exactly how a strayed member whose view
        # diverged *downward* gets pulled back into the full view.
        if min(union) != self.local:
            return
        counter = max(self.view.view_id.counter, view_id.counter) + 1
        self._propose(ViewId(counter, self.local), tuple(sorted(union)))

    # ==================================================================
    # Periodic driving (called by the endpoint)
    # ==================================================================
    def tick(self) -> None:
        if self.state == MemberState.LEFT:
            return
        now = self.endpoint.now
        if self.state == MemberState.JOINING:
            self._tick_joining(now)
            return
        if self.proposal is not None:
            self._tick_flush(now)
        self._tick_nacks(now)

    def on_suspicion_change(self) -> None:
        """FD output changed; re-evaluate coordinator duties."""
        if self.state == MemberState.LEFT:
            return
        self._maybe_propose()

    def heartbeat_vector(self) -> Dict[ProcessId, int]:
        """Delivered-prefix vector piggybacked on daemon heartbeats."""
        return self.store.known_prefix_vector()

    def on_peer_vector(self, peer: ProcessId, vector: Dict[ProcessId, int]) -> None:
        self.store.update_peer_vector(peer, vector)
        if self.view is not None:
            # Heartbeat vectors double as loss detection: a peer that
            # delivered further than us on some flow reveals messages we
            # silently lost (no later traffic ever exposed the gap).
            for sender, seq in vector.items():
                if sender != self.local and sender in self.view.member_set:
                    self.store.note_remote_progress(
                        sender, seq, self.endpoint.now
                    )
            self.store.evict_stable(list(self.view.members))

    # ==================================================================
    # Internals: joining
    # ==================================================================
    def _announce_join(self) -> None:
        self.endpoint.broadcast_domain(JoinRequest(self.group, self.local))

    def _tick_joining(self, now: float) -> None:
        if self.proposal is not None:
            # A proposal including us is in flight; flush handling applies.
            self._tick_flush(now)
            return
        if now - self._joined_at >= JOIN_SINGLETON_TIMEOUT:
            self._install_singleton()
            return
        if now - self._last_join_retry >= JOIN_RETRY_INTERVAL:
            self._last_join_retry = now
            self._announce_join()

    def _install_singleton(self) -> None:
        view_id = ViewId(1, self.local)
        commit = ViewCommit(self.group, view_id, (self.local,), {}, prior=())
        self._install_view(commit)

    # ==================================================================
    # Internals: proposing
    # ==================================================================
    def _maybe_propose(self) -> None:
        """Propose a view change if we are the acting coordinator and the
        live membership differs from the installed view."""
        if self.state not in (MemberState.NORMAL, MemberState.FLUSHING):
            return
        if self.view is None:
            return
        live = self._filter_live(set(self.view.members))
        # Members that announced a graceful leave no longer participate:
        # they must not be counted on to act as coordinator.
        candidates = (live - self.pending_leaves) | {self.local}
        if self._acting_coordinator(candidates) != self.local:
            return
        desired = set(live)
        desired |= {p for p in self.pending_joins if self._is_live(p)}
        desired -= self.pending_leaves
        desired.add(self.local)
        if desired == set(self.view.members) and self.proposal is None:
            return
        if self.proposal is not None:
            flushing_live = self._filter_live(set(self.proposal.members))
            flushing_live |= {p for p in self.pending_joins if self._is_live(p)}
            flushing_live -= self.pending_leaves
            flushing_live.add(self.local)
            if flushing_live == set(self.proposal.members):
                return  # current proposal already matches; let it finish
            base_counter = max(
                self.view.view_id.counter, self.proposal.view_id.counter
            )
        else:
            if desired == set(self.view.members):
                return
            base_counter = self.view.view_id.counter
        view_id = ViewId(base_counter + 1, self.local)
        self._propose(view_id, tuple(sorted(desired)))

    def _propose(self, view_id: ViewId, members: Tuple[ProcessId, ...]) -> None:
        prior = self.view.members if self.view is not None else ()
        propose = Propose(self.group, view_id, members, prior=prior)
        self._broadcast_to(members, propose)
        self._start_flush(view_id, members, self.local, prior)

    def _acting_coordinator(self, live: Set[ProcessId]) -> Optional[ProcessId]:
        if not live:
            return self.local
        return min(live)

    # ==================================================================
    # Internals: flushing
    # ==================================================================
    def _telemetry(self):
        """The endpoint's active telemetry bus, or None.

        Defensive: unit tests drive GroupMember with stub endpoints that
        have no simulator behind them.
        """
        sim = getattr(self.endpoint, "sim", None)
        if sim is None:
            return None
        tel = sim.telemetry
        return tel if tel.active else None

    def _change_cause(self, tel, members, view: Optional[View] = None):
        """The causal id behind this membership change, if any is known.

        A view change is caused by whatever removed (crashed node) or
        added (ServerUp) daemons relative to our current view; those
        events attributed their nodes, so look the cause up from the
        symmetric difference.  Falls back to the ambient cause.  Only
        called on an *active* bus (via :meth:`_telemetry`).
        """
        if view is not None:
            changed = tuple(view.departed) + tuple(view.joined)
        else:
            old = set(self.view.members) if self.view is not None else set()
            changed = tuple(old.symmetric_difference(members))
        return tel.cause_for(*(f"node:{p.node}" for p in changed))

    def _start_flush(
        self,
        view_id: ViewId,
        members: Tuple[ProcessId, ...],
        proposer: ProcessId,
        prior: Tuple[ProcessId, ...] = (),
    ) -> None:
        now = self.endpoint.now
        flush_since = now
        previous = self.proposal
        if previous is not None and set(previous.members) == set(members):
            # Counter escalation over the same member set is a retry of
            # the same flush, not a new membership change: keep the
            # episode clock.  Without this a proposer whose cut demands
            # messages a merged-in component already evicted as stable
            # re-proposes at FLUSH_TIMEOUT < FLUSH_STALL_ADOPT forever
            # and the merge never commits.
            flush_since = previous.flush_since
        tel = self._telemetry()
        if tel is not None and flush_since == now:
            fields = {}
            cause = self._change_cause(tel, members)
            if cause is not None:
                fields["cause"] = cause
            tel.emit(
                "gcs.flush.begin",
                daemon=self.endpoint.daemon_id,
                group=self.group,
                view=str(view_id),
                members=len(members),
                **fields,
            )
        self.proposal = _Proposal(
            view_id=view_id,
            members=tuple(sorted(members)),
            proposer=proposer,
            started_at=now,
            flush_since=flush_since,
            prior=tuple(sorted(prior)),
        )
        if self.state == MemberState.NORMAL:
            self.state = MemberState.FLUSHING
        self._broadcast_vector()
        self._check_flush_progress()

    def _broadcast_vector(self) -> None:
        proposal = self.proposal
        vector = FlushVector(
            self.group, proposal.view_id, self.local, self.store.known_prefix_vector()
        )
        proposal.vectors[self.local] = dict(vector.vector)
        self._broadcast_to(proposal.members, vector)

    def _retransmit_deficits(
        self, peer: ProcessId, peer_vector: Dict[ProcessId, int]
    ) -> None:
        """Unicast messages the peer is missing relative to our store.

        Only peers of our *current* view are equalized: a fresh joiner
        (or a foreign partition component) is not entitled to history —
        it fast-forwards via the commit cut — and replaying a long
        backlog at it would flood the network during the flush."""
        if peer == self.local:
            return
        if self.view is None or peer not in self.view.member_set:
            return
        daemon = self.endpoint.daemon_of(peer)
        own_vector = self.store.known_prefix_vector()
        for sender, our_seq in own_vector.items():
            peer_seq = peer_vector.get(sender, 0)
            if peer_seq >= our_seq:
                continue
            for message in self.store.retained_range(sender, peer_seq + 1, our_seq):
                self.endpoint.send_to_daemon(daemon, Retransmission(message))

    def _component_cut(self, proposal: _Proposal) -> Dict[ProcessId, int]:
        """The flush target this member must reach before FlushOk.

        Virtual synchrony only requires equalizing with members of our
        *own* previous view (our partition component).  Messages that
        were delivered — and possibly already evicted as stable — in a
        foreign component are not replayed to us; we fast-forward past
        them via :meth:`GroupStore.adopt_baseline` at installation.
        """
        if self.view is None:
            return {}
        component = set(self.view.members) & set(proposal.members)
        cut: Dict[ProcessId, int] = {}
        for member in component:
            for sender, seq in proposal.vectors.get(member, {}).items():
                if seq > cut.get(sender, 0):
                    cut[sender] = seq
        return cut

    def _check_flush_progress(self) -> None:
        proposal = self.proposal
        if proposal is None:
            return
        if self.view is not None:
            # Existing members wait for every vector and catch up to
            # their component's cut.  Fresh joiners (no installed view)
            # have no history to equalize — they FlushOk immediately and
            # adopt the commit's cut as their FIFO baseline at install.
            have_all_vectors = all(
                member in proposal.vectors for member in proposal.members
            )
            if not have_all_vectors:
                return
            stalled = (
                self.endpoint.now - proposal.flush_since > FLUSH_STALL_ADOPT
            )
            if not self.store.satisfies_cut(self._component_cut(proposal)):
                if not stalled:
                    return
        if not proposal.sent_flush_ok:
            proposal.sent_flush_ok = True
        flush_ok = FlushOk(self.group, proposal.view_id, self.local)
        if proposal.proposer == self.local:
            self.on_flush_ok(flush_ok)
        else:
            self.endpoint.send_to_daemon(
                self.endpoint.daemon_of(proposal.proposer), flush_ok
            )

    def _maybe_commit(self) -> None:
        proposal = self.proposal
        if proposal is None or proposal.proposer != self.local:
            return
        if proposal.committed is not None:
            self._broadcast_to(proposal.members, proposal.committed)
            return
        if not all(member in proposal.flush_oks for member in proposal.members):
            return
        commit = ViewCommit(
            self.group,
            proposal.view_id,
            proposal.members,
            proposal.cut(),
            prior=proposal.prior,
        )
        proposal.committed = commit
        self._broadcast_to(proposal.members, commit)
        self.on_view_commit(commit)

    def _tick_flush(self, now: float) -> None:
        proposal = self.proposal
        if proposal is None:
            return
        # Re-broadcast our control state: loss tolerance without acks.
        self._broadcast_vector()
        if proposal.sent_flush_ok:
            self._check_flush_progress()
        if proposal.committed is not None:
            self._broadcast_to(proposal.members, proposal.committed)
        # Ask for flush-blocking messages we are still missing.
        self._nack_cut_deficits(proposal)

        if proposal.proposer == self.local:
            if now - proposal.started_at > FLUSH_TIMEOUT:
                self._reproposal_excluding_dead(proposal)
        else:
            proposer_gone = (
                not self._is_live(proposal.proposer)
                or proposal.proposer in self.pending_leaves
            )
            if proposer_gone and now - proposal.started_at > COMMIT_TIMEOUT:
                live = self._filter_live(set(proposal.members))
                candidates = (live - self.pending_leaves) | {self.local}
                if self._acting_coordinator(candidates) == self.local:
                    self._reproposal_excluding_dead(proposal)

    def _reproposal_members(self, proposal: _Proposal) -> Set[ProcessId]:
        live = self._filter_live(set(proposal.members))
        live |= {p for p in self.pending_joins if self._is_live(p)}
        live -= self.pending_leaves
        live.add(self.local)
        return live

    def _reproposal_excluding_dead(self, proposal: _Proposal) -> None:
        live = self._reproposal_members(proposal)
        view_id = ViewId(proposal.view_id.counter + 1, self.local)
        self._propose(view_id, tuple(sorted(live)))

    def _nack_cut_deficits(self, proposal: _Proposal) -> None:
        cut = self._component_cut(proposal)
        for sender, from_seq, to_seq in self.store.deficits(cut):
            self._send_nack(sender, from_seq, to_seq)

    # ==================================================================
    # Internals: view installation
    # ==================================================================
    def _install_view(self, commit: ViewCommit) -> None:
        view = View(self.group, commit.view_id, commit.members, prior=commit.prior)
        self._last_commit = commit
        # Fast-forward FIFO baselines past history we are not required to
        # deliver: everything for a fresh joiner, foreign-component flows
        # for a partition merge.  For flows we equalized during the flush
        # this is a no-op (we already delivered up to the cut).
        self.store.adopt_baseline(commit.cut)
        tel = self._telemetry()
        cause = None
        if tel is not None:
            cause = self._change_cause(tel, view.members, view)
        if tel is not None and self.proposal is not None:
            duration = self.endpoint.now - self.proposal.flush_since
            end_fields = {} if cause is None else {"cause": cause}
            tel.emit(
                "gcs.flush.end",
                daemon=self.endpoint.daemon_id,
                group=self.group,
                view=str(commit.view_id),
                duration_s=duration,
                **end_fields,
            )
            tel.metrics.histogram("gcs.flush_s").observe(duration)
        self.view = view
        self.proposal = None
        self.state = MemberState.NORMAL
        self.installed_views += 1
        self.pending_joins -= view.member_set
        self.pending_leaves &= view.member_set
        # The installation callbacks run synchronously (the endpoint's
        # gcs.view.install emission, then the application's on_view — for
        # a VoD server that reaches _reevaluate/_take_over and the new
        # session's server.session.start).  Setting the ambient cause
        # here is what lets that whole chain tag itself with the fault
        # that triggered the view change.
        prior_ambient = tel.cause if tel is not None else None
        if cause is not None:
            tel.cause = cause
        try:
            self.endpoint.note_installed_view(self.group, view)
            self.on_view(view)
        finally:
            if cause is not None:
                tel.cause = prior_ambient
        blocked, self._blocked_sends = self._blocked_sends, []
        for payload, payload_bytes in blocked:
            self._send_multicast(payload, payload_bytes)
        # Membership may already be stale (e.g. someone died mid-commit).
        self._maybe_propose()

    # ==================================================================
    # Internals: data plane
    # ==================================================================
    def _send_multicast(self, payload: Any, payload_bytes: int) -> None:
        self._next_seq += 1
        message = Multicast(self.group, self.local, self._next_seq, payload, payload_bytes)
        self.store.record_own(message)
        self._broadcast_to(self.view.members, message)
        # Local delivery (loopback) happens synchronously.
        self.on_message(self.local, payload)

    def _tick_nacks(self, now: float) -> None:
        for sender, from_seq, to_seq in self.store.gaps(now, NACK_MIN_AGE):
            self._send_nack(sender, from_seq, to_seq)

    def _send_nack(self, sender: ProcessId, from_seq: int, to_seq: int) -> None:
        nack = Nack(self.group, sender, from_seq, to_seq)
        if self._is_live(sender):
            self.endpoint.send_to_daemon(self.endpoint.daemon_of(sender), nack)
            return
        # Origin is dead: any member may hold retained copies.
        members = self.view.members if self.view is not None else ()
        for member in members:
            if member != self.local and self._is_live(member):
                self.endpoint.send_to_daemon(self.endpoint.daemon_of(member), nack)

    # ==================================================================
    # Internals: liveness helpers
    # ==================================================================
    def _is_live(self, process: ProcessId) -> bool:
        if process == self.local:
            return True
        daemon = self.endpoint.daemon_of(process)
        return daemon not in self.endpoint.suspected_daemons()

    def _filter_live(self, processes: Set[ProcessId]) -> Set[ProcessId]:
        return {process for process in processes if self._is_live(process)}

    def _broadcast_to(self, members: Tuple[ProcessId, ...], message: Any) -> None:
        daemons = {
            self.endpoint.daemon_of(member)
            for member in members
            if member != self.local
        }
        daemons.discard(self.endpoint.daemon_id)
        for daemon in daemons:
            self.endpoint.send_to_daemon(daemon, message)

    def _id_acceptable(self, view_id: ViewId) -> bool:
        """A proposal id must beat both the installed view and any flush."""
        if self.view is not None and view_id <= self.view.view_id:
            return False
        if self.proposal is not None and view_id < self.proposal.view_id:
            return False
        return True
