"""The GCS daemon: one per node, multiplexing all groups.

The endpoint owns the control-plane UDP socket, the failure detector,
the heartbeat/tick/presence timers, and one
:class:`~repro.gcs.membership.GroupMember` per locally joined group.  It
also provides two extra messaging services used by the VoD layer:

* **open-group sends** — best-effort datagram to all members of a group
  the sender did not join (the VoD client contacts the server group this
  way, with application-level retry);
* **reliable point-to-point** — acked, retried unicast between processes
  (used for connection offers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import GroupError
from repro.gcs.domain import GcsDomain
from repro.gcs.failure_detector import (
    DEFAULT_TIMEOUT,
    FailureDetector,
)
from repro.gcs.membership import GroupMember, MemberState, TICK_INTERVAL
from repro.gcs.messages import (
    FlushOk,
    FlushVector,
    Heartbeat,
    JoinRequest,
    LeaveRequest,
    Multicast,
    Nack,
    OpenGroupSend,
    PointToPoint,
    PointToPointAck,
    Presence,
    Propose,
    Retransmission,
    ViewCommit,
)
from repro.gcs.view import ProcessId, View
from repro.net.address import GCS_PORT, Endpoint
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.net.udp import UdpSocket
from repro.sim.process import Timer

HEARTBEAT_INTERVAL = 0.15
PRESENCE_INTERVAL = 2.5
P2P_RETRY_INTERVAL = 0.15
P2P_MAX_RETRIES = 20

ViewCallback = Callable[[View], None]
MessageCallback = Callable[[ProcessId, Any], None]
P2pCallback = Callable[[ProcessId, Any], None]
OpenSendCallback = Callable[[ProcessId, Any], None]


class GroupListener:
    """Callbacks a process supplies when joining a group."""

    def __init__(
        self,
        on_view: Optional[ViewCallback] = None,
        on_message: Optional[MessageCallback] = None,
    ) -> None:
        self.on_view = on_view or (lambda view: None)
        self.on_message = on_message or (lambda sender, payload: None)


class GroupHandle:
    """A process's handle on one joined group."""

    def __init__(self, endpoint: "GcsEndpoint", member: GroupMember) -> None:
        self._endpoint = endpoint
        self._member = member

    @property
    def group(self) -> str:
        return self._member.group

    @property
    def view(self) -> Optional[View]:
        return self._member.view

    @property
    def process(self) -> ProcessId:
        return self._member.local

    def multicast(self, payload: Any, payload_bytes: int = 64) -> None:
        """Reliable FIFO multicast to the current view members."""
        self._member.multicast(payload, payload_bytes)

    def leave(self) -> None:
        self._endpoint.leave_group(self._member.group)

    @property
    def is_member(self) -> bool:
        return self._member.is_member


class GcsEndpoint:
    """A GCS daemon bound to one node."""

    def __init__(self, domain: GcsDomain, node: Node, fd_timeout: float = DEFAULT_TIMEOUT) -> None:
        self.domain = domain
        self.node = node
        self.sim = domain.sim
        self.daemon_id = node.node_id
        self.closed = False

        self.socket = UdpSocket(node, GCS_PORT, on_receive=self._on_datagram)
        self.fd = FailureDetector(
            self.sim,
            timeout=fd_timeout,
            on_suspect=self._on_suspicion_event,
            on_trust=self._on_suspicion_event,
            owner=self.daemon_id,
        )
        self._members: Dict[str, GroupMember] = {}
        self._p2p_handlers: Dict[str, P2pCallback] = {}
        self._open_handlers: Dict[str, OpenSendCallback] = {}
        # Reliable p2p state.
        self._p2p_next_seq = 0
        self._p2p_pending: Dict[int, Dict[str, Any]] = {}
        self._p2p_seen: Dict[Tuple[ProcessId, int], bool] = {}
        self._open_seen: Set[Tuple[ProcessId, int]] = set()
        self._open_next_id = 0
        # Graceful-leave tombstones per group.
        self._tombstones: Dict[str, Set[ProcessId]] = {}
        # Last time anything arrived from each daemon — unlike the FD's
        # per-view watch set this survives view changes, so liveness can
        # be judged even for daemons no current view covers.
        self._last_heard: Dict[int, float] = {}
        # Last time a *heartbeat* arrived from each daemon, for the
        # reciprocity half of _heartbeat_targets.
        self._hb_heard: Dict[int, float] = {}
        # Control-plane traffic accounting (for the overhead experiment).
        self.control_bytes_sent = 0
        self.control_packets_sent = 0

        self._hb_timer = Timer(
            self.sim, HEARTBEAT_INTERVAL, self._heartbeat_tick,
            start_delay=self._stagger(HEARTBEAT_INTERVAL),
        )
        self._tick_timer = Timer(
            self.sim, TICK_INTERVAL, self._member_tick,
            start_delay=self._stagger(TICK_INTERVAL),
        )
        self._presence_timer = Timer(
            self.sim, PRESENCE_INTERVAL, self._presence_tick,
            start_delay=self._stagger(PRESENCE_INTERVAL),
        )

    # ==================================================================
    # Public API
    # ==================================================================
    @property
    def now(self) -> float:
        return self.sim.now

    def process_id(self, name: str) -> ProcessId:
        return ProcessId(self.daemon_id, name)

    def join(
        self, group: str, process_name: str, listener: GroupListener
    ) -> GroupHandle:
        """Join ``group`` as the local process ``process_name``.

        At most one local process per group per daemon (sufficient for
        the VoD layout; the restriction keeps delivery bookkeeping
        per-daemon).
        """
        self._ensure_open()
        existing = self._members.get(group)
        if existing is not None and existing.state != MemberState.LEFT:
            raise GroupError(
                f"daemon {self.daemon_id} already has a member in {group!r}"
            )
        process = self.process_id(process_name)
        self._tombstones.get(group, set()).discard(process)
        member = GroupMember(
            self, group, process, listener.on_view, listener.on_message
        )
        self._members[group] = member
        return GroupHandle(self, member)

    def leave_group(self, group: str) -> None:
        member = self._members.get(group)
        if member is None:
            return
        member.leave()
        del self._members[group]

    def send_to_group(
        self,
        group: str,
        payload: Any,
        payload_bytes: int = 64,
        sender_name: str = "anon",
    ) -> int:
        """Open-group send: best-effort datagram to all group members.

        Returns a request id; duplicates of the same request are
        suppressed at receivers, so callers may re-send for reliability.
        """
        self._ensure_open()
        self._open_next_id += 1
        message = OpenGroupSend(
            group,
            self.process_id(sender_name),
            payload,
            payload_bytes,
            self._open_next_id,
        )
        self.broadcast_domain(message)
        # Local members receive it too.
        self._deliver_open_send(message)
        return self._open_next_id

    def register_open_group_handler(
        self, group: str, handler: OpenSendCallback
    ) -> None:
        """Receive open-group sends for a group joined on this daemon."""
        self._open_handlers[group] = handler

    def send_p2p(self, target: ProcessId, payload: Any, payload_bytes: int = 64,
                 sender_name: str = "anon") -> None:
        """Reliable unicast to ``target`` (acked, retried)."""
        self._ensure_open()
        self._p2p_next_seq += 1
        message = PointToPoint(
            self.process_id(sender_name), target, self._p2p_next_seq,
            payload, payload_bytes,
        )
        self._p2p_pending[message.seq] = {"message": message, "tries": 0}
        self._p2p_transmit(message.seq)

    def register_p2p_handler(self, process_name: str, handler: P2pCallback) -> None:
        self._p2p_handlers[process_name] = handler

    def group_view(self, group: str) -> Optional[View]:
        member = self._members.get(group)
        return member.view if member is not None else None

    def shutdown(self) -> None:
        """Graceful daemon shutdown: leave all groups, stop timers."""
        if self.closed:
            return
        for group in list(self._members):
            self.leave_group(group)
        self._stop()

    def crash(self) -> None:
        """Fail-stop without goodbyes (used with node.crash())."""
        self._stop()

    def _stop(self) -> None:
        self.closed = True
        self._hb_timer.cancel()
        self._tick_timer.cancel()
        self._presence_timer.cancel()
        if not self.socket.closed:
            self.socket.close()
        self.domain.remove_endpoint(self.daemon_id)

    # ==================================================================
    # Services used by GroupMember (duck-typed context)
    # ==================================================================
    def send_to_daemon(self, daemon: int, message: Any) -> None:
        if self.closed or daemon == self.daemon_id:
            self._loopback(message)
            return
        size = message.wire_bytes()
        self.control_bytes_sent += size
        self.control_packets_sent += 1
        self.socket.sendto(Endpoint(daemon, GCS_PORT), message, size)

    def broadcast_domain(self, message: Any) -> None:
        if self.closed:
            return
        for daemon in self.domain.daemon_nodes():
            if daemon != self.daemon_id:
                self.send_to_daemon(daemon, message)

    def suspected_daemons(self) -> Set[int]:
        return self.fd.suspected()

    def heard_within(self, daemon: int, window_s: float) -> bool:
        """True if anything arrived from ``daemon`` in the last window.

        Heartbeats broadcast domain-wide every 0.1 s, so any alive and
        reachable daemon registers well inside the failure-detector
        timeout regardless of group membership."""
        if daemon == self.daemon_id:
            return True
        last = self._last_heard.get(daemon)
        return last is not None and self.sim.now - last <= window_s

    @staticmethod
    def daemon_of(process: ProcessId) -> int:
        return process.node

    def note_installed_view(self, group: str, view: View) -> None:
        """Hook: refresh FD watch targets after a view installation."""
        tel = self.sim.telemetry
        if tel.active:
            fields = {}
            # GroupMember._install_view sets the ambient cause (looked up
            # from the departed/joined nodes) around this call.
            if tel.cause is not None:
                fields["cause"] = tel.cause
            tel.emit(
                "gcs.view.install",
                daemon=self.daemon_id,
                group=group,
                view=str(view.view_id),
                members=len(view.members),
                joined=len(view.joined),
                departed=len(view.departed),
                **fields,
            )
            tel.count("gcs.views_installed")
        self._refresh_watches()
        self.domain.notify_view_installed(self.daemon_id, group, view)

    def note_left_process(self, group: str, process: ProcessId) -> None:
        self._tombstones.setdefault(group, set()).add(process)

    def is_tombstoned(self, group: str, process: ProcessId) -> bool:
        return process in self._tombstones.get(group, set())

    # ==================================================================
    # Timers
    # ==================================================================
    def _heartbeat_tick(self) -> None:
        if self.closed:
            return
        ack_vectors = {}
        for group, member in self._members.items():
            if member.state == MemberState.LEFT:
                continue
            vector = member.heartbeat_vector()
            ack_vectors[group] = vector
            member.store.update_peer_vector(member.local, vector)
            if member.view is not None:
                member.store.evict_stable(list(member.view.members))
        heartbeat = Heartbeat(self.daemon_id, ack_vectors)
        for daemon in self._heartbeat_targets():
            self.send_to_daemon(daemon, heartbeat)
        self.fd.check()

    def _heartbeat_targets(self) -> Set[int]:
        """Daemons of every co-member in any group or live proposal,
        plus every daemon currently heartbeating *us*.

        The reciprocity half matters when views diverge asymmetrically
        (partition merges): a daemon whose views list none of our
        processes would otherwise stay silent towards us even though our
        view still lists one of its processes — and its silence reads as
        daemon death, so the merge flush wrongly drops a live member.
        """
        targets: Set[int] = set()
        for member in self._members.values():
            if member.view is not None:
                targets.update(p.node for p in member.view.members)
            if member.proposal is not None:
                targets.update(p.node for p in member.proposal.members)
        now = self.sim.now
        targets.update(
            daemon
            for daemon, heard_at in self._hb_heard.items()
            if now - heard_at <= self.fd.timeout
        )
        targets.discard(self.daemon_id)
        return targets

    def _refresh_watches(self) -> None:
        wanted = self._heartbeat_targets()
        for daemon in wanted - self.fd.watched():
            self.fd.watch(daemon)
        for daemon in self.fd.watched() - wanted:
            self.fd.unwatch(daemon)

    def _on_suspicion_event(self, _daemon: int) -> None:
        """FD output changed: let every group re-evaluate its membership."""
        if self.closed:
            return
        for member in list(self._members.values()):
            member.on_suspicion_change()

    def _member_tick(self) -> None:
        if self.closed:
            return
        self._refresh_watches()
        for member in list(self._members.values()):
            member.tick()
        self._p2p_tick()

    def _presence_tick(self) -> None:
        if self.closed:
            return
        for group, member in self._members.items():
            view = member.view
            if view is None or member.state != MemberState.NORMAL:
                continue
            if view.coordinator != member.local:
                continue
            presence = Presence(group, view.view_id, view.members, member.local)
            self.broadcast_domain(presence)

    # ==================================================================
    # Receive path
    # ==================================================================
    def _on_datagram(self, datagram: Datagram) -> None:
        if self.closed:
            return
        self._dispatch(datagram.payload, datagram.src.node)

    def _loopback(self, message: Any) -> None:
        # Same-daemon control messages short-circuit the network.
        self.sim.call_soon(self._dispatch, message, self.daemon_id)

    def _dispatch(self, message: Any, from_daemon: int) -> None:
        if self.closed:
            return
        self._last_heard[from_daemon] = self.sim.now
        self.fd.heard_from(from_daemon)
        if isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, Multicast):
            self._with_member(message.group, lambda m: m.on_multicast(message))
        elif isinstance(message, Retransmission):
            self._with_member(
                message.original.group,
                lambda m: m.on_multicast(message.original),
            )
        elif isinstance(message, JoinRequest):
            self._tombstones.get(message.group, set()).discard(message.process)
            self._with_member(message.group, lambda m: m.on_join_request(message))
        elif isinstance(message, LeaveRequest):
            self.note_left_process(message.group, message.process)
            self._with_member(message.group, lambda m: m.on_leave_request(message))
        elif isinstance(message, Propose):
            self._with_member(message.group, lambda m: m.on_propose(message))
        elif isinstance(message, FlushVector):
            self._with_member(message.group, lambda m: m.on_flush_vector(message))
        elif isinstance(message, FlushOk):
            self._with_member(message.group, lambda m: m.on_flush_ok(message))
        elif isinstance(message, ViewCommit):
            self._with_member(message.group, lambda m: m.on_view_commit(message))
        elif isinstance(message, Nack):
            self._with_member(
                message.group, lambda m: m.on_nack(message, from_daemon)
            )
        elif isinstance(message, Presence):
            self._on_presence(message, from_daemon)
        elif isinstance(message, OpenGroupSend):
            self._deliver_open_send(message)
        elif isinstance(message, PointToPoint):
            self._on_p2p(message)
        elif isinstance(message, PointToPointAck):
            self._p2p_pending.pop(message.seq, None)

    def _with_member(self, group: str, action: Callable[[GroupMember], None]) -> None:
        member = self._members.get(group)
        if member is not None and member.state != MemberState.LEFT:
            action(member)

    def _on_heartbeat(self, heartbeat: Heartbeat) -> None:
        self._hb_heard[heartbeat.sender_daemon] = self.sim.now
        for group, vector in heartbeat.ack_vectors.items():
            member = self._members.get(group)
            if member is None or member.state == MemberState.LEFT:
                continue
            peers = [
                p for p in (member.view.members if member.view else ())
                if p.node == heartbeat.sender_daemon
            ]
            for peer in peers:
                member.on_peer_vector(peer, vector)

    def _on_presence(self, presence: Presence, from_daemon: int) -> None:
        member = self._members.get(presence.group)
        if member is None or member.state == MemberState.LEFT:
            return
        # A daemon advertising one of its *own* processes as a current
        # member overrides any graceful-leave tombstone we hold for it:
        # the process must have re-joined (and the JoinRequest may have
        # been lost to a partition).  Without this, a stale tombstone
        # filters the process out of every union below and the diverged
        # views can never merge.
        tombstones = self._tombstones.get(presence.group)
        if tombstones:
            for process in presence.members:
                if process.node == from_daemon:
                    tombstones.discard(process)
        members = tuple(
            p for p in presence.members
            if not self.is_tombstoned(presence.group, p)
        )
        if (
            member.view is not None
            and member.local not in presence.members
            and not presence.is_reply
        ):
            # We were left out of their view: advertise ourselves so the
            # union rule can fire at whoever is the smallest process.
            # Only beacons are answered — replying to replies would
            # ping-pong between diverged daemons forever.
            reply = Presence(
                presence.group,
                member.view.view_id,
                member.view.members,
                member.local,
                is_reply=True,
            )
            self.send_to_daemon(from_daemon, reply)
        member.on_presence(presence.view_id, members)

    def _deliver_open_send(self, message: OpenGroupSend) -> None:
        key = (message.sender, message.request_id)
        if key in self._open_seen:
            return
        self._open_seen.add(key)
        if len(self._open_seen) > 100_000:
            self._open_seen.clear()
        member = self._members.get(message.group)
        if member is None or not member.is_member:
            return
        handler = self._open_handlers.get(message.group)
        if handler is not None:
            handler(message.sender, message.payload)

    # ==================================================================
    # Reliable point-to-point
    # ==================================================================
    def _on_p2p(self, message: PointToPoint) -> None:
        ack = PointToPointAck(message.target, message.sender, message.seq)
        self.send_to_daemon(message.sender.node, ack)
        key = (message.sender, message.seq)
        if key in self._p2p_seen:
            return
        self._p2p_seen[key] = True
        if len(self._p2p_seen) > 100_000:
            self._p2p_seen.clear()
        handler = self._p2p_handlers.get(message.target.name)
        if handler is not None:
            handler(message.sender, message.payload)

    def _p2p_transmit(self, seq: int) -> None:
        entry = self._p2p_pending.get(seq)
        if entry is None:
            return
        entry["tries"] += 1
        entry["last_sent"] = self.now
        message: PointToPoint = entry["message"]
        self.send_to_daemon(message.target.node, message)

    def _p2p_tick(self) -> None:
        for seq in list(self._p2p_pending):
            entry = self._p2p_pending.get(seq)
            if entry is None:
                continue
            if entry["tries"] >= P2P_MAX_RETRIES:
                del self._p2p_pending[seq]
                continue
            if self.now - entry.get("last_sent", 0.0) >= P2P_RETRY_INTERVAL:
                self._p2p_transmit(seq)

    # ==================================================================
    # Helpers
    # ==================================================================
    def _stagger(self, interval: float) -> float:
        """Desynchronize timers across daemons deterministically."""
        rng = self.sim.rng(f"gcs.stagger.{self.daemon_id}")
        return rng.uniform(0.0, interval)

    def _ensure_open(self) -> None:
        if self.closed:
            raise GroupError(f"GCS daemon on node {self.daemon_id} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GcsEndpoint node={self.daemon_id} groups={sorted(self._members)} "
            f"{'closed' if self.closed else 'open'}>"
        )
