"""Group communication system (GCS).

A virtual-synchrony-flavoured group communication substrate modelled on
Transis [Amir, Dolev, Kramer, Malki; FTCS'92], providing exactly the
contract the VoD paper relies on (its Section 5.3):

1. a *group abstraction* — named multicast groups that processes join and
   leave, addressable without knowing member identities;
2. a *membership service* — every connected member learns each membership
   change through totally-ordered per-group views;
3. *reliable multicast* — FIFO-per-sender delivery to all view members,
   with a flush protocol that equalizes message delivery before a view
   change is installed (virtual synchrony);
4. *open groups* — non-members may send a message to a group (the VoD
   client contacts the abstract server group this way).

The implementation runs one GCS daemon (:class:`GcsEndpoint`) per node
over unreliable datagrams; loss is masked by NACK-driven retransmission
and positive-ack stability tracking.
"""

from repro.gcs.causal import CausalGroup
from repro.gcs.domain import GcsDomain
from repro.gcs.endpoint import GcsEndpoint, GroupHandle, GroupListener
from repro.gcs.total_order import TotalOrderGroup
from repro.gcs.view import ProcessId, View

__all__ = [
    "CausalGroup",
    "GcsDomain",
    "GcsEndpoint",
    "GroupHandle",
    "GroupListener",
    "ProcessId",
    "TotalOrderGroup",
    "View",
]
