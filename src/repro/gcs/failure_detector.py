"""Heartbeat failure detector.

Each daemon beacons every ``interval`` seconds; a peer silent for longer
than ``timeout`` is *suspected*.  The detector is unreliable in the usual
sense (it may wrongly suspect a slow peer); the membership layer treats
suspicion as input, not truth, and a wrongly excluded daemon simply
rejoins.  The paper's "take over time was half a second on the average"
is dominated by this timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.sim.core import Simulator

#: Defaults calibrated so that detection + view agreement lands near the
#: paper's ~0.5 s average take-over time on a LAN.
DEFAULT_INTERVAL = 0.1
DEFAULT_TIMEOUT = 0.45

SuspectCallback = Callable[[int], None]


@dataclass
class _PeerState:
    last_heard: float
    suspected: bool = False


class FailureDetector:
    """Tracks liveness of remote daemons from heartbeat arrival times."""

    def __init__(
        self,
        sim: Simulator,
        timeout: float = DEFAULT_TIMEOUT,
        on_suspect: SuspectCallback = None,
        on_trust: SuspectCallback = None,
        owner: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.timeout = timeout
        self.on_suspect = on_suspect
        self.on_trust = on_trust
        #: Daemon id of the endpoint running this detector (telemetry tag).
        self.owner = owner
        self._peers: Dict[int, _PeerState] = {}
        # Fault injection: heartbeats from a muted daemon are discarded
        # until the deadline, keeping an injected suspicion alive.
        self._muted_until: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Peer set management
    # ------------------------------------------------------------------
    def watch(self, daemon: int) -> None:
        """Start monitoring ``daemon`` (grace period = one full timeout)."""
        if daemon not in self._peers:
            self._peers[daemon] = _PeerState(last_heard=self.sim.now)

    def unwatch(self, daemon: int) -> None:
        self._peers.pop(daemon, None)
        self._muted_until.pop(daemon, None)

    def watched(self) -> Set[int]:
        return set(self._peers)

    # ------------------------------------------------------------------
    # Input events
    # ------------------------------------------------------------------
    def heard_from(self, daemon: int) -> None:
        """Record a heartbeat (or any message) from ``daemon``."""
        state = self._peers.get(daemon)
        if state is None:
            return
        muted_until = self._muted_until.get(daemon)
        if muted_until is not None:
            if self.sim.now < muted_until:
                return
            del self._muted_until[daemon]
        state.last_heard = self.sim.now
        if state.suspected:
            state.suspected = False
            self._note("gcs.fd.trust", daemon)
            if self.on_trust is not None:
                self.on_trust(daemon)

    def force_suspect(self, daemon: int, mute_for_s: float = 0.0) -> bool:
        """Inject a (possibly false) suspicion of ``daemon``.

        Used by the fault-injection subsystem to exercise the unreliable-
        detector paths: the membership layer must treat the suspicion as
        input, not truth, and a wrongly excluded daemon simply rejoins
        when its heartbeats resume.  ``mute_for_s`` discards the daemon's
        heartbeats for that long, controlling how long the false
        suspicion persists.  Returns True if the daemon was watched and
        not already suspected.
        """
        state = self._peers.get(daemon)
        if state is None or state.suspected:
            return False
        if mute_for_s > 0:
            self._muted_until[daemon] = self.sim.now + mute_for_s
        state.last_heard = self.sim.now - self.timeout
        state.suspected = True
        self._note("gcs.fd.suspect", daemon, forced=True)
        if self.on_suspect is not None:
            self.on_suspect(daemon)
        return True

    def check(self) -> None:
        """Sweep for silent peers; called periodically by the endpoint."""
        now = self.sim.now
        # Snapshot: suspect callbacks may watch/unwatch peers re-entrantly.
        for daemon, state in list(self._peers.items()):
            if state.suspected:
                continue
            if now - state.last_heard > self.timeout:
                state.suspected = True
                self._note("gcs.fd.suspect", daemon, forced=False)
                if self.on_suspect is not None:
                    self.on_suspect(daemon)

    def _note(self, kind: str, daemon: int, **fields) -> None:
        tel = self.sim.telemetry
        if tel.active:
            # Suspicion is the asynchronous consequence of whatever took
            # the daemon down; the crash attributed its node, so the
            # cause survives the heartbeat-timeout gap.
            cause = tel.cause_for(f"node:{daemon}")
            if cause is not None:
                fields = dict(fields, cause=cause)
            tel.emit(kind, daemon=daemon, owner=self.owner, **fields)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_suspected(self, daemon: int) -> bool:
        state = self._peers.get(daemon)
        return state.suspected if state is not None else True

    def suspected(self) -> Set[int]:
        return {daemon for daemon, st in self._peers.items() if st.suspected}
